/* Packed-chunk drain loop for the repro timing interleaver.
 *
 * This is a transcription of the inner loop of
 * ``TimingInterleaver._run_fast`` (src/repro/trace/interleave.py) into C
 * over raw ``int64_t*`` views of the ``array('q')`` storage the python
 * model already uses for cache tags/states and bank free times.  The
 * python wrapper (engine/native.py) keeps the scheduler: heap switches,
 * generator resumes and synchronization handlers happen in python, and
 * coherence misses / icache refills call back into the python model.
 * Everything here must stay observably identical to the python loop --
 * the differential verifier diffs fingerprints and error messages.
 *
 * Protocol: ``setup(plan)`` parses the plan tuple into a context capsule
 * with all buffers acquired once; ``drain(ctx, chunk)`` consumes events
 * starting at the position in ``regs`` until the chunk is exhausted
 * (returns 0), the process is preempted by the cached heap top
 * (returns 1), or a synchronization / unknown opcode needs the python
 * handler (returns 2, with ``regs`` pointing at the opcode);
 * ``release(ctx)`` drops the buffer views deterministically.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define OP_READ 1
#define OP_WRITE 2
#define OP_COMPUTE 3
#define OP_IFETCH 4
#define OP_ENQUEUE 8
#define OP_DEQUEUE 9
#define OP_READ_SPAN 10
#define OP_WRITE_SPAN 11

#define ST_MODIFIED 2   /* repro.core.cache.MODIFIED */

#define STATUS_EXHAUSTED 0
#define STATUS_PREEMPT 1
#define STATUS_SYNC 2

static PyObject *g_deque = NULL;      /* collections.deque */
static PyObject *s_append = NULL;
static PyObject *s_popleft = NULL;
static PyObject *s_complete = NULL;
static PyObject *s_retire = NULL;

typedef struct {
    PyObject *plan;           /* strong ref; keeps every borrowed ptr alive */
    int n_cl;
    int nproc;
    int released;
    long long idx_mask, tag_shift, line_shift, nbanks, bank_cycle;
    long long wb_depth, iline_shift, limit;
    int stall_on_writes, icache_mode;
    long long **cl_states, **cl_tags, **cl_bank_free;
    PyObject **cl_inflight, **cl_scc, **cl_wbufs;
    long long **ic_states, **ic_tags;
    long long *ic_mask, *ic_shift;
    long long *d_reads, *d_writes, *d_conf, *d_wbuf;
    long long *d_refs, *d_busy, *d_stall, *d_finish, *d_icfetch, *misc;
    long long *regs;          /* i, sub, time, next_time, pid, cl */
    PyObject *read_miss, *write_line, *ifetch, *queues;
    Py_buffer *views;
    int nviews;
} Ctx;

static const char CTX_NAME[] = "repro.trace.engine._native.ctx";

/* ---------------------------------------------------------------- utils */

static long long *
acquire_ll(Ctx *ctx, PyObject *obj)
{
    Py_buffer *view = &ctx->views[ctx->nviews];
    if (PyObject_GetBuffer(obj, view, PyBUF_WRITABLE) < 0)
        return NULL;
    ctx->nviews++;
    return (long long *)view->buf;
}

static int
get_ll_item(PyObject *seq, Py_ssize_t i, long long *out)
{
    PyObject *obj = PySequence_GetItem(seq, i);
    if (!obj)
        return -1;
    *out = PyLong_AsLongLong(obj);
    Py_DECREF(obj);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Write-buffer heaps are plain python lists of ints, shared with
 * heapq-based python code.  Heap layout may differ from heapq's after
 * mixed use, but the multiset of retire times and the min element --
 * the only observable properties -- are identical. */

static int
wb_heappush(PyObject *heap, long long val)
{
    PyObject *obj = PyLong_FromLongLong(val);
    if (!obj)
        return -1;
    if (PyList_Append(heap, obj) < 0) {
        Py_DECREF(obj);
        return -1;
    }
    Py_DECREF(obj);
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        long long pv = PyLong_AsLongLong(PyList_GET_ITEM(heap, parent));
        if (pv == -1 && PyErr_Occurred())
            return -1;
        if (val >= pv)
            break;
        PyObject *a = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, parent));
        PyList_SET_ITEM(heap, parent, a);
        pos = parent;
    }
    return 0;
}

static long long
wb_heappop(PyObject *heap, int *err)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    long long result = PyLong_AsLongLong(PyList_GET_ITEM(heap, 0));
    if (result == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        *err = 1;
        return 0;
    }
    if (n > 1) {
        long long lv = PyLong_AsLongLong(last);
        PyList_SetItem(heap, 0, last);  /* steals our ref, frees old root */
        if (lv == -1 && PyErr_Occurred()) {
            *err = 1;
            return 0;
        }
        Py_ssize_t m = n - 1, pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= m)
                break;
            long long cv = PyLong_AsLongLong(PyList_GET_ITEM(heap, child));
            if (cv == -1 && PyErr_Occurred()) {
                *err = 1;
                return 0;
            }
            if (child + 1 < m) {
                long long cv2 =
                    PyLong_AsLongLong(PyList_GET_ITEM(heap, child + 1));
                if (cv2 == -1 && PyErr_Occurred()) {
                    *err = 1;
                    return 0;
                }
                if (cv2 < cv) {
                    cv = cv2;
                    child++;
                }
            }
            if (cv >= lv)
                break;
            PyObject *a = PyList_GET_ITEM(heap, pos);
            PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, child));
            PyList_SET_ITEM(heap, child, a);
            pos = child;
        }
    }
    else {
        Py_DECREF(last);
    }
    return result;
}

/* BankInterconnect.reserve_write_slot, minus the probe (the fast path
 * guarantees NULL_PROBE) and minus write_stall_cycles, which the
 * wrapper settles from d_wbuf at flush time. */
static long long
c_reserve(Ctx *ctx, long long cl, long long bank, long long now,
          long long retire, int *err)
{
    PyObject *buf = PyList_GET_ITEM(ctx->cl_wbufs[cl], bank);
    while (PyList_GET_SIZE(buf) > 0) {
        long long top = PyLong_AsLongLong(PyList_GET_ITEM(buf, 0));
        if (top == -1 && PyErr_Occurred()) {
            *err = 1;
            return 0;
        }
        if (top > now)
            break;
        wb_heappop(buf, err);
        if (*err)
            return 0;
    }
    long long stall = 0;
    if (PyList_GET_SIZE(buf) >= ctx->wb_depth) {
        long long oldest = wb_heappop(buf, err);
        if (*err)
            return 0;
        stall = oldest - now;
        if (stall < 0)
            stall = 0;
    }
    long long push = now + stall;
    if (retire > push)
        push = retire;
    if (wb_heappush(buf, push) < 0) {
        *err = 1;
        return 0;
    }
    return stall;
}

static long long
inflight_done(PyObject *infl, long long line, long long start, int *err)
{
    if (PyDict_GET_SIZE(infl) == 0)
        return start + 1;
    PyObject *key = PyLong_FromLongLong(line);
    if (!key) {
        *err = 1;
        return 0;
    }
    PyObject *val = PyDict_GetItemWithError(infl, key);
    long long done = start + 1;
    if (val) {
        long long ready = PyLong_AsLongLong(val);
        if (ready == -1 && PyErr_Occurred()) {
            Py_DECREF(key);
            *err = 1;
            return 0;
        }
        if (ready <= start) {
            if (PyDict_DelItem(infl, key) < 0) {
                Py_DECREF(key);
                *err = 1;
                return 0;
            }
        }
        else {
            done = ready + 1;
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(key);
        *err = 1;
        return 0;
    }
    Py_DECREF(key);
    return done;
}

static long long
call_read_miss(Ctx *ctx, long long cl, long long line, long long start,
               int *err)
{
    PyObject *pl = PyLong_FromLongLong(line);
    PyObject *ps = pl ? PyLong_FromLongLong(start) : NULL;
    if (!pl || !ps) {
        Py_XDECREF(pl);
        Py_XDECREF(ps);
        *err = 1;
        return 0;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        ctx->read_miss, ctx->cl_scc[cl], pl, ps, NULL);
    Py_DECREF(pl);
    Py_DECREF(ps);
    if (!res) {
        *err = 1;
        return 0;
    }
    long long v = PyLong_AsLongLong(res);
    Py_DECREF(res);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

static int
call_write_line(Ctx *ctx, long long cl, long long line, long long start,
                long long *complete, long long *retire)
{
    PyObject *pl = PyLong_FromLongLong(line);
    PyObject *ps = pl ? PyLong_FromLongLong(start) : NULL;
    if (!pl || !ps) {
        Py_XDECREF(pl);
        Py_XDECREF(ps);
        return -1;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        ctx->write_line, ctx->cl_scc[cl], pl, ps, NULL);
    Py_DECREF(pl);
    Py_DECREF(ps);
    if (!res)
        return -1;
    PyObject *c = PyObject_GetAttr(res, s_complete);
    PyObject *r = c ? PyObject_GetAttr(res, s_retire) : NULL;
    Py_DECREF(res);
    if (!c || !r) {
        Py_XDECREF(c);
        Py_XDECREF(r);
        return -1;
    }
    *complete = PyLong_AsLongLong(c);
    *retire = PyLong_AsLongLong(r);
    Py_DECREF(c);
    Py_DECREF(r);
    if (PyErr_Occurred())
        return -1;
    return 0;
}

static long long
call_ifetch(Ctx *ctx, long long pid, long long addr, long long count,
            long long time, int *err)
{
    PyObject *a0 = PyLong_FromLongLong(pid);
    PyObject *a1 = a0 ? PyLong_FromLongLong(addr) : NULL;
    PyObject *a2 = a1 ? PyLong_FromLongLong(count) : NULL;
    PyObject *a3 = a2 ? PyLong_FromLongLong(time) : NULL;
    if (!a0 || !a1 || !a2 || !a3) {
        Py_XDECREF(a0);
        Py_XDECREF(a1);
        Py_XDECREF(a2);
        Py_XDECREF(a3);
        *err = 1;
        return 0;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        ctx->ifetch, a0, a1, a2, a3, NULL);
    Py_DECREF(a0);
    Py_DECREF(a1);
    Py_DECREF(a2);
    Py_DECREF(a3);
    if (!res) {
        *err = 1;
        return 0;
    }
    long long v = PyLong_AsLongLong(res);
    Py_DECREF(res);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

/* One read/write reference; mirrors the python data-event body. */
static int
do_access(Ctx *ctx, long long cl, long long pid, int is_read,
          long long addr, long long *time_io)
{
    long long time = *time_io;
    long long line = addr >> ctx->line_shift;
    long long bank = line % ctx->nbanks;   /* python %: floored */
    if (bank < 0)
        bank += ctx->nbanks;
    long long *bank_free = ctx->cl_bank_free[cl];
    long long free_t = bank_free[bank];
    long long start;
    if (free_t > time) {
        ctx->d_conf[cl] += free_t - time;
        start = free_t;
    }
    else {
        start = time;
    }
    bank_free[bank] = start + ctx->bank_cycle;
    long long idx = line & ctx->idx_mask;
    long long *states = ctx->cl_states[cl];
    long long *tags = ctx->cl_tags[cl];
    long long done;
    int err = 0;
    if (is_read) {
        if (states[idx] && tags[idx] == (line >> ctx->tag_shift)) {
            ctx->d_reads[cl]++;
            done = inflight_done(ctx->cl_inflight[cl], line, start, &err);
            if (err)
                return -1;
        }
        else {
            done = call_read_miss(ctx, cl, line, start, &err);
            if (err)
                return -1;
        }
    }
    else {
        if (states[idx] >= ST_MODIFIED
            && tags[idx] == (line >> ctx->tag_shift)) {
            states[idx] = ST_MODIFIED;
            ctx->d_writes[cl]++;
            done = inflight_done(ctx->cl_inflight[cl], line, start, &err);
            if (err)
                return -1;
            if (!ctx->stall_on_writes) {
                long long stall =
                    c_reserve(ctx, cl, bank, done, done, &err);
                if (err)
                    return -1;
                ctx->d_wbuf[cl] += stall;
                done += stall;
            }
        }
        else {
            long long complete, retire;
            if (call_write_line(ctx, cl, line, start, &complete,
                                &retire) < 0)
                return -1;
            done = complete;
            if (ctx->stall_on_writes) {
                if (retire > done)
                    done = retire;
            }
            else {
                long long stall =
                    c_reserve(ctx, cl, bank, done, retire, &err);
                if (err)
                    return -1;
                ctx->d_wbuf[cl] += stall;
                done += stall;
            }
        }
    }
    ctx->d_refs[pid]++;
    ctx->d_busy[pid]++;
    ctx->d_stall[pid] += done - time - 1;
    ctx->d_finish[pid] = done;
    *time_io = done;
    return 0;
}

/* ------------------------------------------------------------ lifecycle */

static void
ctx_release(Ctx *ctx)
{
    if (ctx->released)
        return;
    ctx->released = 1;
    for (int i = 0; i < ctx->nviews; i++)
        PyBuffer_Release(&ctx->views[i]);
    ctx->nviews = 0;
    Py_CLEAR(ctx->plan);
}

static void
ctx_destructor(PyObject *capsule)
{
    Ctx *ctx = (Ctx *)PyCapsule_GetPointer(capsule, CTX_NAME);
    if (!ctx)
        return;
    ctx_release(ctx);
    PyMem_Free(ctx->views);
    PyMem_Free(ctx->cl_states);
    PyMem_Free(ctx->cl_inflight);
    PyMem_Free(ctx->ic_states);
    PyMem_Free(ctx->ic_mask);
    PyMem_Free(ctx);
}

static PyObject *
native_setup(PyObject *self, PyObject *plan)
{
    (void)self;
    if (!PyTuple_Check(plan) || PyTuple_GET_SIZE(plan) != 6) {
        PyErr_SetString(PyExc_TypeError, "plan must be a 6-tuple");
        return NULL;
    }
    PyObject *per_cluster = PyTuple_GET_ITEM(plan, 0);
    PyObject *callbacks = PyTuple_GET_ITEM(plan, 1);
    PyObject *scal = PyTuple_GET_ITEM(plan, 2);
    PyObject *ic_tuple = PyTuple_GET_ITEM(plan, 3);
    PyObject *deltas = PyTuple_GET_ITEM(plan, 4);
    PyObject *regs = PyTuple_GET_ITEM(plan, 5);

    Ctx *ctx = PyMem_Calloc(1, sizeof(Ctx));
    if (!ctx)
        return PyErr_NoMemory();
    ctx->n_cl = (int)PyTuple_GET_SIZE(per_cluster);
    ctx->nproc = (int)PyTuple_GET_SIZE(ic_tuple);

    int max_views = 3 * ctx->n_cl + 2 * ctx->nproc + 16;
    ctx->views = PyMem_Calloc(max_views, sizeof(Py_buffer));
    ctx->cl_states = PyMem_Calloc(3 * ctx->n_cl, sizeof(long long *));
    ctx->cl_inflight = PyMem_Calloc(3 * ctx->n_cl, sizeof(PyObject *));
    int nic = ctx->nproc > 0 ? ctx->nproc : 1;
    ctx->ic_states = PyMem_Calloc(2 * nic, sizeof(long long *));
    ctx->ic_mask = PyMem_Calloc(2 * nic, sizeof(long long));
    if (!ctx->views || !ctx->cl_states || !ctx->cl_inflight
        || !ctx->ic_states || !ctx->ic_mask) {
        PyMem_Free(ctx->views);
        PyMem_Free(ctx->cl_states);
        PyMem_Free(ctx->cl_inflight);
        PyMem_Free(ctx->ic_states);
        PyMem_Free(ctx->ic_mask);
        PyMem_Free(ctx);
        return PyErr_NoMemory();
    }
    ctx->cl_tags = ctx->cl_states + ctx->n_cl;
    ctx->cl_bank_free = ctx->cl_states + 2 * ctx->n_cl;
    ctx->cl_scc = ctx->cl_inflight + ctx->n_cl;
    ctx->cl_wbufs = ctx->cl_inflight + 2 * ctx->n_cl;
    ctx->ic_tags = ctx->ic_states + nic;
    ctx->ic_shift = ctx->ic_mask + nic;

    ctx->plan = plan;
    Py_INCREF(plan);

    long long sc[10];
    for (Py_ssize_t k = 0; k < 10; k++) {
        if (get_ll_item(scal, k, &sc[k]) < 0)
            goto fail;
    }
    ctx->idx_mask = sc[0];
    ctx->tag_shift = sc[1];
    ctx->line_shift = sc[2];
    ctx->nbanks = sc[3];
    ctx->bank_cycle = sc[4];
    ctx->stall_on_writes = (int)sc[5];
    ctx->wb_depth = sc[6];
    ctx->icache_mode = (int)sc[7];
    ctx->iline_shift = sc[8];
    ctx->limit = sc[9];

    for (int c = 0; c < ctx->n_cl; c++) {
        PyObject *entry = PyTuple_GET_ITEM(per_cluster, c);
        if (!(ctx->cl_states[c] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 0))))
            goto fail;
        if (!(ctx->cl_tags[c] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 1))))
            goto fail;
        if (!(ctx->cl_bank_free[c] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 2))))
            goto fail;
        ctx->cl_inflight[c] = PyTuple_GET_ITEM(entry, 3);
        ctx->cl_scc[c] = PyTuple_GET_ITEM(entry, 4);
        ctx->cl_wbufs[c] = PyTuple_GET_ITEM(entry, 5);
    }
    for (int p = 0; p < ctx->nproc; p++) {
        PyObject *entry = PyTuple_GET_ITEM(ic_tuple, p);
        if (!(ctx->ic_states[p] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 0))))
            goto fail;
        if (!(ctx->ic_tags[p] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 1))))
            goto fail;
        if (get_ll_item(entry, 2, &ctx->ic_mask[p]) < 0)
            goto fail;
        if (get_ll_item(entry, 3, &ctx->ic_shift[p]) < 0)
            goto fail;
    }
    ctx->read_miss = PyTuple_GET_ITEM(callbacks, 0);
    ctx->write_line = PyTuple_GET_ITEM(callbacks, 1);
    ctx->ifetch = PyTuple_GET_ITEM(callbacks, 2);
    ctx->queues = PyTuple_GET_ITEM(callbacks, 3);

    long long **dptr[10] = {
        &ctx->d_reads, &ctx->d_writes, &ctx->d_conf, &ctx->d_wbuf,
        &ctx->d_refs, &ctx->d_busy, &ctx->d_stall, &ctx->d_finish,
        &ctx->d_icfetch, &ctx->misc,
    };
    for (int k = 0; k < 10; k++) {
        if (!(*dptr[k] = acquire_ll(ctx, PyTuple_GET_ITEM(deltas, k))))
            goto fail;
    }
    if (!(ctx->regs = acquire_ll(ctx, regs)))
        goto fail;

    PyObject *capsule = PyCapsule_New(ctx, CTX_NAME, ctx_destructor);
    if (!capsule)
        goto fail;
    return capsule;

fail:
    ctx_release(ctx);
    PyMem_Free(ctx->views);
    PyMem_Free(ctx->cl_states);
    PyMem_Free(ctx->cl_inflight);
    PyMem_Free(ctx->ic_states);
    PyMem_Free(ctx->ic_mask);
    PyMem_Free(ctx);
    return NULL;
}

static PyObject *
native_release(PyObject *self, PyObject *capsule)
{
    (void)self;
    Ctx *ctx = (Ctx *)PyCapsule_GetPointer(capsule, CTX_NAME);
    if (!ctx)
        return NULL;
    ctx_release(ctx);
    Py_RETURN_NONE;
}

/* --------------------------------------------------------------- drain */

static PyObject *
native_drain(PyObject *self, PyObject *args)
{
    (void)self;
    PyObject *capsule, *chunk;
    if (!PyArg_ParseTuple(args, "OO", &capsule, &chunk))
        return NULL;
    Ctx *ctx = (Ctx *)PyCapsule_GetPointer(capsule, CTX_NAME);
    if (!ctx)
        return NULL;
    if (ctx->released) {
        PyErr_SetString(PyExc_RuntimeError, "drain on released context");
        return NULL;
    }
    Py_buffer cview;
    if (PyObject_GetBuffer(chunk, &cview, PyBUF_SIMPLE) < 0)
        return NULL;
    const long long *data = (const long long *)cview.buf;
    long long end = (long long)(cview.len / 8);

    long long *regs = ctx->regs;
    long long i = regs[0];
    long long sub = regs[1];
    long long time = regs[2];
    long long next_time = regs[3];
    long long pid = regs[4];
    long long cl = regs[5];
    long long limit = ctx->limit;
    long long *misc = ctx->misc;
    int status = STATUS_EXHAUSTED;

    while (i < end) {
        long long op = data[i];
        if (op == OP_READ || op == OP_WRITE || op == OP_COMPUTE) {
            if (time > limit)
                goto limit_exceeded;
            long long operand = data[i + 1];
            i += 2;
            misc[0]++;
            if (op == OP_COMPUTE) {
                if (operand) {
                    ctx->d_busy[pid] += operand;
                    time += operand;
                    if (time > next_time) {
                        status = STATUS_PREEMPT;
                        break;
                    }
                }
                continue;
            }
            if (do_access(ctx, cl, pid, op == OP_READ, operand,
                          &time) < 0)
                goto fail;
            if (time > next_time) {
                status = STATUS_PREEMPT;
                break;
            }
        }
        else if (op == OP_READ_SPAN || op == OP_WRITE_SPAN) {
            long long base = data[i + 1];
            long long size = data[i + 2];
            long long stride = data[i + 3];
            long long offset = sub;
            sub = 0;
            int preempted = 0;
            int is_read = op == OP_READ_SPAN;
            while (offset < size) {
                if (time > limit)
                    goto limit_exceeded;
                misc[0]++;
                if (do_access(ctx, cl, pid, is_read, base + offset,
                              &time) < 0)
                    goto fail;
                offset += stride;
                if (time > next_time) {
                    preempted = 1;
                    break;
                }
            }
            if (offset >= size)
                i += 4;
            else
                sub = offset;
            if (preempted) {
                status = STATUS_PREEMPT;
                break;
            }
        }
        else if (op == OP_IFETCH) {
            if (time > limit)
                goto limit_exceeded;
            misc[0]++;
            long long count = data[i + 2];
            if (ctx->icache_mode == 0) {
                ctx->d_busy[pid] += count;
                time += count;
            }
            else if (ctx->icache_mode == 1) {
                long long addr = data[i + 1];
                long long iline_no = addr >> ctx->iline_shift;
                long long ilast =
                    (addr + count * 4 - 1) >> ctx->iline_shift;
                long long *istates = ctx->ic_states[pid];
                long long *itags = ctx->ic_tags[pid];
                long long imask = ctx->ic_mask[pid];
                long long ishift = ctx->ic_shift[pid];
                while (iline_no <= ilast) {
                    long long idxi = iline_no & imask;
                    if (istates[idxi]
                        && itags[idxi] == (iline_no >> ishift))
                        iline_no++;
                    else
                        break;
                }
                if (iline_no > ilast) {
                    ctx->d_icfetch[pid] +=
                        ilast - (addr >> ctx->iline_shift) + 1;
                    ctx->d_busy[pid] += count;
                    time += count;
                }
                else {
                    int err = 0;
                    time = call_ifetch(ctx, pid, addr, count, time, &err);
                    if (err)
                        goto fail;
                }
            }
            else {
                int err = 0;
                time = call_ifetch(ctx, pid, data[i + 1], count, time,
                                   &err);
                if (err)
                    goto fail;
            }
            i += 3;
            if (time > next_time) {
                status = STATUS_PREEMPT;
                break;
            }
        }
        else if (op == OP_ENQUEUE) {
            if (time > limit)
                goto limit_exceeded;
            misc[0]++;
            PyObject *key = PyLong_FromLongLong(data[i + 1]);
            if (!key)
                goto fail;
            PyObject *q = PyDict_GetItemWithError(ctx->queues, key);
            if (q) {
                Py_INCREF(q);
            }
            else {
                if (PyErr_Occurred()) {
                    Py_DECREF(key);
                    goto fail;
                }
                q = PyObject_CallNoArgs(g_deque);
                if (!q || PyDict_SetItem(ctx->queues, key, q) < 0) {
                    Py_XDECREF(q);
                    Py_DECREF(key);
                    goto fail;
                }
            }
            Py_DECREF(key);
            PyObject *item = PyLong_FromLongLong(data[i + 2]);
            PyObject *r = item ? PyObject_CallMethodObjArgs(
                q, s_append, item, NULL) : NULL;
            Py_XDECREF(item);
            Py_DECREF(q);
            if (!r)
                goto fail;
            Py_DECREF(r);
            i += 3;
        }
        else if (op == OP_DEQUEUE) {
            if (time > limit)
                goto limit_exceeded;
            misc[0]++;
            PyObject *key = PyLong_FromLongLong(data[i + 1]);
            if (!key)
                goto fail;
            PyObject *q = PyDict_GetItemWithError(ctx->queues, key);
            Py_DECREF(key);
            if (!q && PyErr_Occurred())
                goto fail;
            if (q) {
                int truthy = PyObject_IsTrue(q);
                if (truthy < 0)
                    goto fail;
                if (truthy) {
                    PyObject *r = PyObject_CallMethodObjArgs(
                        q, s_popleft, NULL);
                    if (!r)
                        goto fail;
                    Py_DECREF(r);
                }
            }
            i += 2;
        }
        else {
            /* Synchronization or unknown opcode: the wrapper runs the
             * handler (or raises the unknown-opcode error) for exact
             * error/accounting parity with the python loop. */
            if (time > limit)
                goto limit_exceeded;
            status = STATUS_SYNC;
            break;
        }
    }

    regs[0] = i;
    regs[1] = sub;
    regs[2] = time;
    PyBuffer_Release(&cview);
    return PyLong_FromLong(status);

limit_exceeded:
    PyErr_Format(PyExc_RuntimeError, "simulation exceeded %lld cycles",
                 limit);
fail:
    regs[0] = i;
    regs[1] = sub;
    regs[2] = time;
    PyBuffer_Release(&cview);
    return NULL;
}

/* ==================================================================== */
/* Fused multi-configuration ladder (repro.trace.multiconfig)           */
/* ==================================================================== */

/* Transcription of ``multiconfig._fused_pass``: one pass over a
 * single-process tape driving every rung of an SCC ladder at once.
 * Per-size timing is a skew against the shared base clock; hits with no
 * live fill/write-buffer window anywhere (``hot_n == 0``) cost a single
 * smallest-size tag probe.  The wrapper
 * (``multiconfig._fused_pass_native``) owns plan construction, the
 * python-side synchronization handlers (status 2), and the statistics
 * flush; every array here is ``array('q')`` storage it allocated.
 *
 * Exactness is inherited from the python engine line by line: the same
 * fold of the shared clock into per-size finish times, the same
 * hot-window bookkeeping, the same write-buffer heap arithmetic (the
 * per-size heaps are python lists shared with the flush).  A
 * non-positive span stride raises ValueError exactly like the decoded
 * tiers instead of spinning (the ladder has no cycle limit to bail it
 * out).
 */

#define ST_SHARED 1     /* repro.core.cache.SHARED */

typedef struct {
    PyObject *plan;
    int n_sizes;
    int released;
    long long line_shift, nbanks, occ, up_occ, mem_lat, ic_lat, wb_depth;
    long long install_state, model_icache, il_shift, ic_mask, ic_shift;
    long long **s_states, **s_tags;
    long long *s_mask, *s_shift;
    PyObject **inflight, **wbufs;
    long long *skew, *fin, *folded, *fill_live, *wb_live, *hot;
    long long *bus_busy, *bus_tx, *bus_cyc;
    long long *d_rmiss, *d_wmiss, *d_upg, *d_evict, *d_wb, *d_wbuf;
    long long *d_bus_wait, *d_stall, *d_ic;
    long long *ic_states, *ic_tags;
    long long *regs;    /* i, base, uref, ev, n_reads, n_writes, u_busy,
                           hot_n, ic_misses, ic_fetch_lines */
    Py_buffer *views;
    int nviews;
} LCtx;

static const char LCTX_NAME[] = "repro.trace.engine._native.ladder";

static long long *
l_acquire(LCtx *ctx, PyObject *obj)
{
    Py_buffer *view = &ctx->views[ctx->nviews];
    if (PyObject_GetBuffer(obj, view, PyBUF_WRITABLE) < 0)
        return NULL;
    ctx->nviews++;
    return (long long *)view->buf;
}

/* Fold the shared clock into rung ``s`` and return its local time. */
static inline long long
l_fold(LCtx *c, int s, long long base, long long uref)
{
    long long sk = c->skew[s];
    if (uref > c->folded[s]) {
        long long f = uref + sk;
        if (f > c->fin[s])
            c->fin[s] = f;
    }
    c->folded[s] = uref;
    return base + sk;
}

static inline void
l_update_hot(LCtx *c, int s, long long done, long long *hot_n)
{
    if (c->fill_live[s] > done || c->wb_live[s] > done) {
        if (!c->hot[s]) {
            c->hot[s] = 1;
            (*hot_n)++;
        }
    }
    else if (c->hot[s]) {
        c->hot[s] = 0;
        (*hot_n)--;
    }
}

/* ``inflight[s].pop(key, None)`` guarded by ``if inflight[s]:``. */
static int
l_inflight_pop(PyObject *infl, long long key)
{
    if (PyDict_GET_SIZE(infl) == 0)
        return 0;
    PyObject *k = PyLong_FromLongLong(key);
    if (!k)
        return -1;
    PyObject *v = PyDict_GetItemWithError(infl, k);
    if (v) {
        if (PyDict_DelItem(infl, k) < 0) {
            Py_DECREF(k);
            return -1;
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(k);
        return -1;
    }
    Py_DECREF(k);
    return 0;
}

/* ``inflight[s][line] = fetch_done`` */
static int
l_inflight_set(PyObject *infl, long long line, long long fetch_done)
{
    PyObject *k = PyLong_FromLongLong(line);
    PyObject *v = k ? PyLong_FromLongLong(fetch_done) : NULL;
    if (!k || !v) {
        Py_XDECREF(k);
        Py_XDECREF(v);
        return -1;
    }
    int rc = PyDict_SetItem(infl, k, v);
    Py_DECREF(k);
    Py_DECREF(v);
    return rc;
}

/* ``inflight[s].get(line)`` with the hot-hit resolution: delete stale
 * entries, otherwise return the fill-adjusted completion. */
static long long
l_inflight_hit(PyObject *infl, long long line, long long t, long long done,
               int *err)
{
    PyObject *k = PyLong_FromLongLong(line);
    if (!k) {
        *err = 1;
        return 0;
    }
    PyObject *v = PyDict_GetItemWithError(infl, k);
    if (v) {
        long long ready = PyLong_AsLongLong(v);
        if (ready == -1 && PyErr_Occurred()) {
            Py_DECREF(k);
            *err = 1;
            return 0;
        }
        if (ready <= t) {
            if (PyDict_DelItem(infl, k) < 0) {
                Py_DECREF(k);
                *err = 1;
                return 0;
            }
        }
        else {
            done = ready + 1;
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(k);
        *err = 1;
        return 0;
    }
    Py_DECREF(k);
    return done;
}

/* ``reserve()`` on rung ``s``: c_reserve arithmetic over the rung's
 * write-buffer heaps plus the live-window watermark. */
static long long
l_reserve(LCtx *ctx, int s, long long bank, long long now,
          long long retire, int *err)
{
    PyObject *buf = PyList_GET_ITEM(ctx->wbufs[s], bank);
    while (PyList_GET_SIZE(buf) > 0) {
        long long top = PyLong_AsLongLong(PyList_GET_ITEM(buf, 0));
        if (top == -1 && PyErr_Occurred()) {
            *err = 1;
            return 0;
        }
        if (top > now)
            break;
        wb_heappop(buf, err);
        if (*err)
            return 0;
    }
    long long stall = 0;
    if (PyList_GET_SIZE(buf) >= ctx->wb_depth) {
        long long oldest = wb_heappop(buf, err);
        if (*err)
            return 0;
        if (oldest > now)
            stall = oldest - now;
    }
    long long push = now + stall;
    if (retire > push)
        push = retire;
    if (wb_heappush(buf, push) < 0) {
        *err = 1;
        return 0;
    }
    if (push > ctx->wb_live[s])
        ctx->wb_live[s] = push;
    return stall;
}

/* Per-size processing for a read that is not uniformly quiet. */
static int
l_slow_read(LCtx *c, long long line, long long base, long long uref,
            long long *hot_n)
{
    int s = 0;
    int n = c->n_sizes;
    for (; s < n; s++) {                    /* misses: ladder prefix */
        long long *states = c->s_states[s];
        long long index = line & c->s_mask[s];
        long long tag = line >> c->s_shift[s];
        if (states[index] && c->s_tags[s][index] == tag)
            break;
        long long t = l_fold(c, s, base, uref);
        c->d_rmiss[s]++;
        long long grant = c->bus_busy[s];
        if (grant < t)
            grant = t;
        c->bus_busy[s] = grant + c->occ;
        c->bus_tx[s]++;
        c->bus_cyc[s] += c->occ;
        c->d_bus_wait[s] += grant - t;
        long long done = grant + c->mem_lat;
        long long old = states[index];
        if (old) {                          /* tag differs: eviction */
            c->d_evict[s]++;
            if (old == ST_MODIFIED) {
                c->d_wb[s]++;
                c->bus_busy[s] += c->occ;
                c->bus_tx[s]++;
                c->bus_cyc[s] += c->occ;
            }
            if (l_inflight_pop(c->inflight[s],
                               (c->s_tags[s][index] << c->s_shift[s])
                               | index) < 0)
                return -1;
        }
        c->s_tags[s][index] = tag;
        states[index] = c->install_state;
        long long ret = done + 1;
        c->d_stall[s] += ret - t - 1;
        c->fin[s] = ret;
        c->skew[s] = ret - base - 1;
        l_update_hot(c, s, ret, hot_n);
    }
    if (*hot_n) {                           /* hits inside live windows */
        for (; s < n; s++) {
            if (!c->hot[s])
                continue;
            long long t = l_fold(c, s, base, uref);
            long long done = t + 1;
            if (c->fill_live[s] > t) {
                int err = 0;
                done = l_inflight_hit(c->inflight[s], line, t, done, &err);
                if (err)
                    return -1;
            }
            c->d_stall[s] += done - t - 1;
            c->fin[s] = done;
            c->skew[s] = done - base - 1;
            if (c->fill_live[s] <= done && c->wb_live[s] <= done) {
                c->hot[s] = 0;
                (*hot_n)--;
            }
        }
    }
    return 0;
}

/* Per-size processing for a write that is not uniformly quiet. */
static int
l_slow_write(LCtx *c, long long line, long long bank, long long base,
             long long uref, long long *hot_n)
{
    int s = 0;
    int n = c->n_sizes;
    int err = 0;
    for (; s < n; s++) {                    /* misses: ladder prefix */
        long long *states = c->s_states[s];
        long long index = line & c->s_mask[s];
        long long tag = line >> c->s_shift[s];
        if (states[index] && c->s_tags[s][index] == tag)
            break;
        long long t = l_fold(c, s, base, uref);
        c->d_wmiss[s]++;
        long long grant = c->bus_busy[s];
        if (grant < t)
            grant = t;
        c->bus_busy[s] = grant + c->occ;
        c->bus_tx[s]++;
        c->bus_cyc[s] += c->occ;
        c->d_bus_wait[s] += grant - t;
        long long fetch_done = grant + c->mem_lat;
        long long old = states[index];
        if (old) {
            c->d_evict[s]++;
            if (old == ST_MODIFIED) {
                c->d_wb[s]++;
                c->bus_busy[s] += c->occ;
                c->bus_tx[s]++;
                c->bus_cyc[s] += c->occ;
            }
            if (l_inflight_pop(c->inflight[s],
                               (c->s_tags[s][index] << c->s_shift[s])
                               | index) < 0)
                return -1;
        }
        c->s_tags[s][index] = tag;
        states[index] = ST_MODIFIED;
        if (l_inflight_set(c->inflight[s], line, fetch_done) < 0)
            return -1;
        if (fetch_done > c->fill_live[s])
            c->fill_live[s] = fetch_done;
        long long complete = t + 1;
        long long stall = l_reserve(c, s, bank, complete, fetch_done,
                                    &err);
        if (err)
            return -1;
        c->d_wbuf[s] += stall;
        long long done = complete + stall;
        c->d_stall[s] += done - t - 1;
        c->fin[s] = done;
        c->skew[s] = done - base - 1;
        l_update_hot(c, s, done, hot_n);
    }
    for (; s < n; s++) {                    /* resident sizes */
        long long *states = c->s_states[s];
        long long index = line & c->s_mask[s];
        long long state = states[index];
        if (state == ST_SHARED) {           /* upgrade broadcast */
            long long t = l_fold(c, s, base, uref);
            c->d_upg[s]++;
            long long grant = c->bus_busy[s];
            if (grant < t)
                grant = t;
            c->bus_busy[s] = grant + c->up_occ;
            c->bus_tx[s]++;
            c->bus_cyc[s] += c->up_occ;
            states[index] = ST_MODIFIED;
            long long complete = t + 1;
            long long stall = l_reserve(c, s, bank, complete,
                                        grant + c->up_occ, &err);
            if (err)
                return -1;
            c->d_wbuf[s] += stall;
            long long done = complete + stall;
            c->d_stall[s] += done - t - 1;
            c->fin[s] = done;
            c->skew[s] = done - base - 1;
            l_update_hot(c, s, done, hot_n);
        }
        else {
            if (state != ST_MODIFIED)       /* MESI silent E -> M */
                states[index] = ST_MODIFIED;
            if (c->hot[s]) {
                long long t = l_fold(c, s, base, uref);
                long long done = t + 1;
                if (c->fill_live[s] > t) {
                    done = l_inflight_hit(c->inflight[s], line, t, done,
                                          &err);
                    if (err)
                        return -1;
                }
                if (c->wb_live[s] > done) {
                    long long stall = l_reserve(c, s, bank, done, done,
                                                &err);
                    if (err)
                        return -1;
                    c->d_wbuf[s] += stall;
                    done += stall;
                }
                c->d_stall[s] += done - t - 1;
                c->fin[s] = done;
                c->skew[s] = done - base - 1;
                if (c->fill_live[s] <= done && c->wb_live[s] <= done) {
                    c->hot[s] = 0;
                    (*hot_n)--;
                }
            }
        }
    }
    return 0;
}

static void
lctx_release(LCtx *ctx)
{
    if (ctx->released)
        return;
    ctx->released = 1;
    for (int i = 0; i < ctx->nviews; i++)
        PyBuffer_Release(&ctx->views[i]);
    ctx->nviews = 0;
    Py_CLEAR(ctx->plan);
}

static void
lctx_destructor(PyObject *capsule)
{
    LCtx *ctx = (LCtx *)PyCapsule_GetPointer(capsule, LCTX_NAME);
    if (!ctx)
        return;
    lctx_release(ctx);
    PyMem_Free(ctx->views);
    PyMem_Free(ctx->s_states);
    PyMem_Free(ctx->s_mask);
    PyMem_Free(ctx->inflight);
    PyMem_Free(ctx);
}

/* plan: (per_size, scal, state, deltas, ic, regs)
 *   per_size -- tuple per rung: (states, tags, index_mask, tag_shift,
 *               inflight dict, write-buffer list-of-heaps)
 *   scal     -- array('q'): line_shift, nbanks, occ, up_occ, mem_lat,
 *               ic_lat, wb_depth, install_state, model_icache, il_shift,
 *               ic_mask, ic_shift
 *   state    -- tuple of array('q') per-size arrays: skew, fin, folded,
 *               fill_live, wb_live, hot, bus_busy, bus_tx, bus_cyc
 *   deltas   -- tuple of array('q') per-size arrays: d_rmiss, d_wmiss,
 *               d_upg, d_evict, d_wb, d_wbuf, d_bus_wait, d_stall, d_ic
 *   ic       -- (ic_states, ic_tags) array('q') pair, or () when the
 *               icache is unmodelled
 *   regs     -- array('q'): i, base, uref, ev, n_reads, n_writes,
 *               u_busy, hot_n, ic_misses, ic_fetch_lines
 */
static PyObject *
native_ladder_setup(PyObject *self, PyObject *plan)
{
    (void)self;
    if (!PyTuple_Check(plan) || PyTuple_GET_SIZE(plan) != 6) {
        PyErr_SetString(PyExc_TypeError, "ladder plan must be a 6-tuple");
        return NULL;
    }
    PyObject *per_size = PyTuple_GET_ITEM(plan, 0);
    PyObject *scal = PyTuple_GET_ITEM(plan, 1);
    PyObject *state = PyTuple_GET_ITEM(plan, 2);
    PyObject *deltas = PyTuple_GET_ITEM(plan, 3);
    PyObject *ic = PyTuple_GET_ITEM(plan, 4);
    PyObject *regs = PyTuple_GET_ITEM(plan, 5);

    LCtx *ctx = PyMem_Calloc(1, sizeof(LCtx));
    if (!ctx)
        return PyErr_NoMemory();
    ctx->n_sizes = (int)PyTuple_GET_SIZE(per_size);

    int max_views = 2 * ctx->n_sizes + 9 + 9 + 2 + 1;
    ctx->views = PyMem_Calloc(max_views, sizeof(Py_buffer));
    ctx->s_states = PyMem_Calloc(2 * ctx->n_sizes, sizeof(long long *));
    ctx->s_mask = PyMem_Calloc(2 * ctx->n_sizes, sizeof(long long));
    ctx->inflight = PyMem_Calloc(2 * ctx->n_sizes, sizeof(PyObject *));
    if (!ctx->views || !ctx->s_states || !ctx->s_mask || !ctx->inflight) {
        PyMem_Free(ctx->views);
        PyMem_Free(ctx->s_states);
        PyMem_Free(ctx->s_mask);
        PyMem_Free(ctx->inflight);
        PyMem_Free(ctx);
        return PyErr_NoMemory();
    }
    ctx->s_tags = ctx->s_states + ctx->n_sizes;
    ctx->s_shift = ctx->s_mask + ctx->n_sizes;
    ctx->wbufs = ctx->inflight + ctx->n_sizes;

    ctx->plan = plan;
    Py_INCREF(plan);

    long long sc[12];
    for (Py_ssize_t k = 0; k < 12; k++) {
        if (get_ll_item(scal, k, &sc[k]) < 0)
            goto fail;
    }
    ctx->line_shift = sc[0];
    ctx->nbanks = sc[1];
    ctx->occ = sc[2];
    ctx->up_occ = sc[3];
    ctx->mem_lat = sc[4];
    ctx->ic_lat = sc[5];
    ctx->wb_depth = sc[6];
    ctx->install_state = sc[7];
    ctx->model_icache = sc[8];
    ctx->il_shift = sc[9];
    ctx->ic_mask = sc[10];
    ctx->ic_shift = sc[11];

    for (int s = 0; s < ctx->n_sizes; s++) {
        PyObject *entry = PyTuple_GET_ITEM(per_size, s);
        if (!(ctx->s_states[s] =
                  l_acquire(ctx, PyTuple_GET_ITEM(entry, 0))))
            goto fail;
        if (!(ctx->s_tags[s] =
                  l_acquire(ctx, PyTuple_GET_ITEM(entry, 1))))
            goto fail;
        if (get_ll_item(entry, 2, &ctx->s_mask[s]) < 0)
            goto fail;
        if (get_ll_item(entry, 3, &ctx->s_shift[s]) < 0)
            goto fail;
        ctx->inflight[s] = PyTuple_GET_ITEM(entry, 4);
        ctx->wbufs[s] = PyTuple_GET_ITEM(entry, 5);
    }

    long long **sptr[9] = {
        &ctx->skew, &ctx->fin, &ctx->folded, &ctx->fill_live,
        &ctx->wb_live, &ctx->hot, &ctx->bus_busy, &ctx->bus_tx,
        &ctx->bus_cyc,
    };
    for (int k = 0; k < 9; k++) {
        if (!(*sptr[k] = l_acquire(ctx, PyTuple_GET_ITEM(state, k))))
            goto fail;
    }
    long long **dptr[9] = {
        &ctx->d_rmiss, &ctx->d_wmiss, &ctx->d_upg, &ctx->d_evict,
        &ctx->d_wb, &ctx->d_wbuf, &ctx->d_bus_wait, &ctx->d_stall,
        &ctx->d_ic,
    };
    for (int k = 0; k < 9; k++) {
        if (!(*dptr[k] = l_acquire(ctx, PyTuple_GET_ITEM(deltas, k))))
            goto fail;
    }
    if (ctx->model_icache) {
        if (!(ctx->ic_states = l_acquire(ctx, PyTuple_GET_ITEM(ic, 0))))
            goto fail;
        if (!(ctx->ic_tags = l_acquire(ctx, PyTuple_GET_ITEM(ic, 1))))
            goto fail;
    }
    if (!(ctx->regs = l_acquire(ctx, regs)))
        goto fail;

    PyObject *capsule = PyCapsule_New(ctx, LCTX_NAME, lctx_destructor);
    if (!capsule)
        goto fail;
    return capsule;

fail:
    lctx_release(ctx);
    PyMem_Free(ctx->views);
    PyMem_Free(ctx->s_states);
    PyMem_Free(ctx->s_mask);
    PyMem_Free(ctx->inflight);
    PyMem_Free(ctx);
    return NULL;
}

static PyObject *
native_ladder_release(PyObject *self, PyObject *capsule)
{
    (void)self;
    LCtx *ctx = (LCtx *)PyCapsule_GetPointer(capsule, LCTX_NAME);
    if (!ctx)
        return NULL;
    lctx_release(ctx);
    Py_RETURN_NONE;
}

static PyObject *
native_ladder_drain(PyObject *self, PyObject *args)
{
    (void)self;
    PyObject *capsule, *chunk;
    if (!PyArg_ParseTuple(args, "OO", &capsule, &chunk))
        return NULL;
    LCtx *ctx = (LCtx *)PyCapsule_GetPointer(capsule, LCTX_NAME);
    if (!ctx)
        return NULL;
    if (ctx->released) {
        PyErr_SetString(PyExc_RuntimeError, "drain on released context");
        return NULL;
    }
    Py_buffer cview;
    if (PyObject_GetBuffer(chunk, &cview, PyBUF_SIMPLE) < 0)
        return NULL;
    const long long *data = (const long long *)cview.buf;
    long long end = (long long)(cview.len / 8);

    long long *regs = ctx->regs;
    long long i = regs[0];
    long long base = regs[1];
    long long uref = regs[2];
    long long ev = regs[3];
    long long n_reads = regs[4];
    long long n_writes = regs[5];
    long long u_busy = regs[6];
    long long hot_n = regs[7];
    long long ic_misses = regs[8];
    long long ic_fetch_lines = regs[9];
    long long line_shift = ctx->line_shift;
    long long nbanks = ctx->nbanks;
    long long mask0 = ctx->s_mask[0];
    long long shift0 = ctx->s_shift[0];
    long long *states0 = ctx->s_states[0];
    long long *tags0 = ctx->s_tags[0];
    int status = STATUS_EXHAUSTED;

    while (i < end) {
        long long op = data[i];
        if (op == OP_READ) {
            long long line = data[i + 1] >> line_shift;
            i += 2;
            ev++;
            long long index = line & mask0;
            if (!(hot_n == 0 && states0[index]
                  && tags0[index] == (line >> shift0))) {
                if (l_slow_read(ctx, line, base, uref, &hot_n) < 0)
                    goto fail;
            }
            n_reads++;
            base++;
            uref = base;
        }
        else if (op == OP_WRITE) {
            long long line = data[i + 1] >> line_shift;
            i += 2;
            ev++;
            long long index = line & mask0;
            if (!(hot_n == 0 && states0[index] == ST_MODIFIED
                  && tags0[index] == (line >> shift0))) {
                long long bank = line % nbanks;
                if (bank < 0)
                    bank += nbanks;
                if (l_slow_write(ctx, line, bank, base, uref, &hot_n) < 0)
                    goto fail;
            }
            n_writes++;
            base++;
            uref = base;
        }
        else if (op == OP_COMPUTE) {
            long long cycles = data[i + 1];
            i += 2;
            ev++;
            if (cycles) {
                u_busy += cycles;
                base += cycles;
            }
        }
        else if (op == OP_IFETCH) {
            long long count = data[i + 2];
            ev++;
            if (!ctx->model_icache) {
                u_busy += count;
                base += count;
                i += 3;
                continue;
            }
            long long addr = data[i + 1];
            i += 3;
            long long first = addr >> ctx->il_shift;
            long long last =
                (addr + count * 4 - 1) >> ctx->il_shift;
            long long *ic_states = ctx->ic_states;
            long long *ic_tags = ctx->ic_tags;
            long long ic_mask = ctx->ic_mask;
            long long ic_shift = ctx->ic_shift;
            long long ln = first;
            while (ln <= last) {
                long long ii = ln & ic_mask;
                if (ic_states[ii] && ic_tags[ii] == (ln >> ic_shift))
                    ln++;
                else
                    break;
            }
            if (ln > last) {
                /* Every line resident: no refills at any size. */
                ic_fetch_lines += last - first + 1;
                u_busy += count;
                base += count;
                continue;
            }
            long long misses = 0;
            for (ln = first; ln <= last; ln++) {
                ic_fetch_lines++;
                long long ii = ln & ic_mask;
                if (!(ic_states[ii]
                      && ic_tags[ii] == (ln >> ic_shift))) {
                    ic_tags[ii] = ln >> ic_shift;
                    ic_states[ii] = ST_SHARED;
                    misses++;
                }
            }
            ic_misses += misses;
            for (int s = 0; s < ctx->n_sizes; s++) {
                long long t = l_fold(ctx, s, base, uref);
                long long stall = 0;
                long long busy = ctx->bus_busy[s];
                for (long long m = 0; m < misses; m++) {
                    long long request = t + stall;
                    if (busy < request)
                        busy = request;
                    busy += ctx->occ;
                    stall = busy - ctx->occ + ctx->ic_lat - t;
                }
                ctx->bus_busy[s] = busy;
                ctx->bus_tx[s] += misses;
                ctx->bus_cyc[s] += misses * ctx->occ;
                ctx->d_ic[s] += stall;
                ctx->skew[s] += stall;
                long long t_new = t + count + stall;
                l_update_hot(ctx, s, t_new, &hot_n);
            }
            u_busy += count;
            base += count;
        }
        else if (op == OP_READ_SPAN || op == OP_WRITE_SPAN) {
            long long span_base = data[i + 1];
            long long size = data[i + 2];
            long long stride = data[i + 3];
            if (size > 0 && stride <= 0) {
                /* The scalar loop would spin forever; fail like the
                 * decoded tiers do (error parity for the differ). */
                PyErr_Format(PyExc_ValueError,
                             "non-positive span stride at %lld", i);
                goto fail;
            }
            i += 4;
            int is_read = op == OP_READ_SPAN;
            long long offset = 0;
            while (offset < size) {
                ev++;
                long long line = (span_base + offset) >> line_shift;
                long long index = line & mask0;
                if (is_read) {
                    if (!(hot_n == 0 && states0[index]
                          && tags0[index] == (line >> shift0))) {
                        if (l_slow_read(ctx, line, base, uref,
                                        &hot_n) < 0)
                            goto fail;
                    }
                    n_reads++;
                }
                else {
                    if (!(hot_n == 0 && states0[index] == ST_MODIFIED
                          && tags0[index] == (line >> shift0))) {
                        long long bank = line % nbanks;
                        if (bank < 0)
                            bank += nbanks;
                        if (l_slow_write(ctx, line, bank, base, uref,
                                         &hot_n) < 0)
                            goto fail;
                    }
                    n_writes++;
                }
                base++;
                uref = base;
                offset += stride;
            }
        }
        else {
            /* Queue, synchronization or unknown opcode: python side. */
            status = STATUS_SYNC;
            break;
        }
    }

    regs[0] = i;
    regs[1] = base;
    regs[2] = uref;
    regs[3] = ev;
    regs[4] = n_reads;
    regs[5] = n_writes;
    regs[6] = u_busy;
    regs[7] = hot_n;
    regs[8] = ic_misses;
    regs[9] = ic_fetch_lines;
    PyBuffer_Release(&cview);
    return PyLong_FromLong(status);

fail:
    regs[0] = i;
    regs[1] = base;
    regs[2] = uref;
    regs[3] = ev;
    regs[4] = n_reads;
    regs[5] = n_writes;
    regs[6] = u_busy;
    regs[7] = hot_n;
    regs[8] = ic_misses;
    regs[9] = ic_fetch_lines;
    PyBuffer_Release(&cview);
    return NULL;
}

/* --------------------------------------------------------------- module */

static PyMethodDef methods[] = {
    {"setup", native_setup, METH_O,
     "Parse a drain plan into a context capsule."},
    {"drain", native_drain, METH_VARARGS,
     "Consume packed events; returns 0/1/2 (exhausted/preempt/sync)."},
    {"release", native_release, METH_O,
     "Release the buffer views held by a context."},
    {"ladder_setup", native_ladder_setup, METH_O,
     "Parse a fused-ladder plan into a context capsule."},
    {"ladder_drain", native_ladder_drain, METH_VARARGS,
     "Run the fused ladder over packed events; returns 0/2."},
    {"ladder_release", native_ladder_release, METH_O,
     "Release the buffer views held by a ladder context."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_native",
    "C inner loop for the packed replay interleaver.", -1, methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *collections = PyImport_ImportModule("collections");
    if (!collections)
        return NULL;
    g_deque = PyObject_GetAttrString(collections, "deque");
    Py_DECREF(collections);
    if (!g_deque)
        return NULL;
    s_append = PyUnicode_InternFromString("append");
    s_popleft = PyUnicode_InternFromString("popleft");
    s_complete = PyUnicode_InternFromString("complete");
    s_retire = PyUnicode_InternFromString("retire");
    if (!s_append || !s_popleft || !s_complete || !s_retire)
        return NULL;
    return PyModule_Create(&moduledef);
}
