/* Packed-chunk drain loop for the repro timing interleaver.
 *
 * This is a transcription of the inner loop of
 * ``TimingInterleaver._run_fast`` (src/repro/trace/interleave.py) into C
 * over raw ``int64_t*`` views of the ``array('q')`` storage the python
 * model already uses for cache tags/states and bank free times.  The
 * python wrapper (engine/native.py) keeps the scheduler: heap switches,
 * generator resumes and synchronization handlers happen in python, and
 * coherence misses / icache refills call back into the python model.
 * Everything here must stay observably identical to the python loop --
 * the differential verifier diffs fingerprints and error messages.
 *
 * Protocol: ``setup(plan)`` parses the plan tuple into a context capsule
 * with all buffers acquired once; ``drain(ctx, chunk)`` consumes events
 * starting at the position in ``regs`` until the chunk is exhausted
 * (returns 0), the process is preempted by the cached heap top
 * (returns 1), or a synchronization / unknown opcode needs the python
 * handler (returns 2, with ``regs`` pointing at the opcode);
 * ``release(ctx)`` drops the buffer views deterministically.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define OP_READ 1
#define OP_WRITE 2
#define OP_COMPUTE 3
#define OP_IFETCH 4
#define OP_ENQUEUE 8
#define OP_DEQUEUE 9
#define OP_READ_SPAN 10
#define OP_WRITE_SPAN 11

#define ST_MODIFIED 2   /* repro.core.cache.MODIFIED */

#define STATUS_EXHAUSTED 0
#define STATUS_PREEMPT 1
#define STATUS_SYNC 2

static PyObject *g_deque = NULL;      /* collections.deque */
static PyObject *s_append = NULL;
static PyObject *s_popleft = NULL;
static PyObject *s_complete = NULL;
static PyObject *s_retire = NULL;

typedef struct {
    PyObject *plan;           /* strong ref; keeps every borrowed ptr alive */
    int n_cl;
    int nproc;
    int released;
    long long idx_mask, tag_shift, line_shift, nbanks, bank_cycle;
    long long wb_depth, iline_shift, limit;
    int stall_on_writes, icache_mode;
    long long **cl_states, **cl_tags, **cl_bank_free;
    PyObject **cl_inflight, **cl_scc, **cl_wbufs;
    long long **ic_states, **ic_tags;
    long long *ic_mask, *ic_shift;
    long long *d_reads, *d_writes, *d_conf, *d_wbuf;
    long long *d_refs, *d_busy, *d_stall, *d_finish, *d_icfetch, *misc;
    long long *regs;          /* i, sub, time, next_time, pid, cl */
    PyObject *read_miss, *write_line, *ifetch, *queues;
    Py_buffer *views;
    int nviews;
} Ctx;

static const char CTX_NAME[] = "repro.trace.engine._native.ctx";

/* ---------------------------------------------------------------- utils */

static long long *
acquire_ll(Ctx *ctx, PyObject *obj)
{
    Py_buffer *view = &ctx->views[ctx->nviews];
    if (PyObject_GetBuffer(obj, view, PyBUF_WRITABLE) < 0)
        return NULL;
    ctx->nviews++;
    return (long long *)view->buf;
}

static int
get_ll_item(PyObject *seq, Py_ssize_t i, long long *out)
{
    PyObject *obj = PySequence_GetItem(seq, i);
    if (!obj)
        return -1;
    *out = PyLong_AsLongLong(obj);
    Py_DECREF(obj);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Write-buffer heaps are plain python lists of ints, shared with
 * heapq-based python code.  Heap layout may differ from heapq's after
 * mixed use, but the multiset of retire times and the min element --
 * the only observable properties -- are identical. */

static int
wb_heappush(PyObject *heap, long long val)
{
    PyObject *obj = PyLong_FromLongLong(val);
    if (!obj)
        return -1;
    if (PyList_Append(heap, obj) < 0) {
        Py_DECREF(obj);
        return -1;
    }
    Py_DECREF(obj);
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        long long pv = PyLong_AsLongLong(PyList_GET_ITEM(heap, parent));
        if (pv == -1 && PyErr_Occurred())
            return -1;
        if (val >= pv)
            break;
        PyObject *a = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, parent));
        PyList_SET_ITEM(heap, parent, a);
        pos = parent;
    }
    return 0;
}

static long long
wb_heappop(PyObject *heap, int *err)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    long long result = PyLong_AsLongLong(PyList_GET_ITEM(heap, 0));
    if (result == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        *err = 1;
        return 0;
    }
    if (n > 1) {
        long long lv = PyLong_AsLongLong(last);
        PyList_SetItem(heap, 0, last);  /* steals our ref, frees old root */
        if (lv == -1 && PyErr_Occurred()) {
            *err = 1;
            return 0;
        }
        Py_ssize_t m = n - 1, pos = 0;
        for (;;) {
            Py_ssize_t child = 2 * pos + 1;
            if (child >= m)
                break;
            long long cv = PyLong_AsLongLong(PyList_GET_ITEM(heap, child));
            if (cv == -1 && PyErr_Occurred()) {
                *err = 1;
                return 0;
            }
            if (child + 1 < m) {
                long long cv2 =
                    PyLong_AsLongLong(PyList_GET_ITEM(heap, child + 1));
                if (cv2 == -1 && PyErr_Occurred()) {
                    *err = 1;
                    return 0;
                }
                if (cv2 < cv) {
                    cv = cv2;
                    child++;
                }
            }
            if (cv >= lv)
                break;
            PyObject *a = PyList_GET_ITEM(heap, pos);
            PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, child));
            PyList_SET_ITEM(heap, child, a);
            pos = child;
        }
    }
    else {
        Py_DECREF(last);
    }
    return result;
}

/* BankInterconnect.reserve_write_slot, minus the probe (the fast path
 * guarantees NULL_PROBE) and minus write_stall_cycles, which the
 * wrapper settles from d_wbuf at flush time. */
static long long
c_reserve(Ctx *ctx, long long cl, long long bank, long long now,
          long long retire, int *err)
{
    PyObject *buf = PyList_GET_ITEM(ctx->cl_wbufs[cl], bank);
    while (PyList_GET_SIZE(buf) > 0) {
        long long top = PyLong_AsLongLong(PyList_GET_ITEM(buf, 0));
        if (top == -1 && PyErr_Occurred()) {
            *err = 1;
            return 0;
        }
        if (top > now)
            break;
        wb_heappop(buf, err);
        if (*err)
            return 0;
    }
    long long stall = 0;
    if (PyList_GET_SIZE(buf) >= ctx->wb_depth) {
        long long oldest = wb_heappop(buf, err);
        if (*err)
            return 0;
        stall = oldest - now;
        if (stall < 0)
            stall = 0;
    }
    long long push = now + stall;
    if (retire > push)
        push = retire;
    if (wb_heappush(buf, push) < 0) {
        *err = 1;
        return 0;
    }
    return stall;
}

static long long
inflight_done(PyObject *infl, long long line, long long start, int *err)
{
    if (PyDict_GET_SIZE(infl) == 0)
        return start + 1;
    PyObject *key = PyLong_FromLongLong(line);
    if (!key) {
        *err = 1;
        return 0;
    }
    PyObject *val = PyDict_GetItemWithError(infl, key);
    long long done = start + 1;
    if (val) {
        long long ready = PyLong_AsLongLong(val);
        if (ready == -1 && PyErr_Occurred()) {
            Py_DECREF(key);
            *err = 1;
            return 0;
        }
        if (ready <= start) {
            if (PyDict_DelItem(infl, key) < 0) {
                Py_DECREF(key);
                *err = 1;
                return 0;
            }
        }
        else {
            done = ready + 1;
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(key);
        *err = 1;
        return 0;
    }
    Py_DECREF(key);
    return done;
}

static long long
call_read_miss(Ctx *ctx, long long cl, long long line, long long start,
               int *err)
{
    PyObject *pl = PyLong_FromLongLong(line);
    PyObject *ps = pl ? PyLong_FromLongLong(start) : NULL;
    if (!pl || !ps) {
        Py_XDECREF(pl);
        Py_XDECREF(ps);
        *err = 1;
        return 0;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        ctx->read_miss, ctx->cl_scc[cl], pl, ps, NULL);
    Py_DECREF(pl);
    Py_DECREF(ps);
    if (!res) {
        *err = 1;
        return 0;
    }
    long long v = PyLong_AsLongLong(res);
    Py_DECREF(res);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

static int
call_write_line(Ctx *ctx, long long cl, long long line, long long start,
                long long *complete, long long *retire)
{
    PyObject *pl = PyLong_FromLongLong(line);
    PyObject *ps = pl ? PyLong_FromLongLong(start) : NULL;
    if (!pl || !ps) {
        Py_XDECREF(pl);
        Py_XDECREF(ps);
        return -1;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        ctx->write_line, ctx->cl_scc[cl], pl, ps, NULL);
    Py_DECREF(pl);
    Py_DECREF(ps);
    if (!res)
        return -1;
    PyObject *c = PyObject_GetAttr(res, s_complete);
    PyObject *r = c ? PyObject_GetAttr(res, s_retire) : NULL;
    Py_DECREF(res);
    if (!c || !r) {
        Py_XDECREF(c);
        Py_XDECREF(r);
        return -1;
    }
    *complete = PyLong_AsLongLong(c);
    *retire = PyLong_AsLongLong(r);
    Py_DECREF(c);
    Py_DECREF(r);
    if (PyErr_Occurred())
        return -1;
    return 0;
}

static long long
call_ifetch(Ctx *ctx, long long pid, long long addr, long long count,
            long long time, int *err)
{
    PyObject *a0 = PyLong_FromLongLong(pid);
    PyObject *a1 = a0 ? PyLong_FromLongLong(addr) : NULL;
    PyObject *a2 = a1 ? PyLong_FromLongLong(count) : NULL;
    PyObject *a3 = a2 ? PyLong_FromLongLong(time) : NULL;
    if (!a0 || !a1 || !a2 || !a3) {
        Py_XDECREF(a0);
        Py_XDECREF(a1);
        Py_XDECREF(a2);
        Py_XDECREF(a3);
        *err = 1;
        return 0;
    }
    PyObject *res = PyObject_CallFunctionObjArgs(
        ctx->ifetch, a0, a1, a2, a3, NULL);
    Py_DECREF(a0);
    Py_DECREF(a1);
    Py_DECREF(a2);
    Py_DECREF(a3);
    if (!res) {
        *err = 1;
        return 0;
    }
    long long v = PyLong_AsLongLong(res);
    Py_DECREF(res);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

/* One read/write reference; mirrors the python data-event body. */
static int
do_access(Ctx *ctx, long long cl, long long pid, int is_read,
          long long addr, long long *time_io)
{
    long long time = *time_io;
    long long line = addr >> ctx->line_shift;
    long long bank = line % ctx->nbanks;   /* python %: floored */
    if (bank < 0)
        bank += ctx->nbanks;
    long long *bank_free = ctx->cl_bank_free[cl];
    long long free_t = bank_free[bank];
    long long start;
    if (free_t > time) {
        ctx->d_conf[cl] += free_t - time;
        start = free_t;
    }
    else {
        start = time;
    }
    bank_free[bank] = start + ctx->bank_cycle;
    long long idx = line & ctx->idx_mask;
    long long *states = ctx->cl_states[cl];
    long long *tags = ctx->cl_tags[cl];
    long long done;
    int err = 0;
    if (is_read) {
        if (states[idx] && tags[idx] == (line >> ctx->tag_shift)) {
            ctx->d_reads[cl]++;
            done = inflight_done(ctx->cl_inflight[cl], line, start, &err);
            if (err)
                return -1;
        }
        else {
            done = call_read_miss(ctx, cl, line, start, &err);
            if (err)
                return -1;
        }
    }
    else {
        if (states[idx] >= ST_MODIFIED
            && tags[idx] == (line >> ctx->tag_shift)) {
            states[idx] = ST_MODIFIED;
            ctx->d_writes[cl]++;
            done = inflight_done(ctx->cl_inflight[cl], line, start, &err);
            if (err)
                return -1;
            if (!ctx->stall_on_writes) {
                long long stall =
                    c_reserve(ctx, cl, bank, done, done, &err);
                if (err)
                    return -1;
                ctx->d_wbuf[cl] += stall;
                done += stall;
            }
        }
        else {
            long long complete, retire;
            if (call_write_line(ctx, cl, line, start, &complete,
                                &retire) < 0)
                return -1;
            done = complete;
            if (ctx->stall_on_writes) {
                if (retire > done)
                    done = retire;
            }
            else {
                long long stall =
                    c_reserve(ctx, cl, bank, done, retire, &err);
                if (err)
                    return -1;
                ctx->d_wbuf[cl] += stall;
                done += stall;
            }
        }
    }
    ctx->d_refs[pid]++;
    ctx->d_busy[pid]++;
    ctx->d_stall[pid] += done - time - 1;
    ctx->d_finish[pid] = done;
    *time_io = done;
    return 0;
}

/* ------------------------------------------------------------ lifecycle */

static void
ctx_release(Ctx *ctx)
{
    if (ctx->released)
        return;
    ctx->released = 1;
    for (int i = 0; i < ctx->nviews; i++)
        PyBuffer_Release(&ctx->views[i]);
    ctx->nviews = 0;
    Py_CLEAR(ctx->plan);
}

static void
ctx_destructor(PyObject *capsule)
{
    Ctx *ctx = (Ctx *)PyCapsule_GetPointer(capsule, CTX_NAME);
    if (!ctx)
        return;
    ctx_release(ctx);
    PyMem_Free(ctx->views);
    PyMem_Free(ctx->cl_states);
    PyMem_Free(ctx->cl_inflight);
    PyMem_Free(ctx->ic_states);
    PyMem_Free(ctx->ic_mask);
    PyMem_Free(ctx);
}

static PyObject *
native_setup(PyObject *self, PyObject *plan)
{
    (void)self;
    if (!PyTuple_Check(plan) || PyTuple_GET_SIZE(plan) != 6) {
        PyErr_SetString(PyExc_TypeError, "plan must be a 6-tuple");
        return NULL;
    }
    PyObject *per_cluster = PyTuple_GET_ITEM(plan, 0);
    PyObject *callbacks = PyTuple_GET_ITEM(plan, 1);
    PyObject *scal = PyTuple_GET_ITEM(plan, 2);
    PyObject *ic_tuple = PyTuple_GET_ITEM(plan, 3);
    PyObject *deltas = PyTuple_GET_ITEM(plan, 4);
    PyObject *regs = PyTuple_GET_ITEM(plan, 5);

    Ctx *ctx = PyMem_Calloc(1, sizeof(Ctx));
    if (!ctx)
        return PyErr_NoMemory();
    ctx->n_cl = (int)PyTuple_GET_SIZE(per_cluster);
    ctx->nproc = (int)PyTuple_GET_SIZE(ic_tuple);

    int max_views = 3 * ctx->n_cl + 2 * ctx->nproc + 16;
    ctx->views = PyMem_Calloc(max_views, sizeof(Py_buffer));
    ctx->cl_states = PyMem_Calloc(3 * ctx->n_cl, sizeof(long long *));
    ctx->cl_inflight = PyMem_Calloc(3 * ctx->n_cl, sizeof(PyObject *));
    int nic = ctx->nproc > 0 ? ctx->nproc : 1;
    ctx->ic_states = PyMem_Calloc(2 * nic, sizeof(long long *));
    ctx->ic_mask = PyMem_Calloc(2 * nic, sizeof(long long));
    if (!ctx->views || !ctx->cl_states || !ctx->cl_inflight
        || !ctx->ic_states || !ctx->ic_mask) {
        PyMem_Free(ctx->views);
        PyMem_Free(ctx->cl_states);
        PyMem_Free(ctx->cl_inflight);
        PyMem_Free(ctx->ic_states);
        PyMem_Free(ctx->ic_mask);
        PyMem_Free(ctx);
        return PyErr_NoMemory();
    }
    ctx->cl_tags = ctx->cl_states + ctx->n_cl;
    ctx->cl_bank_free = ctx->cl_states + 2 * ctx->n_cl;
    ctx->cl_scc = ctx->cl_inflight + ctx->n_cl;
    ctx->cl_wbufs = ctx->cl_inflight + 2 * ctx->n_cl;
    ctx->ic_tags = ctx->ic_states + nic;
    ctx->ic_shift = ctx->ic_mask + nic;

    ctx->plan = plan;
    Py_INCREF(plan);

    long long sc[10];
    for (Py_ssize_t k = 0; k < 10; k++) {
        if (get_ll_item(scal, k, &sc[k]) < 0)
            goto fail;
    }
    ctx->idx_mask = sc[0];
    ctx->tag_shift = sc[1];
    ctx->line_shift = sc[2];
    ctx->nbanks = sc[3];
    ctx->bank_cycle = sc[4];
    ctx->stall_on_writes = (int)sc[5];
    ctx->wb_depth = sc[6];
    ctx->icache_mode = (int)sc[7];
    ctx->iline_shift = sc[8];
    ctx->limit = sc[9];

    for (int c = 0; c < ctx->n_cl; c++) {
        PyObject *entry = PyTuple_GET_ITEM(per_cluster, c);
        if (!(ctx->cl_states[c] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 0))))
            goto fail;
        if (!(ctx->cl_tags[c] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 1))))
            goto fail;
        if (!(ctx->cl_bank_free[c] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 2))))
            goto fail;
        ctx->cl_inflight[c] = PyTuple_GET_ITEM(entry, 3);
        ctx->cl_scc[c] = PyTuple_GET_ITEM(entry, 4);
        ctx->cl_wbufs[c] = PyTuple_GET_ITEM(entry, 5);
    }
    for (int p = 0; p < ctx->nproc; p++) {
        PyObject *entry = PyTuple_GET_ITEM(ic_tuple, p);
        if (!(ctx->ic_states[p] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 0))))
            goto fail;
        if (!(ctx->ic_tags[p] =
                  acquire_ll(ctx, PyTuple_GET_ITEM(entry, 1))))
            goto fail;
        if (get_ll_item(entry, 2, &ctx->ic_mask[p]) < 0)
            goto fail;
        if (get_ll_item(entry, 3, &ctx->ic_shift[p]) < 0)
            goto fail;
    }
    ctx->read_miss = PyTuple_GET_ITEM(callbacks, 0);
    ctx->write_line = PyTuple_GET_ITEM(callbacks, 1);
    ctx->ifetch = PyTuple_GET_ITEM(callbacks, 2);
    ctx->queues = PyTuple_GET_ITEM(callbacks, 3);

    long long **dptr[10] = {
        &ctx->d_reads, &ctx->d_writes, &ctx->d_conf, &ctx->d_wbuf,
        &ctx->d_refs, &ctx->d_busy, &ctx->d_stall, &ctx->d_finish,
        &ctx->d_icfetch, &ctx->misc,
    };
    for (int k = 0; k < 10; k++) {
        if (!(*dptr[k] = acquire_ll(ctx, PyTuple_GET_ITEM(deltas, k))))
            goto fail;
    }
    if (!(ctx->regs = acquire_ll(ctx, regs)))
        goto fail;

    PyObject *capsule = PyCapsule_New(ctx, CTX_NAME, ctx_destructor);
    if (!capsule)
        goto fail;
    return capsule;

fail:
    ctx_release(ctx);
    PyMem_Free(ctx->views);
    PyMem_Free(ctx->cl_states);
    PyMem_Free(ctx->cl_inflight);
    PyMem_Free(ctx->ic_states);
    PyMem_Free(ctx->ic_mask);
    PyMem_Free(ctx);
    return NULL;
}

static PyObject *
native_release(PyObject *self, PyObject *capsule)
{
    (void)self;
    Ctx *ctx = (Ctx *)PyCapsule_GetPointer(capsule, CTX_NAME);
    if (!ctx)
        return NULL;
    ctx_release(ctx);
    Py_RETURN_NONE;
}

/* --------------------------------------------------------------- drain */

static PyObject *
native_drain(PyObject *self, PyObject *args)
{
    (void)self;
    PyObject *capsule, *chunk;
    if (!PyArg_ParseTuple(args, "OO", &capsule, &chunk))
        return NULL;
    Ctx *ctx = (Ctx *)PyCapsule_GetPointer(capsule, CTX_NAME);
    if (!ctx)
        return NULL;
    if (ctx->released) {
        PyErr_SetString(PyExc_RuntimeError, "drain on released context");
        return NULL;
    }
    Py_buffer cview;
    if (PyObject_GetBuffer(chunk, &cview, PyBUF_SIMPLE) < 0)
        return NULL;
    const long long *data = (const long long *)cview.buf;
    long long end = (long long)(cview.len / 8);

    long long *regs = ctx->regs;
    long long i = regs[0];
    long long sub = regs[1];
    long long time = regs[2];
    long long next_time = regs[3];
    long long pid = regs[4];
    long long cl = regs[5];
    long long limit = ctx->limit;
    long long *misc = ctx->misc;
    int status = STATUS_EXHAUSTED;

    while (i < end) {
        long long op = data[i];
        if (op == OP_READ || op == OP_WRITE || op == OP_COMPUTE) {
            if (time > limit)
                goto limit_exceeded;
            long long operand = data[i + 1];
            i += 2;
            misc[0]++;
            if (op == OP_COMPUTE) {
                if (operand) {
                    ctx->d_busy[pid] += operand;
                    time += operand;
                    if (time > next_time) {
                        status = STATUS_PREEMPT;
                        break;
                    }
                }
                continue;
            }
            if (do_access(ctx, cl, pid, op == OP_READ, operand,
                          &time) < 0)
                goto fail;
            if (time > next_time) {
                status = STATUS_PREEMPT;
                break;
            }
        }
        else if (op == OP_READ_SPAN || op == OP_WRITE_SPAN) {
            long long base = data[i + 1];
            long long size = data[i + 2];
            long long stride = data[i + 3];
            long long offset = sub;
            sub = 0;
            int preempted = 0;
            int is_read = op == OP_READ_SPAN;
            while (offset < size) {
                if (time > limit)
                    goto limit_exceeded;
                misc[0]++;
                if (do_access(ctx, cl, pid, is_read, base + offset,
                              &time) < 0)
                    goto fail;
                offset += stride;
                if (time > next_time) {
                    preempted = 1;
                    break;
                }
            }
            if (offset >= size)
                i += 4;
            else
                sub = offset;
            if (preempted) {
                status = STATUS_PREEMPT;
                break;
            }
        }
        else if (op == OP_IFETCH) {
            if (time > limit)
                goto limit_exceeded;
            misc[0]++;
            long long count = data[i + 2];
            if (ctx->icache_mode == 0) {
                ctx->d_busy[pid] += count;
                time += count;
            }
            else if (ctx->icache_mode == 1) {
                long long addr = data[i + 1];
                long long iline_no = addr >> ctx->iline_shift;
                long long ilast =
                    (addr + count * 4 - 1) >> ctx->iline_shift;
                long long *istates = ctx->ic_states[pid];
                long long *itags = ctx->ic_tags[pid];
                long long imask = ctx->ic_mask[pid];
                long long ishift = ctx->ic_shift[pid];
                while (iline_no <= ilast) {
                    long long idxi = iline_no & imask;
                    if (istates[idxi]
                        && itags[idxi] == (iline_no >> ishift))
                        iline_no++;
                    else
                        break;
                }
                if (iline_no > ilast) {
                    ctx->d_icfetch[pid] +=
                        ilast - (addr >> ctx->iline_shift) + 1;
                    ctx->d_busy[pid] += count;
                    time += count;
                }
                else {
                    int err = 0;
                    time = call_ifetch(ctx, pid, addr, count, time, &err);
                    if (err)
                        goto fail;
                }
            }
            else {
                int err = 0;
                time = call_ifetch(ctx, pid, data[i + 1], count, time,
                                   &err);
                if (err)
                    goto fail;
            }
            i += 3;
            if (time > next_time) {
                status = STATUS_PREEMPT;
                break;
            }
        }
        else if (op == OP_ENQUEUE) {
            if (time > limit)
                goto limit_exceeded;
            misc[0]++;
            PyObject *key = PyLong_FromLongLong(data[i + 1]);
            if (!key)
                goto fail;
            PyObject *q = PyDict_GetItemWithError(ctx->queues, key);
            if (q) {
                Py_INCREF(q);
            }
            else {
                if (PyErr_Occurred()) {
                    Py_DECREF(key);
                    goto fail;
                }
                q = PyObject_CallNoArgs(g_deque);
                if (!q || PyDict_SetItem(ctx->queues, key, q) < 0) {
                    Py_XDECREF(q);
                    Py_DECREF(key);
                    goto fail;
                }
            }
            Py_DECREF(key);
            PyObject *item = PyLong_FromLongLong(data[i + 2]);
            PyObject *r = item ? PyObject_CallMethodObjArgs(
                q, s_append, item, NULL) : NULL;
            Py_XDECREF(item);
            Py_DECREF(q);
            if (!r)
                goto fail;
            Py_DECREF(r);
            i += 3;
        }
        else if (op == OP_DEQUEUE) {
            if (time > limit)
                goto limit_exceeded;
            misc[0]++;
            PyObject *key = PyLong_FromLongLong(data[i + 1]);
            if (!key)
                goto fail;
            PyObject *q = PyDict_GetItemWithError(ctx->queues, key);
            Py_DECREF(key);
            if (!q && PyErr_Occurred())
                goto fail;
            if (q) {
                int truthy = PyObject_IsTrue(q);
                if (truthy < 0)
                    goto fail;
                if (truthy) {
                    PyObject *r = PyObject_CallMethodObjArgs(
                        q, s_popleft, NULL);
                    if (!r)
                        goto fail;
                    Py_DECREF(r);
                }
            }
            i += 2;
        }
        else {
            /* Synchronization or unknown opcode: the wrapper runs the
             * handler (or raises the unknown-opcode error) for exact
             * error/accounting parity with the python loop. */
            if (time > limit)
                goto limit_exceeded;
            status = STATUS_SYNC;
            break;
        }
    }

    regs[0] = i;
    regs[1] = sub;
    regs[2] = time;
    PyBuffer_Release(&cview);
    return PyLong_FromLong(status);

limit_exceeded:
    PyErr_Format(PyExc_RuntimeError, "simulation exceeded %lld cycles",
                 limit);
fail:
    regs[0] = i;
    regs[1] = sub;
    regs[2] = time;
    PyBuffer_Release(&cview);
    return NULL;
}

/* --------------------------------------------------------------- module */

static PyMethodDef methods[] = {
    {"setup", native_setup, METH_O,
     "Parse a drain plan into a context capsule."},
    {"drain", native_drain, METH_VARARGS,
     "Consume packed events; returns 0/1/2 (exhausted/preempt/sync)."},
    {"release", native_release, METH_O,
     "Release the buffer views held by a context."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_native",
    "C inner loop for the packed replay interleaver.", -1, methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *collections = PyImport_ImportModule("collections");
    if (!collections)
        return NULL;
    g_deque = PyObject_GetAttrString(collections, "deque");
    Py_DECREF(collections);
    if (!g_deque)
        return NULL;
    s_append = PyUnicode_InternFromString("append");
    s_popleft = PyUnicode_InternFromString("popleft");
    s_complete = PyUnicode_InternFromString("complete");
    s_retire = PyUnicode_InternFromString("retire");
    if (!s_append || !s_popleft || !s_complete || !s_retire)
        return NULL;
    return PyModule_Create(&moduledef);
}
