"""C-extension packed replay backend: loader, on-demand build, wrapper.

``_native.c`` implements the interleaver's chunk-drain inner loop over
raw ``int64_t*`` views of the shared ``array('q')`` tag/state/bank
storage.  Python keeps everything rare: process switches (heap
scheduling), generator resumes, synchronization handlers, and the
coherence callbacks for misses -- the same division of labor the python
fast path uses between its inline hit code and ``CoherenceController``.

Loading strategy (graceful at every step, ``LOAD_ERROR`` records why a
step failed):

1. ``repro.trace.engine._native`` -- the setuptools ``Extension`` built
   by ``pip install`` / ``python setup.py build_ext --inplace``.
2. On-demand compile of ``_native.c`` into a content-addressed cache
   directory (``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro-native``),
   because the repo's documented mode of use is ``PYTHONPATH=src`` from
   a source tree with no install step.  Concurrent builders race safely
   (atomic rename); rebuilds happen only when the source, interpreter,
   or ``NATIVE_VERSION`` changes.

Set ``REPRO_NATIVE=0`` to refuse the extension outright (tests use this
to assert the clean-fallback path).
"""

from __future__ import annotations

import hashlib
import heapq
import importlib.util
import os
import subprocess
import sys
import sysconfig
from array import array
from pathlib import Path
from typing import Optional

from ..packed import OP_BARRIER, OP_LOCK_ACQ, OP_LOCK_REL

__all__ = ["NATIVE_VERSION", "LOAD_ERROR", "ladder_available", "load",
           "run"]

#: Bump when the C ABI (plan layout, drain contract) changes.
NATIVE_VERSION = "2"

LOAD_ERROR: Optional[str] = None

_UNSET = object()
_mod = _UNSET

_NO_LIMIT = (1 << 63) - 1

# drain() statuses
_EXHAUSTED = 0
_PREEMPT = 1
_SYNC = 2


def _source_path() -> Path:
    return Path(__file__).with_name("_native.c")


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def _build_key(source: bytes) -> str:
    tag = (f"{sys.version_info[0]}.{sys.version_info[1]}-"
           f"{NATIVE_VERSION}-").encode() + source
    return hashlib.sha256(tag).hexdigest()[:16]


def _compile_on_demand() -> Optional[object]:
    """Build ``_native.c`` into the cache dir and import it."""
    global LOAD_ERROR
    src = _source_path()
    if not src.is_file():
        LOAD_ERROR = f"source missing: {src}"
        return None
    source = src.read_bytes()
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    cache = _cache_dir()
    so_path = cache / f"_native_{_build_key(source)}{suffix}"
    if not so_path.is_file():
        cc = (sysconfig.get_config_var("CC") or "cc").split()[0]
        include = sysconfig.get_paths()["include"]
        tmp = so_path.with_suffix(so_path.suffix
                                  + f".tmp{os.getpid()}")
        try:
            cache.mkdir(parents=True, exist_ok=True)
            result = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", f"-I{include}",
                 str(src), "-o", str(tmp)],
                capture_output=True, text=True, timeout=120)
            if result.returncode != 0:
                LOAD_ERROR = (f"compile failed ({cc}): "
                              f"{result.stderr.strip()[:500]}")
                return None
            os.replace(tmp, so_path)
        except (OSError, subprocess.SubprocessError) as exc:
            LOAD_ERROR = f"compile failed: {exc}"
            return None
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
    try:
        # The last name component must be ``_native`` so the loader finds
        # ``PyInit__native`` in the shared object.
        spec = importlib.util.spec_from_file_location(
            "repro.trace.engine._native", so_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    except Exception as exc:
        LOAD_ERROR = f"import of built extension failed: {exc}"
        return None


def load(rebuild: bool = False):
    """The native extension module, or ``None`` (reason in LOAD_ERROR)."""
    global _mod, LOAD_ERROR
    if _mod is not _UNSET and not rebuild:
        return _mod
    _mod = None
    if os.environ.get("REPRO_NATIVE", "").strip() == "0":
        LOAD_ERROR = "disabled via REPRO_NATIVE=0"
        return None
    try:
        from . import _native  # type: ignore[attr-defined]
        _mod = _native
        LOAD_ERROR = None
        return _mod
    except ImportError:
        pass
    _mod = _compile_on_demand()
    if _mod is not None:
        LOAD_ERROR = None
    return _mod


def ladder_available() -> bool:
    """Whether the loaded extension has the fused-ladder entry points.

    A stale ``setup.py``-built ``_native`` predating the ladder ABI can
    shadow the on-demand build; callers degrade to the python ladder
    rather than fail.
    """
    mod = load()
    return mod is not None and hasattr(mod, "ladder_setup")


def _qchunk(process):
    """The process's chunk as ``array('q')`` (installed back in place).

    Chunks are fully consumed before their generator resumes, so
    swapping the sequence object mid-drain is invisible to workloads
    that reuse builder lists.
    """
    data = process.chunk
    if type(data) is array and data.typecode == "q":
        return data
    data = array("q", data)
    process.chunk = data
    return data


def run(interleaver, max_cycles: Optional[int]) -> int:
    """Drop-in replacement for ``TimingInterleaver._run_fast``.

    Clone of the python fast path's scheduler frame; the inner
    chunk-drain loop runs in C (``drain``), returning only for process
    switches, chunk exhaustion, and synchronization opcodes.
    """
    native = load()
    self = interleaver
    heap = self._heap
    processes = self._processes
    system = self.system
    config = system.config
    n_cl = config.clusters
    cl_scc = [cluster.scc for cluster in system.clusters]
    cl_icn = [scc.interconnect for scc in cl_scc]
    proc_cluster = self._proc_cluster
    procs = system._procs
    nproc = config.total_processors
    model_icache = config.model_icache
    ic_objs = None
    iline_shift = 0
    if model_icache:
        iline = config.icache_line_size
        if iline > 0 and iline & (iline - 1) == 0:
            iline_shift = iline.bit_length() - 1
            caches = [system.clusters[proc_cluster[p]]
                      .icaches[config.port_of(p)]
                      for p in range(nproc)]
            if all(ic.array._index_mask for ic in caches):
                ic_objs = caches
    if not model_icache:
        icache_mode = 0
    elif ic_objs is not None:
        icache_mode = 1
    else:
        icache_mode = 2

    limit = _NO_LIMIT if max_cycles is None else max_cycles
    scal = array("q", [
        self._idx_mask,
        self._tag_shift,
        config.line_offset_bits,
        cl_icn[0].num_banks,
        cl_icn[0].bank_cycle_time,
        1 if config.stall_on_writes else 0,
        cl_icn[0].write_buffer_depth,
        icache_mode,
        iline_shift,
        limit,
    ])
    per_cluster = tuple(
        (scc.array._states, scc.array._tags, icn._bank_free,
         scc._inflight, scc, icn._write_buffers)
        for scc, icn in zip(cl_scc, cl_icn))
    if icache_mode == 1:
        ic_tuple = tuple(
            (ic.array._states, ic.array._tags, ic.array._index_mask,
             ic.array._tag_shift)
            for ic in ic_objs)
    else:
        ic_tuple = ()
    d_reads = array("q", bytes(8 * n_cl))
    d_writes = array("q", bytes(8 * n_cl))
    d_conf = array("q", bytes(8 * n_cl))
    d_wbuf = array("q", bytes(8 * n_cl))
    d_refs = array("q", bytes(8 * nproc))
    d_busy = array("q", bytes(8 * nproc))
    d_stall = array("q", bytes(8 * nproc))
    d_finish = array("q", [-1] * nproc)
    d_icfetch = array("q", bytes(8 * nproc))
    misc = array("q", [0])
    regs = array("q", [0] * 6)
    plan = (
        per_cluster,
        (system.coherence.read_miss, system.coherence.write_line,
         system.ifetch, self._queues),
        scal,
        ic_tuple,
        (d_reads, d_writes, d_conf, d_wbuf, d_refs, d_busy, d_stall,
         d_finish, d_icfetch, misc),
        regs,
    )
    ctx = native.setup(plan)
    drain = native.drain

    pop = heapq.heappop
    pushpop = heapq.heappushpop
    advance = self._advance
    ev = 0
    finish_time = 0
    pending = -1
    try:
        while True:
            if pending >= 0:
                pid = pending
                pending = -1
                process = processes[pid]
            else:
                if not heap:
                    break
                pid = pop(heap)[2]
                process = processes[pid]
                process.in_heap = False
            if process.chunk is None:
                finish = advance(process, max_cycles)
                if finish is not None and finish > finish_time:
                    finish_time = finish
                if process.chunk is None:
                    continue
            data = _qchunk(process)
            regs[0] = process.chunk_pos
            regs[1] = process.chunk_sub
            regs[2] = process.time
            regs[3] = heap[0][0] if heap else _NO_LIMIT
            regs[4] = pid
            regs[5] = proc_cluster[pid]
            while True:
                status = drain(ctx, data)
                if status == _SYNC:
                    i = regs[0]
                    time = regs[2]
                    op = data[i]
                    ev += 1
                    process.time = time
                    if op == OP_LOCK_ACQ:
                        self._lock_acquire(process, data[i + 1])
                        i += 2
                    elif op == OP_LOCK_REL:
                        self._lock_release(process, data[i + 1])
                        i += 2
                    elif op == OP_BARRIER:
                        self._barrier(process, data[i + 1], data[i + 2])
                        i += 3
                    else:
                        # C defers unknown opcodes here so the error and
                        # the accounting before it match the python loop.
                        raise ValueError(
                            f"unknown packed opcode {op} at {i}")
                    time = process.time
                    if process.blocked or process.in_heap:
                        process.chunk_pos = i
                        process.chunk_sub = 0
                        break
                    next_time = heap[0][0] if heap else _NO_LIMIT
                    if time <= next_time:
                        regs[0] = i
                        regs[1] = 0
                        regs[2] = time
                        regs[3] = next_time
                        continue
                    process.chunk_pos = i
                    process.chunk_sub = 0
                elif status == _EXHAUSTED:
                    process.time = regs[2]
                    process.chunk = None
                    process.chunk_pos = 0
                    process.chunk_sub = 0
                    finish = advance(process, max_cycles)
                    if finish is not None:
                        if finish > finish_time:
                            finish_time = finish
                        break
                    if process.chunk is None:
                        break
                    data = _qchunk(process)
                    regs[0] = 0
                    regs[1] = 0
                    regs[2] = process.time
                    regs[3] = heap[0][0] if heap else _NO_LIMIT
                    continue
                else:
                    time = regs[2]
                    process.chunk_pos = regs[0]
                    process.chunk_sub = regs[1]
                # Preempted by the heap top (either by the C loop or by a
                # sync handler that advanced past it): one fused
                # push-and-pop, exactly like the python fast path.
                time = regs[2] if status == _PREEMPT else process.time
                process.time = time
                self._seq += 1
                process.in_heap = True
                npid = pushpop(heap, (time, self._seq, pid))[2]
                process = processes[npid]
                process.in_heap = False
                if process.chunk is None:
                    pending = npid
                    break
                pid = npid
                data = _qchunk(process)
                regs[0] = process.chunk_pos
                regs[1] = process.chunk_sub
                regs[2] = process.time
                regs[3] = heap[0][0] if heap else _NO_LIMIT
                regs[4] = pid
                regs[5] = proc_cluster[pid]
    finally:
        native.release(ctx)
        self.events_processed += ev + misc[0]
        for c in range(n_cl):
            sstats = cl_scc[c].stats
            if d_reads[c]:
                sstats.reads += d_reads[c]
            if d_writes[c]:
                sstats.writes += d_writes[c]
            if d_conf[c]:
                sstats.bank_conflict_cycles += d_conf[c]
                cl_icn[c].conflict_cycles += d_conf[c]
            if d_wbuf[c]:
                # The C loop inlines reserve_write_slot, so the
                # interconnect's own stall counter is settled here too
                # (the python method updates it as it goes).
                sstats.write_buffer_stall_cycles += d_wbuf[c]
                cl_icn[c].write_stall_cycles += d_wbuf[c]
        for p in range(nproc):
            refs = d_refs[p]
            busy = d_busy[p]
            if refs or busy:
                pstats = procs[p].stats
                pstats.references += refs
                pstats.instructions += busy
                pstats.busy_cycles += busy
                pstats.memory_stall_cycles += d_stall[p]
            if d_finish[p] > procs[p].finish_time:
                procs[p].finish_time = d_finish[p]
            if d_icfetch[p]:
                ic_objs[p].fetch_lines += d_icfetch[p]
    return finish_time
