"""Batch decode of packed chunks into flat per-event arrays.

The numpy backend (:mod:`repro.trace.engine.numpy_backend`) cannot
vectorize over the packed wire format directly: opcodes have variable
widths (2-4 ints) and span opcodes expand to a run of accesses, so event
boundaries are data-dependent.  Decoding converts a chunk to columnar
form:

* ``kind[e]`` -- the opcode governing event ``e``; spans decode to runs of
  ``OP_READ``/``OP_WRITE`` elements, so ``kind`` only ever holds the
  non-span opcodes.
* ``a[e]``, ``b[e]`` -- operands (address/cycles/lock id/..., count/item).
* ``after_i[e]``, ``after_sub[e]`` -- the packed-stream resume position
  *after* event ``e``, exactly what the interleaver stores in
  ``chunk_pos``/``chunk_sub`` when it yields mid-chunk.  Event ``e``
  begins at ``after[e-1]``, which is how a resumed drain maps its stored
  position back to an event cursor (:meth:`DecodedChunk.cursor_for`).

Event boundaries are found without a per-opcode python loop: a
vectorized next-position table (``nxt[i] = i + width(data[i])``) is
composed with itself three times so that one python iteration jumps
*eight* opcodes, and the seven intermediate starts per jump are
recovered with batched gathers.  Spans then expand to their element
runs with ``np.repeat`` arithmetic.  A scalar decoder remains as the
fallback for tiny chunks (numpy's fixed costs lose below a few hundred
ints), non-int64 payloads, and truncated streams (whose mid-opcode
``IndexError`` it reproduces exactly).

Decodes of :class:`array.array` streams are memoized in a module-level
cache keyed by the data object's identity (guarded by a weak reference,
so entries die with their stream and id reuse cannot alias).  Replay
(:class:`~repro.trace.record.ReplayApplication`) yields the *same*
array object every run, so a sweep or benchmark that replays one
recording many times decodes it once.  The cache assumes recorded
streams are not mutated once replayed -- the record/replay pipeline
never does.

Derived columns (``line``, ``idx``, ``tag``, ``bank``, ``adv``, icache
line ranges) are computed vectorized for the machine geometry so the
backend's classification gathers need no per-event arithmetic.

An unknown opcode does not fail the decode: everything before it is
decoded normally and the offending position is recorded in ``bad_pos`` so
the consuming loop can raise the exact error the python loop would raise
*after* processing the preceding events (error parity matters to the
differential verifier).
"""

from __future__ import annotations

import weakref
from array import array
from bisect import bisect_left
from typing import List, Optional, Tuple

import numpy as np

from ..packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE, OP_ENQUEUE,
                      OP_IFETCH, OP_LOCK_ACQ, OP_LOCK_REL, OP_READ,
                      OP_READ_SPAN, OP_WIDTH, OP_WRITE, OP_WRITE_SPAN)

__all__ = ["DecodedChunk", "decode_chunk"]

_I64 = np.int64

_N_OPCODES = 12
_WIDTH_LUT = np.zeros(_N_OPCODES, dtype=_I64)
for _op, _w in OP_WIDTH.items():
    _WIDTH_LUT[_op] = _w

#: Below this many ints the scalar decoder beats numpy's fixed costs.
_VECTOR_MIN_INTS = 256

#: id(data) -> (weakref guard, geometry tuple, DecodedChunk).  One entry
#: per live stream object: a replay at a different machine geometry
#: replaces the entry rather than growing it.
_DECODE_CACHE: dict = {}


class DecodedChunk:
    """Columnar view of one packed chunk (see module docstring)."""

    __slots__ = ("n", "kind", "a", "b", "after_i", "after_sub",
                 "after_pairs", "bad_pos", "source",
                 "adv", "idx", "tag", "bank", "maybe_fast",
                 "maybe_fast_list", "is_read", "is_write", "is_data",
                 "is_ifetch", "il_first", "il_last")

    def __init__(self) -> None:
        self.n = 0
        # Scalar (python list) columns: the slow per-event path indexes
        # these, and list indexing beats numpy scalar indexing ~2x.
        self.kind: List[int] = []
        self.a: List[int] = []
        self.b: List[int] = []
        self.after_i: List[int] = []
        self.after_sub: List[int] = []
        self.after_pairs: Optional[List[Tuple[int, int]]] = None
        self.bad_pos: Optional[int] = None
        self.source: Optional[object] = None

    def cursor_for(self, pos: int, sub: int) -> int:
        """Event index whose packed position is ``(pos, sub)``.

        Positions stored by a yielding drain are always event boundaries,
        so this is an exact lookup over the (strictly increasing)
        ``after`` pairs.
        """
        if pos == 0 and sub == 0:
            return 0
        pairs = self.after_pairs
        if pairs is None:
            pairs = self.after_pairs = list(zip(self.after_i,
                                                self.after_sub))
        return bisect_left(pairs, (pos, sub)) + 1


def decode_chunk(data, line_shift: int, idx_mask: int, tag_shift: int,
                 nbanks: int, icache_mode: int,
                 iline_shift: int) -> DecodedChunk:
    """Decode ``data`` (an int sequence in packed format) to columns.

    ``icache_mode``: 0 = icache not modelled (ifetch is pure accounting),
    1 = inline icache arrays available (per-window residency check),
    2 = ifetch always goes through the ``system.ifetch`` callback.
    """
    geom = (line_shift, idx_mask, tag_shift, nbanks, icache_mode,
            iline_shift)
    cacheable = isinstance(data, array) and data.typecode == "q"
    if cacheable:
        entry = _DECODE_CACHE.get(id(data))
        if (entry is not None and entry[0]() is data
                and entry[1] == geom):
            return entry[2]

    out = DecodedChunk()
    columns = None
    if len(data) >= _VECTOR_MIN_INTS:
        columns = _vector_columns(data)
    if columns is None:
        kind_np, a_np, b_np = _scalar_columns(out, data)
    else:
        kind_np, a_np, b_np, ai_np, asub_np, out.bad_pos = columns
        out.kind = kind_np.tolist()
        out.a = a_np.tolist()
        out.b = b_np.tolist()
        out.after_i = ai_np.tolist()
        out.after_sub = asub_np.tolist()
    out.n = len(out.kind)
    _derive(out, kind_np, a_np, b_np, line_shift, idx_mask, tag_shift,
            nbanks, icache_mode, iline_shift)

    if cacheable:
        key = id(data)
        guard = weakref.ref(
            data,
            lambda _r, _d=_DECODE_CACHE, _k=key: _d.pop(_k, None))
        _DECODE_CACHE[key] = (guard, geom, out)
    return out


def _vector_columns(data):
    """Event columns via the jump-table chase, or ``None`` to fall back.

    Falls back (returns ``None``) when the payload does not convert to
    int64 or when the stream ends mid-opcode -- the scalar decoder then
    reproduces the legacy behavior (including its ``IndexError``)
    exactly.
    """
    if isinstance(data, array) and data.typecode == "q":
        arr = np.frombuffer(data, dtype=_I64)
    else:
        try:
            arr = np.array(data, dtype=_I64)
        except (OverflowError, ValueError, TypeError):
            return None
    n = arr.shape[0]

    in_range = (arr >= 0) & (arr < _N_OPCODES)
    w_all = np.where(in_range,
                     _WIDTH_LUT[np.where(in_range, arr, 0)], 0)
    # Invalid opcodes jump past the end so the chase terminates; the
    # validation pass below turns the stop into bad_pos.
    step = np.where(w_all > 0, w_all, n + 1)
    nxt = np.minimum(np.arange(n, dtype=_I64) + step, n)
    nxt = np.append(nxt, n)                      # sentinel: end -> end
    nxt2 = nxt[nxt]
    nxt4 = nxt2[nxt2]
    nxt8 = nxt4[nxt4]

    jump = nxt8.tolist()
    coarse = []
    push = coarse.append
    i = 0
    while i < n:
        push(i)
        i = jump[i]
    cur = np.array(coarse, dtype=_I64)
    cols = [cur]
    for _ in range(7):
        cur = nxt[cur]
        cols.append(cur)
    starts = np.stack(cols, axis=1).reshape(-1)
    starts = starts[starts < n]

    ops = arr[starts]
    widths = w_all[starts]
    is_span = (ops == OP_READ_SPAN) | (ops == OP_WRITE_SPAN)
    o1 = arr[np.minimum(starts + 1, n - 1)]
    o2 = np.where(widths >= 3, arr[np.minimum(starts + 2, n - 1)], 0)
    o3 = np.where(widths >= 4, arr[np.minimum(starts + 3, n - 1)], 0)

    bad_unknown = widths == 0
    truncated = starts + np.maximum(widths, 1) > n
    # The python loop would spin forever on a non-positive span stride;
    # decode stops there like an undecodable tail (see numpy_backend).
    bad_stride = is_span & (o2 > 0) & (o3 <= 0)
    invalid = bad_unknown | truncated | bad_stride
    bad_pos: Optional[int] = None
    if invalid.any():
        k = int(np.argmax(invalid))
        if truncated[k] and not bad_unknown[k]:
            return None              # scalar fallback raises IndexError
        bad_pos = int(starts[k])
        starts = starts[:k]
        ops = ops[:k]
        widths = widths[:k]
        is_span = is_span[:k]
        o1 = o1[:k]
        o2 = o2[:k]
        o3 = o3[:k]

    sizes = np.where(is_span, o2, 0)
    strides = np.where(is_span, o3, 1)
    # (size - 1) // stride + 1 elements; written to dodge int64 overflow
    # of size + stride.  Zero-size spans decode to zero events.
    n_el = np.where(is_span,
                    np.where(sizes > 0, (sizes - 1) // strides + 1, 0),
                    1)
    total = int(n_el.sum())
    rep = np.repeat(np.arange(starts.shape[0], dtype=_I64), n_el)
    j_loc = np.arange(total, dtype=_I64) - (np.cumsum(n_el) - n_el)[rep]

    ops_rep = ops[rep]
    span_rep = is_span[rep]
    stride_rep = strides[rep]
    kind_np = np.where(span_rep,
                       np.where(ops_rep == OP_READ_SPAN,
                                _I64(OP_READ), _I64(OP_WRITE)),
                       ops_rep)
    a_np = o1[rep] + j_loc * stride_rep
    b_np = np.where(is_span, 0, o2)[rep]
    is_last = j_loc == (n_el[rep] - 1)
    ai_np = np.where(is_last, (starts + widths)[rep], starts[rep])
    asub_np = np.where(is_last, 0, (j_loc + 1) * stride_rep)
    return kind_np, a_np, b_np, ai_np, asub_np, bad_pos


def _scalar_columns(out: DecodedChunk, data):
    """Reference decoder: one python iteration per opcode."""
    kind = out.kind
    av = out.a
    bv = out.b
    ai = out.after_i
    asub = out.after_sub
    if not isinstance(data, list):
        # array('q') indexes slower than list; one C-speed conversion
        # pays for itself after a few hundred events.
        data = list(data)
    n = len(data)
    i = 0
    while i < n:
        op = data[i]
        if op == OP_READ or op == OP_WRITE or op == OP_COMPUTE:
            kind.append(op)
            av.append(data[i + 1])
            bv.append(0)
            i += 2
            ai.append(i)
            asub.append(0)
        elif op == OP_READ_SPAN or op == OP_WRITE_SPAN:
            base = data[i + 1]
            size = data[i + 2]
            stride = data[i + 3]
            if size > 0 and stride <= 0:
                # The python loop would spin forever on this; treat it
                # like an undecodable tail so the scalar path stops here.
                out.bad_pos = i
                break
            kop = OP_READ if op == OP_READ_SPAN else OP_WRITE
            offset = 0
            while offset < size:
                kind.append(kop)
                av.append(base + offset)
                bv.append(0)
                offset += stride
                if offset < size:
                    ai.append(i)
                    asub.append(offset)
                else:
                    ai.append(i + 4)
                    asub.append(0)
            i += 4
        elif op == OP_IFETCH or op == OP_BARRIER or op == OP_ENQUEUE:
            kind.append(op)
            av.append(data[i + 1])
            bv.append(data[i + 2])
            i += 3
            ai.append(i)
            asub.append(0)
        elif op == OP_LOCK_ACQ or op == OP_LOCK_REL or op == OP_DEQUEUE:
            kind.append(op)
            av.append(data[i + 1])
            bv.append(0)
            i += 2
            ai.append(i)
            asub.append(0)
        else:
            out.bad_pos = i
            break
    return (np.array(kind, dtype=_I64), np.array(av, dtype=_I64),
            np.array(bv, dtype=_I64))


def _derive(out: DecodedChunk, kind_np, a_np, b_np, line_shift: int,
            idx_mask: int, tag_shift: int, nbanks: int, icache_mode: int,
            iline_shift: int) -> None:
    """Geometry-derived columns shared by both decoders."""
    is_read = kind_np == OP_READ
    is_write = kind_np == OP_WRITE
    is_data = is_read | is_write
    is_ifetch = kind_np == OP_IFETCH
    out.is_read = is_read
    out.is_write = is_write
    out.is_data = is_data
    out.is_ifetch = is_ifetch

    line = a_np >> line_shift
    out.idx = line & idx_mask
    out.tag = line >> tag_shift
    out.bank = line % nbanks

    # Busy-cycle advance of each event *when it is fast*: hits cost one
    # cycle, computes their operand, resident ifetches their count.
    adv = np.where(is_data, _I64(1), _I64(0))
    adv = np.where(kind_np == OP_COMPUTE, a_np, adv)
    adv = np.where(is_ifetch, b_np, adv)
    out.adv = adv

    # Degenerate operands (negative compute cycles, non-positive fetch
    # counts, astronomically large advances that could overflow a
    # cumulative sum) are legal on the scalar path but excluded from the
    # vector window; the scalar branches replay them exactly.
    maybe_fast = is_data | ((kind_np == OP_COMPUTE) & (a_np >= 0)
                            & (a_np < (1 << 40)))
    if icache_mode == 0:
        maybe_fast |= is_ifetch & (b_np >= 1) & (b_np < (1 << 40))
        out.il_first = out.il_last = None
    elif icache_mode == 1:
        maybe_fast |= is_ifetch & (b_np >= 1) & (b_np < (1 << 40))
        out.il_first = a_np >> iline_shift
        # 4 bytes per instruction (repro.core.icache.INSTRUCTION_BYTES).
        out.il_last = (a_np + b_np * 4 - 1) >> iline_shift
    else:
        out.il_first = out.il_last = None
    out.maybe_fast = maybe_fast
    out.maybe_fast_list = maybe_fast.tolist()
