"""Selectable multi-backend for packed replay.

The :class:`~repro.trace.interleave.TimingInterleaver` fast path has three
interchangeable implementations ("backends", psim's ``EVAL_MODE`` pattern):

* ``python`` -- the inline ``_run_fast`` loop in
  :mod:`repro.trace.interleave`.  Always available; the semantic reference.
* ``numpy`` -- :mod:`repro.trace.engine.numpy_backend`.  Batch-decodes
  packed chunks into flat opcode/address arrays
  (:mod:`repro.trace.engine.flatten`) and vectorizes whole quiet runs of
  hits between coherence/sync events for single-processor replay.
* ``native`` -- :mod:`repro.trace.engine.native`.  A C extension
  (``_native.c``) running the full interleaver inner loop over the shared
  ``array('q')`` tag/state/bank storage, calling back into python only for
  misses, instruction-cache refills, and synchronization.

Selection: the ``backend=`` knob on ``TimingInterleaver`` /
``run_simulation`` / ``SweepSpec`` wins; otherwise the ``REPRO_ENGINE``
environment variable; otherwise ``auto``, which probes native -> numpy ->
python.  Requests degrade gracefully (a missing compiler or numpy falls
back down the ladder) unless ``strict=True``.

Every backend must be fingerprint-identical to the python loop; the
differential verifier (:mod:`repro.verify.differ`) runs all importable
backends as additional engines over the golden suites and the fuzz corpus.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

__all__ = ["BACKEND_CHOICES", "ENGINE_ENV", "available_backends",
           "backend_info", "engine_degradation", "native_available",
           "native_unavailable_reason", "numpy_available",
           "resolve_backend"]

#: Accepted values for ``REPRO_ENGINE`` and every ``backend=`` knob.
BACKEND_CHOICES = ("auto", "python", "numpy", "native")

ENGINE_ENV = "REPRO_ENGINE"

_numpy_ok: Optional[bool] = None


def numpy_available() -> bool:
    """Whether the numpy-vectorized tier can be used."""
    global _numpy_ok
    if _numpy_ok is None:
        try:
            import numpy  # noqa: F401
            _numpy_ok = True
        except Exception:  # pragma: no cover - numpy is a hard test dep
            _numpy_ok = False
    return _numpy_ok


def native_available() -> bool:
    """Whether the C extension imported (or built on demand)."""
    from . import native
    return native.load() is not None


def native_unavailable_reason() -> Optional[str]:
    """Why the native tier is missing (``None`` when it loaded)."""
    from . import native
    native.load()
    return native.LOAD_ERROR


def resolve_backend(request: Optional[str] = None,
                    strict: bool = False) -> str:
    """Concrete backend for a request.

    ``None`` reads ``$REPRO_ENGINE`` (default ``auto``).  ``auto`` probes
    native -> numpy -> python; explicit requests degrade down the same
    ladder when their tier is unavailable, unless ``strict`` is set, in
    which case a missing tier raises ``RuntimeError`` with the reason.
    """
    if request is None:
        request = os.environ.get(ENGINE_ENV, "").strip() or "auto"
    request = request.strip().lower()
    if request not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown replay backend {request!r}; "
            f"choose from {', '.join(BACKEND_CHOICES)}")
    if request == "auto":
        if native_available():
            return "native"
        return "numpy" if numpy_available() else "python"
    if request == "native" and not native_available():
        if strict:
            raise RuntimeError(
                f"native replay backend unavailable: "
                f"{native_unavailable_reason()}")
        return "numpy" if numpy_available() else "python"
    if request == "numpy" and not numpy_available():
        if strict:
            raise RuntimeError("numpy replay backend unavailable")
        return "python"
    return request


def engine_degradation(request: Optional[str] = None) -> Optional[str]:
    """Human-readable note when resolution lands below the best tier the
    request allows, or ``None`` when nothing degraded.

    ``auto`` (and an explicit ``native`` request) aim for the native
    tier, so resolving anything else means a toolchain problem worth
    surfacing -- the sweep/bench CLIs print this instead of silently
    running slower.  Explicit ``numpy``/``python`` requests never
    degrade silently upward of what they asked for.
    """
    if request is None:
        request = os.environ.get(ENGINE_ENV, "").strip() or "auto"
    request = request.strip().lower()
    resolved = resolve_backend(request)
    if request in ("auto", "native") and resolved != "native":
        reason = native_unavailable_reason() or "unknown"
        return (f"native tier unavailable ({reason}); "
                f"running on the {resolved} tier")
    if request == "numpy" and resolved != "numpy":
        return (f"numpy tier unavailable; "
                f"running on the {resolved} tier")
    return None


def available_backends() -> list:
    """Concrete backends importable right now, fastest first."""
    names = []
    if native_available():
        names.append("native")
    if numpy_available():
        names.append("numpy")
    names.append("python")
    return names


def backend_info(request: Optional[str] = None) -> Dict[str, object]:
    """Backend metadata for bench reports and diagnostics."""
    from . import native
    resolved = resolve_backend(request)
    info: Dict[str, object] = {
        "requested": request or os.environ.get(ENGINE_ENV, "").strip()
        or "auto",
        "resolved": resolved,
        "available": available_backends(),
    }
    if numpy_available():
        import numpy
        info["numpy_version"] = numpy.__version__
    if native_available():
        info["native_version"] = native.NATIVE_VERSION
        info["native_ladder"] = native.ladder_available()
    else:
        info["native_error"] = native_unavailable_reason()
    return info
