"""Numpy-vectorized packed replay backend.

A clone of ``TimingInterleaver._run_fast`` (:mod:`repro.trace.interleave`)
that drains *decoded* chunks (:mod:`repro.trace.engine.flatten`) and
fast-forwards whole quiet runs of cache hits with batched numpy array
operations instead of one python iteration per event.  The only machines
delegated to the python loop at entry are multi-cycle-bank ones (the
window can never open there, so this tier would pay the decode without
ever vectorizing); multi-processor machines replay here too, with the
vector window bounded by the scheduler horizon (below).

Why the vector window is exact, not approximate:

* **Classification from the initial window state is exact.**  Within a
  window of hits, reads mutate nothing and writes only set
  ``states[idx] = MODIFIED`` at slots where the tag already matched with
  ``state >= MODIFIED`` -- transitions that cannot change any later
  event's hit/miss classification or its fast-write eligibility.  The
  first event classified slow ends the window before it executes.
* **Quiet-window preconditions.**  The window only opens when
  ``time >= slow_bound``, a conservative bound covering every in-flight
  fill ready time, write-buffer retire time, and bank-free residue
  produced by earlier events *on any processor*.  Past the bound, an
  in-flight lookup can only find stale entries (hit timing identical to
  no entry; the lazy deletes the python loop performs are
  observationally irrelevant), a write-hit write-buffer reservation can
  never stall (all entries evictable), and no bank is busy.  With
  ``bank_cycle_time == 1`` each hit then advances time by exactly one
  cycle, computes by their operand and resident ifetches by their count,
  so the window's timing is a cumulative sum.
* **Scheduler horizon (multi-processor).**  The interleaver runs the
  current process while ``time <= next_time`` (the heap top); no other
  process executes in between, so a run of fast events whose post-times
  stay ``<= next_time`` is replayed by the scalar loop back to back with
  no preemption.  The window therefore truncates at the horizon: only
  events finishing by ``next_time`` are vector-executed, the boundary
  event runs scalar and performs the yield exactly like the python
  loop.  Every scalar data event and every window ratchets
  ``slow_bound`` to its completion time, so a *slower* processor
  switching in behind a faster one re-enters scalar mode until it has
  caught up past every residue (bank-free times, buffer retires) the
  faster one left behind.  Processors in cycle-lockstep (horizon == 0)
  simply stay scalar; drifted ones (multiprogramming quanta, post-miss
  skew) vectorize their headroom.  A tape that never drifts cannot
  benefit at all, so after ``_BAIL_EVENTS`` events with negligible
  vector engagement the run is handed to the python loop mid-stream
  (see ``_BAIL_EVENTS`` below).
* **Side effects are reproduced wholesale**: write slots scatter to
  MODIFIED, each touched bank's free time becomes the start+1 of its
  last access, and each written bank's buffer drains to exactly the last
  store's completion (the python loop's lazy eviction leaves the same
  single entry).

Statistic deltas accumulate exactly like the python loop and flush once
in the ``finally``; the differential verifier pins fingerprints across
backends.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

import numpy as np

from .flatten import DecodedChunk, decode_chunk
from ..packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE, OP_ENQUEUE,
                      OP_IFETCH, OP_LOCK_ACQ, OP_LOCK_REL, OP_READ,
                      OP_READ_SPAN, OP_WRITE, OP_WRITE_SPAN)
from ...core.cache import MODIFIED
from ...core.system import MultiprocessorSystem

__all__ = ["run"]

_NO_LIMIT = (1 << 63) - 1
_MIN_BLOCK = 128
_MAX_BLOCK = 32768

# A window attempt costs a fixed handful of numpy calls, worth roughly
# _SHORT scalar events.  Windows shorter than that are a net loss, so
# every short window buys an exponentially growing run of scalar-only
# events before the next attempt -- on miss-heavy tapes (short hit runs)
# the backend converges to scalar speed instead of paying the attempt
# overhead at every miss.
_SHORT = 64
_MIN_COOLDOWN = 64
_MAX_COOLDOWN = 4096

#: Multi-processor machines whose processors run in cycle-lockstep have a
#: scheduler horizon of ~0 -- windows never open, and the decoded scalar
#: loop is pure overhead over ``_run_fast``.  After this many events the
#: backend checks the vectorized fraction once and, if it is below
#: 1/``_BAIL_DIV``, hands the remainder of the run to the python loop at
#: the next process-switch point (identical semantics; the deltas
#: accumulated so far flush additively in the ``finally``).
_BAIL_EVENTS = 30_000
_BAIL_DIV = 32

DEBUG = None  # set to a dict to collect window statistics


def run(interleaver, max_cycles: Optional[int]) -> int:
    """Drop-in replacement for ``TimingInterleaver._run_fast``."""
    self = interleaver
    system = self.system
    config = system.config
    # The vector window is only provably exact with single-cycle banks
    # (multi-cycle banks keep arbitration live between consecutive
    # events); there this tier would pay the decode without ever
    # vectorizing, so hand the run to the python loop outright
    # (identical semantics, zero overhead).  Multi-processor machines
    # stay: the window truncates at the scheduler horizon instead.
    if system.clusters[0].scc.interconnect.bank_cycle_time != 1:
        return self._run_fast(max_cycles)
    heap = self._heap
    processes = self._processes
    n_cl = config.clusters
    cl_scc = [cluster.scc for cluster in system.clusters]
    cl_states = [scc.array._states for scc in cl_scc]
    cl_tags = [scc.array._tags for scc in cl_scc]
    cl_icn = [scc.interconnect for scc in cl_scc]
    cl_bank_free = [icn._bank_free for icn in cl_icn]
    cl_wbufs = [icn._write_buffers for icn in cl_icn]
    cl_inflight = [scc._inflight for scc in cl_scc]
    cl_reserve = [icn.reserve_write_slot for icn in cl_icn]
    nbanks = cl_icn[0].num_banks
    bank_cycle = cl_icn[0].bank_cycle_time
    idx_mask = self._idx_mask
    tag_shift = self._tag_shift
    line_shift = config.line_offset_bits
    coherence = system.coherence
    read_miss = coherence.read_miss
    write_line = coherence.write_line
    stall_on_writes = config.stall_on_writes
    proc_cluster = self._proc_cluster
    procs = system._procs
    nproc = config.total_processors
    queues = self._queues
    ifetch = system.ifetch
    model_icache = config.model_icache
    ic_objs = None
    iline_shift = 0
    if model_icache:
        iline = config.icache_line_size
        if iline > 0 and iline & (iline - 1) == 0:
            iline_shift = iline.bit_length() - 1
            caches = [system.clusters[proc_cluster[p]]
                      .icaches[config.port_of(p)]
                      for p in range(nproc)]
            if all(ic.array._index_mask for ic in caches):
                ic_objs = caches
                ic_states = [ic.array._states for ic in caches]
                ic_tags = [ic.array._tags for ic in caches]
                ic_mask = [ic.array._index_mask for ic in caches]
                ic_shift = [ic.array._tag_shift for ic in caches]
    if not model_icache:
        icache_mode = 0
    elif ic_objs is not None:
        icache_mode = 1
    else:
        icache_mode = 2

    # Zero-copy int64 views over the shared array('q') storage: python
    # callbacks (misses, installs) and vector scatters mutate the same
    # memory, so neither side ever sees stale data.
    np_states = [np.frombuffer(s, dtype=np.int64) for s in cl_states]
    np_tags = [np.frombuffer(t, dtype=np.int64) for t in cl_tags]
    np_bank_free = [np.frombuffer(b, dtype=np.int64)
                    for b in cl_bank_free]
    if icache_mode == 1:
        np_ic_states = [np.frombuffer(s, dtype=np.int64)
                        for s in ic_states]
        np_ic_tags = [np.frombuffer(t, dtype=np.int64) for t in ic_tags]

    # The vector window is only provably exact with single-cycle banks
    # (see module docstring); the multi-processor story is handled by
    # the horizon truncation below, not by this gate.
    vec_ok = bank_cycle == 1

    # Conservative per-cluster upper bound on every pending slow-event
    # side effect: in-flight fill ready times, write-buffer retire
    # times, bank-free residue.  Per cluster, not global, because those
    # structures are all cluster-local (the shared bus is global but
    # windows never consult it): a miss stalling cluster 0 must not
    # close the window for a drifting processor in cluster 1.  Start
    # from any pre-existing state so a reused system cannot open a
    # window early.
    slow_bounds = [0] * n_cl
    for c in range(n_cl):
        bound = 0
        infl = cl_inflight[c]
        if infl:
            bound = max(bound, max(infl.values()))
        for buf in cl_wbufs[c]:
            if buf:
                bound = max(bound, max(buf))
        if len(cl_bank_free[c]):
            bound = max(bound, max(cl_bank_free[c]))
        slow_bounds[c] = bound

    wb_scratch = np.empty(nbanks, dtype=np.int64)
    dec_cache = {}

    pop = heapq.heappop
    pushpop = heapq.heappushpop
    advance = self._advance
    limit = _NO_LIMIT if max_cycles is None else max_cycles
    ev = 0
    d_reads = [0] * n_cl
    d_writes = [0] * n_cl
    d_conf = [0] * n_cl
    d_wbuf = [0] * n_cl
    d_refs = [0] * nproc
    d_busy = [0] * nproc
    d_stall = [0] * nproc
    d_finish = [-1] * nproc
    finish_time = 0
    pending = -1
    blk = _MIN_BLOCK
    cooldown = _MIN_COOLDOWN
    scalar_budget = 0
    vec_ev = 0
    bail_armed = nproc > 1
    try:
        while True:
            if pending >= 0:
                pid = pending
                pending = -1
                process = processes[pid]
            else:
                if not heap:
                    break
                if bail_armed and ev >= _BAIL_EVENTS:
                    bail_armed = False
                    if vec_ev * _BAIL_DIV < ev:
                        if DEBUG is not None:
                            DEBUG["bailed"] = True
                        return max(finish_time,
                                   self._run_fast(max_cycles))
                pid = pop(heap)[2]
                process = processes[pid]
                process.in_heap = False
            if process.chunk is None:
                finish = advance(process, max_cycles)
                if finish is not None and finish > finish_time:
                    finish_time = finish
                if process.chunk is None:
                    continue
            # ---- drain decoded chunks inline, switching in-frame ------
            chunk = process.chunk
            dec = dec_cache.get(pid)
            if dec is None or dec.source is not chunk:
                dec = decode_chunk(chunk, line_shift, idx_mask, tag_shift,
                                   nbanks, icache_mode, iline_shift)
                dec.source = chunk
                dec_cache[pid] = dec
            e = dec.cursor_for(process.chunk_pos, process.chunk_sub)
            kind = dec.kind
            A = dec.a
            Bv = dec.b
            mf = dec.maybe_fast_list
            n_ev = dec.n
            time = process.time
            cl = proc_cluster[pid]
            states = cl_states[cl]
            tags = cl_tags[cl]
            bank_free = cl_bank_free[cl]
            inflight = cl_inflight[cl]
            scc = cl_scc[cl]
            reserve = cl_reserve[cl]
            wbufs = cl_wbufs[cl]
            st_np = np_states[cl]
            tg_np = np_tags[cl]
            bf_np = np_bank_free[cl]
            next_time = heap[0][0] if heap else _NO_LIMIT
            while True:
                yielded = False
                while e < n_ev:
                    # ---- vectorized fast-forward over quiet hit runs --
                    # ``time < next_time`` is the scheduler horizon: with
                    # an empty heap next_time is _NO_LIMIT (the uniproc
                    # case); otherwise the current process has exclusive
                    # headroom up to the heap top and the window truncates
                    # there.  Tested first: tied processors (the common
                    # multi-processor regime) fail it on every event.
                    if (vec_ok and time < next_time and mf[e]
                            and slow_bounds[cl] <= time <= limit):
                        if scalar_budget > 0:
                            scalar_budget -= 1
                            vec_try = False
                        else:
                            vec_try = True
                    else:
                        vec_try = False
                    if vec_try:
                        if DEBUG is not None:
                            DEBUG["attempts"] = DEBUG.get("attempts", 0) + 1
                        while e < n_ev:
                            hi = e + blk
                            if hi > n_ev:
                                hi = n_ev
                            s1 = slice(e, hi)
                            idx_b = dec.idx[s1]
                            st_g = st_np[idx_b]
                            tagm = tg_np[idx_b] == dec.tag[s1]
                            rd = dec.is_read[s1]
                            wr = dec.is_write[s1]
                            fast = (dec.maybe_fast[s1]
                                    & (((st_g != 0) & tagm) | ~rd)
                                    & (((st_g >= MODIFIED) & tagm) | ~wr))
                            if icache_mode == 1:
                                fmask = dec.is_ifetch[s1]
                                if fmask.any():
                                    fi = dec.il_first[s1]
                                    la = dec.il_last[s1]
                                    ist = np_ic_states[pid]
                                    itg = np_ic_tags[pid]
                                    imask = ic_mask[pid]
                                    ishift = ic_shift[pid]
                                    ok_i = ((ist[fi & imask] != 0)
                                            & (itg[fi & imask]
                                               == fi >> ishift)
                                            & (ist[la & imask] != 0)
                                            & (itg[la & imask]
                                               == la >> ishift)
                                            & (la - fi < 2))
                                    fast &= ok_i | ~fmask
                            nf = np.flatnonzero(~fast)
                            full = not nf.size
                            L = hi - e if full else int(nf[0])
                            if L == 0:
                                blk = _MIN_BLOCK
                                scalar_budget = cooldown
                                if cooldown < _MAX_COOLDOWN:
                                    cooldown <<= 1
                                break
                            cum = np.cumsum(dec.adv[e:e + L])
                            total = int(cum[-1])
                            if time + total > next_time:
                                # Scheduler horizon: vector-run only the
                                # events that finish by the heap top's
                                # wake-up; the boundary event runs scalar
                                # and performs the yield exactly like the
                                # python loop.
                                kv = int(np.searchsorted(
                                    cum, next_time - time, side="right"))
                                full = False
                                L = kv
                                if L == 0:
                                    blk = _MIN_BLOCK
                                    scalar_budget = cooldown
                                    if cooldown < _MAX_COOLDOWN:
                                        cooldown <<= 1
                                    break
                                cum = cum[:L]
                                total = int(cum[-1])
                            if time + total > limit:
                                # Run only events whose pre-event time
                                # stays within the limit; the next scalar
                                # iteration raises exactly like the
                                # python loop.
                                kv = int(np.searchsorted(
                                    cum, limit - time, side="right"))
                                L = kv + 1
                                cum = cum[:L]
                                total = int(cum[-1])
                                full = False
                            s2 = slice(e, e + L)
                            rd2 = dec.is_read[s2]
                            wr2 = dec.is_write[s2]
                            n_r = int(rd2.sum())
                            n_w = int(wr2.sum())
                            if n_r:
                                d_reads[cl] += n_r
                            if n_w:
                                d_writes[cl] += n_w
                                st_np[dec.idx[s2][wr2]] = MODIFIED
                            nd = n_r + n_w
                            if nd:
                                datam = rd2 | wr2
                                dpost = time + cum[datam]
                                d_refs[pid] += nd
                                d_finish[pid] = int(dpost[-1])
                                np.maximum.at(bf_np, dec.bank[s2][datam],
                                              dpost)
                                if n_w and not stall_on_writes:
                                    wb_scratch[:] = -1
                                    np.maximum.at(wb_scratch,
                                                  dec.bank[s2][wr2],
                                                  time + cum[wr2])
                                    for bnk in np.flatnonzero(
                                            wb_scratch >= 0):
                                        buf = wbufs[bnk]
                                        buf.clear()
                                        buf.append(int(wb_scratch[bnk]))
                            if icache_mode == 1:
                                fm2 = dec.is_ifetch[s2]
                                if fm2.any():
                                    ic_objs[pid].fetch_lines += int(
                                        (dec.il_last[s2][fm2]
                                         - dec.il_first[s2][fm2]
                                         + 1).sum())
                            d_busy[pid] += total
                            time += total
                            if time > slow_bounds[cl]:
                                # Bank-free posts and buffer retires left
                                # by this window are all <= time; a
                                # slower processor switching in must stay
                                # scalar until it passes them.
                                slow_bounds[cl] = time
                            ev += L
                            vec_ev += L
                            e += L
                            if DEBUG is not None:
                                DEBUG["vec_events"] = (
                                    DEBUG.get("vec_events", 0) + L)
                            if L >= _SHORT:
                                cooldown = _MIN_COOLDOWN
                            else:
                                scalar_budget = cooldown
                                if cooldown < _MAX_COOLDOWN:
                                    cooldown <<= 1
                            if not full:
                                blk = _MIN_BLOCK
                                break
                            if blk < _MAX_BLOCK:
                                blk <<= 1
                        if e >= n_ev:
                            break
                    op = kind[e]
                    if op == OP_READ or op == OP_WRITE or op == OP_COMPUTE:
                        if time > limit:
                            raise RuntimeError(
                                f"simulation exceeded {max_cycles} "
                                f"cycles")
                        operand = A[e]
                        e += 1
                        ev += 1
                        if op == OP_COMPUTE:
                            if operand:
                                d_busy[pid] += operand
                                time += operand
                                if time > next_time:
                                    yielded = True
                                    break
                            continue
                        line = operand >> line_shift
                        bank = line % nbanks
                        free = bank_free[bank]
                        if free > time:
                            d_conf[cl] += free - time
                            start = free
                        else:
                            start = time
                        bank_free[bank] = start + bank_cycle
                        idx = line & idx_mask
                        if op == OP_READ:
                            if (states[idx]
                                    and tags[idx] == line >> tag_shift):
                                d_reads[cl] += 1
                                if inflight:
                                    ready = inflight.get(line)
                                    if ready is None:
                                        done = start + 1
                                    elif ready <= start:
                                        del inflight[line]
                                        done = start + 1
                                    else:
                                        done = ready + 1
                                else:
                                    done = start + 1
                            else:
                                done = read_miss(scc, line, start)
                        else:
                            if (states[idx] >= MODIFIED
                                    and tags[idx] == line >> tag_shift):
                                states[idx] = MODIFIED
                                d_writes[cl] += 1
                                if inflight:
                                    ready = inflight.get(line)
                                    if ready is None:
                                        done = start + 1
                                    elif ready <= start:
                                        del inflight[line]
                                        done = start + 1
                                    else:
                                        done = ready + 1
                                else:
                                    done = start + 1
                                if not stall_on_writes:
                                    stall = reserve(bank, done, done)
                                    d_wbuf[cl] += stall
                                    done += stall
                            else:
                                outcome = write_line(scc, line, start)
                                done = outcome.complete
                                if stall_on_writes:
                                    if outcome.retire > done:
                                        done = outcome.retire
                                else:
                                    stall = reserve(bank, done,
                                                    outcome.retire)
                                    d_wbuf[cl] += stall
                                    done += stall
                                if outcome.retire > slow_bounds[cl]:
                                    slow_bounds[cl] = outcome.retire
                        d_refs[pid] += 1
                        d_busy[pid] += 1
                        d_stall[pid] += done - time - 1
                        d_finish[pid] = done
                        time = done
                        if done > slow_bounds[cl]:
                            # Hits leave residue too on a multi-processor
                            # machine: this event's bank stays reserved
                            # until ``done``, and a slower processor may
                            # switch in before that.
                            slow_bounds[cl] = done
                        if time > next_time:
                            yielded = True
                            break
                    elif op == OP_IFETCH:
                        if time > limit:
                            raise RuntimeError(
                                f"simulation exceeded {max_cycles} "
                                f"cycles")
                        ev += 1
                        count = Bv[e]
                        if not model_icache:
                            d_busy[pid] += count
                            time += count
                        elif ic_objs is not None:
                            addr = A[e]
                            iline_no = addr >> iline_shift
                            ilast = (addr + count * 4 - 1) >> iline_shift
                            istates = ic_states[pid]
                            itags = ic_tags[pid]
                            imask = ic_mask[pid]
                            ishift = ic_shift[pid]
                            while iline_no <= ilast:
                                idxi = iline_no & imask
                                if (istates[idxi] and itags[idxi]
                                        == iline_no >> ishift):
                                    iline_no += 1
                                else:
                                    break
                            if iline_no > ilast:
                                ic_objs[pid].fetch_lines += (
                                    ilast - (addr >> iline_shift) + 1)
                                d_busy[pid] += count
                                time += count
                            else:
                                time = ifetch(pid, addr, count, time)
                        else:
                            time = ifetch(pid, A[e], count, time)
                        e += 1
                        if time > next_time:
                            yielded = True
                            break
                    elif op == OP_ENQUEUE:
                        if time > limit:
                            raise RuntimeError(
                                f"simulation exceeded {max_cycles} "
                                f"cycles")
                        ev += 1
                        queues.setdefault(A[e], deque()).append(Bv[e])
                        e += 1
                    elif op == OP_DEQUEUE:
                        if time > limit:
                            raise RuntimeError(
                                f"simulation exceeded {max_cycles} "
                                f"cycles")
                        ev += 1
                        queue = queues.get(A[e])
                        if queue:
                            queue.popleft()
                        e += 1
                    else:
                        if time > limit:
                            raise RuntimeError(
                                f"simulation exceeded {max_cycles} "
                                f"cycles")
                        ev += 1
                        process.time = time
                        if op == OP_LOCK_ACQ:
                            self._lock_acquire(process, A[e])
                        elif op == OP_LOCK_REL:
                            self._lock_release(process, A[e])
                        else:
                            self._barrier(process, A[e], Bv[e])
                        e += 1
                        time = process.time
                        if process.blocked or process.in_heap:
                            yielded = True
                            break
                        next_time = heap[0][0] if heap else _NO_LIMIT
                        if time > next_time:
                            yielded = True
                            break
                if not yielded:
                    if dec.bad_pos is not None:
                        # Mirror the python loop byte for byte: the limit
                        # check wins, and the event count includes the
                        # opcode that failed to decode.
                        if time > limit:
                            raise RuntimeError(
                                f"simulation exceeded {max_cycles} "
                                f"cycles")
                        ev += 1
                        bad = dec.bad_pos
                        bad_op = chunk[bad]
                        process.time = time
                        if bad_op in (OP_READ_SPAN, OP_WRITE_SPAN):
                            raise ValueError(
                                f"non-positive span stride at {bad}")
                        raise ValueError(
                            f"unknown packed opcode {bad_op} at {bad}")
                    process.time = time
                    process.chunk = None
                    process.chunk_pos = 0
                    process.chunk_sub = 0
                    finish = advance(process, max_cycles)
                    if finish is not None:
                        if finish > finish_time:
                            finish_time = finish
                        break
                    if process.chunk is None:
                        break
                    chunk = process.chunk
                    dec = dec_cache.get(pid)
                    if dec is None or dec.source is not chunk:
                        dec = decode_chunk(chunk, line_shift, idx_mask,
                                           tag_shift, nbanks, icache_mode,
                                           iline_shift)
                        dec.source = chunk
                        dec_cache[pid] = dec
                    e = 0
                    kind = dec.kind
                    A = dec.a
                    Bv = dec.b
                    mf = dec.maybe_fast_list
                    n_ev = dec.n
                    time = process.time
                    next_time = heap[0][0] if heap else _NO_LIMIT
                    continue
                process.time = time
                if e:
                    process.chunk_pos = dec.after_i[e - 1]
                    process.chunk_sub = dec.after_sub[e - 1]
                else:
                    process.chunk_pos = 0
                    process.chunk_sub = 0
                if process.blocked or process.in_heap:
                    break
                if bail_armed and ev >= _BAIL_EVENTS:
                    bail_armed = False
                    if vec_ev * _BAIL_DIV < ev:
                        # Lockstep tape: yield the current process exactly
                        # like the python loop would and let _run_fast
                        # drain the rest.
                        self._seq += 1
                        process.in_heap = True
                        heapq.heappush(heap, (time, self._seq, pid))
                        if DEBUG is not None:
                            DEBUG["bailed"] = True
                        return max(finish_time,
                                   self._run_fast(max_cycles))
                self._seq += 1
                process.in_heap = True
                npid = pushpop(heap, (time, self._seq, pid))[2]
                process = processes[npid]
                process.in_heap = False
                if process.chunk is None:
                    pending = npid
                    break
                pid = npid
                chunk = process.chunk
                dec = dec_cache.get(pid)
                if dec is None or dec.source is not chunk:
                    dec = decode_chunk(chunk, line_shift, idx_mask,
                                       tag_shift, nbanks, icache_mode,
                                       iline_shift)
                    dec.source = chunk
                    dec_cache[pid] = dec
                e = dec.cursor_for(process.chunk_pos, process.chunk_sub)
                kind = dec.kind
                A = dec.a
                Bv = dec.b
                mf = dec.maybe_fast_list
                n_ev = dec.n
                time = process.time
                cl = proc_cluster[pid]
                states = cl_states[cl]
                tags = cl_tags[cl]
                bank_free = cl_bank_free[cl]
                inflight = cl_inflight[cl]
                scc = cl_scc[cl]
                reserve = cl_reserve[cl]
                wbufs = cl_wbufs[cl]
                st_np = np_states[cl]
                tg_np = np_tags[cl]
                bf_np = np_bank_free[cl]
                next_time = heap[0][0] if heap else _NO_LIMIT
    finally:
        self.events_processed += ev
        for c in range(n_cl):
            sstats = cl_scc[c].stats
            if d_reads[c]:
                sstats.reads += d_reads[c]
            if d_writes[c]:
                sstats.writes += d_writes[c]
            if d_conf[c]:
                sstats.bank_conflict_cycles += d_conf[c]
                cl_icn[c].conflict_cycles += d_conf[c]
            if d_wbuf[c]:
                sstats.write_buffer_stall_cycles += d_wbuf[c]
        for p in range(nproc):
            refs = d_refs[p]
            busy = d_busy[p]
            if refs or busy:
                pstats = procs[p].stats
                pstats.references += refs
                pstats.instructions += busy
                pstats.busy_cycles += busy
                pstats.memory_stall_cycles += d_stall[p]
            if d_finish[p] > procs[p].finish_time:
                procs[p].finish_time = d_finish[p]
    return finish_time
