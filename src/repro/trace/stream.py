"""Utilities over per-process event streams.

A *static* stream is one with no response-carrying events
(:class:`~repro.trace.events.TaskDequeue`); static streams can be
materialized to lists, saved to trace files, transformed, and replayed
bit-for-bit.  Dynamic workloads (Cholesky's task queue, the
multiprogramming scheduler) cannot be captured this way -- they must be
re-executed under the interleaver, which is also what Tango-Lite does in
its execution-driven mode.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Type

from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskDequeue, TaskEnqueue, TraceEvent, Write)

__all__ = [
    "materialize",
    "replay",
    "coalesce_compute",
    "event_histogram",
    "reference_count",
]


def materialize(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """Collect a static stream into a list.

    Raises :class:`TypeError` if the stream contains a response-carrying
    event, because replaying such a stream would silently diverge from
    re-execution.
    """
    collected: List[TraceEvent] = []
    for event in events:
        if isinstance(event, TaskDequeue):
            raise TypeError(
                "stream is dynamic (contains TaskDequeue); re-execute it "
                "under the interleaver instead of materializing")
        collected.append(event)
    return collected


def replay(events: Sequence[TraceEvent]) -> Iterator[TraceEvent]:
    """Turn a materialized stream back into a process generator."""
    for event in events:
        yield event


def coalesce_compute(events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
    """Merge runs of adjacent :class:`Compute` events into one.

    Workload code often emits many small compute chunks; coalescing them
    shrinks traces and speeds up simulation without changing timing.
    """
    pending = 0
    for event in events:
        if isinstance(event, Compute):
            pending += event.cycles
            continue
        if pending:
            yield Compute(pending)
            pending = 0
        yield event
    if pending:
        yield Compute(pending)


def event_histogram(
        events: Iterable[TraceEvent]) -> Dict[Type[TraceEvent], int]:
    """Count events by type (test and report helper)."""
    histogram: Dict[Type[TraceEvent], int] = {}
    for event in events:
        histogram[type(event)] = histogram.get(type(event), 0) + 1
    return histogram


def reference_count(events: Iterable[TraceEvent]) -> int:
    """Number of data references (reads + writes) in a stream."""
    return sum(1 for event in events if isinstance(event, (Read, Write)))
