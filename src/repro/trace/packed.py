"""Packed (allocation-free) encoding of the trace-event vocabulary.

Frozen-dataclass events (:mod:`repro.trace.events`) are convenient to
author but expensive to simulate: a quick Barnes-Hut run allocates one
object and one ``generator.send`` round trip per reference, and that
Python churn -- not the cache model -- dominates wall-clock time.  This
module encodes the same vocabulary as integer opcodes in flat ``int``
sequences (``list`` while being built, ``array('q')`` at rest), which the
interleaver consumes without allocating an event object or resuming the
generator per event (see ``TimingInterleaver``'s chunk loop).

Encoding (one row per opcode; all operands are non-negative ints):

=================  =============================  =========================
opcode             operands                       event(s)
=================  =============================  =========================
``OP_READ``        ``addr``                       ``Read(addr)``
``OP_WRITE``       ``addr``                       ``Write(addr)``
``OP_COMPUTE``     ``cycles``                     ``Compute(cycles)``
``OP_IFETCH``      ``addr count``                 ``Ifetch(addr, count)``
``OP_LOCK_ACQ``    ``lock_id``                    ``LockAcquire(lock_id)``
``OP_LOCK_REL``    ``lock_id``                    ``LockRelease(lock_id)``
``OP_BARRIER``     ``barrier_id count``           ``Barrier(id, count)``
``OP_ENQUEUE``     ``queue_id item``              ``TaskEnqueue(qid, item)``
``OP_DEQUEUE``     ``queue_id``                   ``TaskDequeue(qid)``
``OP_READ_SPAN``   ``base size stride``           ``Read(base+k*stride)``
``OP_WRITE_SPAN``  ``base size stride``           ``Write(base+k*stride)``
=================  =============================  =========================

The span opcodes compress the streaming loops every workload has (read a
record, write a column) into three ints regardless of length.

Chunk-validity contract
-----------------------

A generator may yield a :class:`PackedChunk` of consecutive events instead
of yielding them one by one **iff** moving the Python-side computation to
the chunk boundaries cannot change what any process observes:

1. every address/cycle operand in the chunk is computable from state that
   cannot change while the chunk drains (other processes may run between
   chunk events -- simulated time still interleaves exactly as before);
2. no shared-Python-state mutation moves relative to the original yield
   positions in a way another process could observe (mutations are fine
   at chunk boundaries, where the generator actually runs).

Timing-dependent sections (lock-racing tree inserts, reads of data a peer
mutates mid-phase) must keep yielding event objects; the interleaver runs
both forms side by side in one stream.

``OP_DEQUEUE`` is special: a live workload needs the dequeue *response*
to branch on, which a pre-encoded chunk cannot receive, so the opcode is
only valid in whole-stream recordings replayed under the determinism
guard (:meth:`repro.workloads.base.TracedApplication
.stream_is_deterministic`); the interleaver pops the queue and discards
the item, because the recorded stream already contains the branch taken.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Sequence, Union

from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskDequeue, TaskEnqueue, TraceEvent, Write)

__all__ = [
    "OP_READ", "OP_WRITE", "OP_COMPUTE", "OP_IFETCH", "OP_LOCK_ACQ",
    "OP_LOCK_REL", "OP_BARRIER", "OP_ENQUEUE", "OP_DEQUEUE",
    "OP_READ_SPAN", "OP_WRITE_SPAN", "OP_WIDTH",
    "PackedChunk", "PackedEncodingError",
    "append_event", "encode_events", "decode_events", "event_count",
    "packed_to_bytes", "packed_from_bytes",
]

OP_READ = 1
OP_WRITE = 2
OP_COMPUTE = 3
OP_IFETCH = 4
OP_LOCK_ACQ = 5
OP_LOCK_REL = 6
OP_BARRIER = 7
OP_ENQUEUE = 8
OP_DEQUEUE = 9
OP_READ_SPAN = 10
OP_WRITE_SPAN = 11

OP_WIDTH = {
    OP_READ: 2, OP_WRITE: 2, OP_COMPUTE: 2, OP_IFETCH: 3,
    OP_LOCK_ACQ: 2, OP_LOCK_REL: 2, OP_BARRIER: 3, OP_ENQUEUE: 3,
    OP_DEQUEUE: 2, OP_READ_SPAN: 4, OP_WRITE_SPAN: 4,
}
"""Ints occupied by each opcode, including the opcode itself."""

PackedData = Union[List[int], array]


class PackedEncodingError(TypeError):
    """An event cannot be represented in the packed encoding."""


class PackedChunk:
    """A run of consecutive events from one process, packed as ints.

    Yield one of these from a process generator instead of the individual
    events.  ``data`` may be any int sequence; generators that reuse a
    builder list across chunks are safe, because the interleaver fully
    consumes a chunk before resuming the generator that yielded it.
    """

    __slots__ = ("data",)

    def __init__(self, data: Sequence[int]):
        self.data = data

    def __len__(self) -> int:
        return event_count(self.data)

    def __repr__(self) -> str:
        return f"PackedChunk({event_count(self.data)} events)"


def append_event(buf: PackedData, event: TraceEvent) -> None:
    """Encode one event object onto ``buf`` (a recording adapter helper)."""
    kind = type(event)
    if kind is Read:
        buf.append(OP_READ)
        buf.append(event.addr)
    elif kind is Write:
        buf.append(OP_WRITE)
        buf.append(event.addr)
    elif kind is Compute:
        buf.append(OP_COMPUTE)
        buf.append(event.cycles)
    elif kind is Ifetch:
        buf.append(OP_IFETCH)
        buf.append(event.addr)
        buf.append(event.count)
    elif kind is LockAcquire:
        buf.append(OP_LOCK_ACQ)
        buf.append(event.lock_id)
    elif kind is LockRelease:
        buf.append(OP_LOCK_REL)
        buf.append(event.lock_id)
    elif kind is Barrier:
        buf.append(OP_BARRIER)
        buf.append(event.barrier_id)
        buf.append(event.count)
    elif kind is TaskEnqueue:
        if not isinstance(event.item, int) or isinstance(event.item, bool):
            raise PackedEncodingError(
                f"packed TaskEnqueue items must be plain ints, "
                f"got {event.item!r}")
        buf.append(OP_ENQUEUE)
        buf.append(event.queue_id)
        buf.append(event.item)
    elif kind is TaskDequeue:
        buf.append(OP_DEQUEUE)
        buf.append(event.queue_id)
    else:
        raise PackedEncodingError(f"{event!r} is not a trace event")


def encode_events(events) -> array:
    """Pack an iterable of event objects into a fresh ``array('q')``."""
    buf = array("q")
    for event in events:
        append_event(buf, event)
    return buf


def decode_events(data: PackedData) -> Iterator[TraceEvent]:
    """Expand packed ints back into event objects (spans element-wise).

    The objects compare equal to the ones a generator-path workload would
    have yielded, which is what the golden-equivalence suite leans on.
    """
    i = 0
    end = len(data)
    while i < end:
        op = data[i]
        if op == OP_READ:
            yield Read(data[i + 1])
            i += 2
        elif op == OP_WRITE:
            yield Write(data[i + 1])
            i += 2
        elif op == OP_COMPUTE:
            yield Compute(data[i + 1])
            i += 2
        elif op == OP_READ_SPAN:
            base, size, stride = data[i + 1], data[i + 2], data[i + 3]
            for offset in range(0, size, stride):
                yield Read(base + offset)
            i += 4
        elif op == OP_WRITE_SPAN:
            base, size, stride = data[i + 1], data[i + 2], data[i + 3]
            for offset in range(0, size, stride):
                yield Write(base + offset)
            i += 4
        elif op == OP_IFETCH:
            yield Ifetch(data[i + 1], data[i + 2])
            i += 3
        elif op == OP_LOCK_ACQ:
            yield LockAcquire(data[i + 1])
            i += 2
        elif op == OP_LOCK_REL:
            yield LockRelease(data[i + 1])
            i += 2
        elif op == OP_BARRIER:
            yield Barrier(data[i + 1], data[i + 2])
            i += 3
        elif op == OP_ENQUEUE:
            yield TaskEnqueue(data[i + 1], data[i + 2])
            i += 3
        elif op == OP_DEQUEUE:
            yield TaskDequeue(data[i + 1])
            i += 2
        else:
            raise ValueError(f"unknown packed opcode {op} at {i}")


def event_count(data: PackedData) -> int:
    """Events a packed sequence expands to (spans counted element-wise)."""
    i = 0
    end = len(data)
    count = 0
    while i < end:
        op = data[i]
        if op == OP_READ_SPAN or op == OP_WRITE_SPAN:
            size, stride = data[i + 2], data[i + 3]
            count += (size + stride - 1) // stride
            i += 4
        else:
            width = OP_WIDTH.get(op)
            if width is None:
                raise ValueError(f"unknown packed opcode {op} at {i}")
            count += 1
            i += width
    return count


def packed_to_bytes(data: PackedData) -> bytes:
    """Serialize a packed sequence (trace-cache storage)."""
    if not isinstance(data, array):
        data = array("q", data)
    return data.tobytes()


def packed_from_bytes(raw: bytes) -> array:
    """Inverse of :func:`packed_to_bytes`."""
    data = array("q")
    data.frombytes(raw)
    return data
