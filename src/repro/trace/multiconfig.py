"""Multi-configuration replay: every SCC size in one pass over a tape.

A sweep row replays the same recorded stream once per rung of the SCC
ladder (:mod:`repro.trace.record`), even though the rungs differ only in
cache capacity.  For bit-selected direct-mapped caches the rungs are not
independent: with power-of-two line counts the set index for size
``2^k`` is a masked prefix of the index for ``2^(k+1)``, which gives the
ladder the classic *inclusion* property of multi-configuration cache
simulation (Mattson's stack techniques and their modern reuse-distance
descendants): **a line resident in the smaller cache is resident in
every larger one**, provided all sizes observe the same access sequence.
A single-process tape guarantees exactly that -- there is no
configuration-dependent interleaving to diverge -- so one pass can keep
per-size tag/state arrays for the whole ladder side by side and answer
most references with *one* tag probe (against the smallest size; a hit
there is a hit everywhere).

The engine in :func:`fused_ladder_results` is exact, not approximate:
every size carries independent timing state (bus occupancy, write
buffers, in-flight fills, icache refill stalls) expressed as a *skew*
against a shared base clock, and events that could perturb a size's
timing (misses, upgrades, live write-buffer or fill windows) are
replayed inline for that size with the same arithmetic as the
interleaver's packed fast path.  The result is bit-identical statistics
to running :class:`~repro.trace.record.ReplayApplication` once per
configuration -- pinned by the equivalence suite -- at roughly the cost
of a single replay.

Exactness notes (why the shortcuts are not approximations):

* *Inclusion*: accesses mapping to a set of the larger cache are a
  subset of those mapping to the corresponding set of the smaller one,
  so the line most recently installed in the small set is also the most
  recent in the large superset slot.  Installs happen at every size
  that misses (a prefix of the ladder), and an eviction at a small size
  never outlives the line's copy at a larger size, so the invariant is
  maintained inductively.
* *State monotonicity*: with one cluster there are no remote
  invalidations, so a line MODIFIED at the smallest resident size is
  MODIFIED at every larger size (the write that dirtied it saw the line
  resident there too, by inclusion).  Under MESI a single cluster never
  produces SHARED (read misses install EXCLUSIVE), and the EXCLUSIVE
  sizes form a contiguous band below the MODIFIED ones.  Hence a write
  whose smallest-size state is MODIFIED is a silent hit at every size.
* *Quiet windows*: a size's timing can deviate from ``base + skew``
  bookkeeping only while it has a live in-flight fill (write misses
  store ``inflight[line] = fetch_done`` with the processor released at
  ``start + 1``) or a live write-buffer entry (``retire > complete``).
  Both windows are tracked per size (``fill_live`` / ``wb_live``); a
  size outside both windows processes hits with zero stall, which is
  exactly what the per-size replay would compute, so the shared-clock
  path handles it without touching per-size state.  Skipped
  write-buffer pushes are provably dead (retire <= now at push time)
  and skipped in-flight lookups provably return stale entries, so
  neither can change a later stall.
* *Single process, ``bank_cycle_time == 1``*: successive references are
  at least one cycle apart, so a bank is always free again by the time
  the next access could reach it -- bank conflicts are structurally
  impossible and the engine skips bank arbitration entirely (the gate
  requires ``bank_cycle_time == 1``).

Applicability is decided by :func:`fused_ladder_supported`: single
process, shared-SCC snoopy machine, direct-mapped power-of-two
geometry, write buffering enabled, and configurations differing *only*
in ``scc_size``.  Everything else falls back to per-size replay in the
sweep driver.  For parallel workloads (several processes, so interleave
order is configuration-dependent) :func:`per_process_miss_surface`
offers the classic approximation instead: each process's tape evaluated
against the whole ladder at once, producing content-only miss counts
with no timing claims.
"""

from __future__ import annotations

from array import array as _qarray_type
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Sequence, Tuple

from .engine import resolve_backend
from .interleave import DeadlockError, SyncProtocolError, fused_replay_ok
from .packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE, OP_ENQUEUE,
                     OP_IFETCH, OP_LOCK_ACQ, OP_LOCK_REL, OP_READ,
                     OP_READ_SPAN, OP_WRITE, OP_WRITE_SPAN)
from ..core.cache import EXCLUSIVE, MODIFIED, SHARED
from ..core.config import SystemConfig
from ..core.system import MultiprocessorSystem

__all__ = ["fused_ladder_supported", "fused_ladder_results",
           "per_process_miss_surface", "MissSurfacePoint"]

#: Engine that executed the most recent fused pass (``"python"`` or
#: ``"native"``).  Diagnostic only -- read by tests and the bench CLI to
#: assert the compiled ladder actually engaged; never an input.
LAST_LADDER_ENGINE = "python"


def _qarray(values) -> "_qarray_type":
    """Signed-64 array from an iterable (tag-array writeback helper)."""
    return _qarray_type("q", values)


def fused_ladder_supported(configs: Sequence[SystemConfig]) -> bool:
    """Whether ``configs`` form a ladder the fused engine replays exactly.

    Requirements: at least two configurations, each individually on the
    fused single-process machine (see
    :func:`repro.trace.interleave.fused_replay_ok`), pairwise distinct
    SCC sizes, and no difference between configurations other than
    ``scc_size`` (timing parameters, protocol, icache geometry and all
    other knobs must match, or the shared clock would be a lie).
    """
    if len(configs) < 2:
        return False
    base = configs[0]
    seen = set()
    for config in configs:
        if config.scc_size in seen:
            return False
        seen.add(config.scc_size)
        if not fused_replay_ok(config):
            return False
        if base.with_updates(scc_size=config.scc_size) != config:
            return False
    return True


def fused_ladder_results(configs: Sequence[SystemConfig],
                         streams: Dict[int, Sequence[int]],
                         check_invariants: bool = True,
                         backend: str = None) -> List:
    """Replay one recorded single-process stream on every configuration.

    ``configs`` must satisfy :func:`fused_ladder_supported` (raises
    ``ValueError`` otherwise); ``streams`` is a recording as produced by
    :class:`~repro.trace.record.StreamRecorder` / loaded from the
    :class:`~repro.trace.record.TraceCache` and must contain exactly
    process 0.  Returns one
    :class:`~repro.simulation.SimulationResult` per configuration, in
    input order, bit-identical to what
    :func:`~repro.simulation.run_simulation` of a
    :class:`~repro.trace.record.ReplayApplication` would produce.

    ``backend`` follows the replay-engine precedence (argument ->
    ``$REPRO_ENGINE`` -> ``auto``): a ``native`` resolution runs the
    pass through the C extension's ladder entry points, degrading to
    the python pass when the extension is missing, disabled via
    ``REPRO_NATIVE=0``, or predates the ladder ABI.  There is no
    vectorized middle tier for the ladder, so a ``numpy`` resolution
    also runs the (scalar) python pass.  The choice is execution-only:
    results are bit-identical across engines and the knob never enters
    spec signatures or cache keys.
    """
    global LAST_LADDER_ENGINE
    from ..simulation import SimulationResult
    if not fused_ladder_supported(configs):
        raise ValueError(
            "configuration ladder is outside the fused replay gate; "
            "use per-size replay")
    if set(streams) != {0}:
        raise ValueError(
            f"recording has processes {sorted(streams)}, "
            f"fused replay needs exactly {{0}}")
    order = sorted(range(len(configs)),
                   key=lambda position: configs[position].scc_size)
    ladder = [configs[position] for position in order]
    systems = [MultiprocessorSystem(config) for config in ladder]
    passed = None
    LAST_LADDER_ENGINE = "python"
    if resolve_backend(backend) == "native":
        passed = _fused_pass_native(ladder, systems, streams[0])
        if passed is not None:
            LAST_LADDER_ENGINE = "native"
    if passed is None:
        passed = _fused_pass(ladder, systems, streams[0])
    events, times = passed
    results: List = [None] * len(configs)
    for rung, position in enumerate(order):
        system = systems[rung]
        if check_invariants:
            system.check_invariants()
        results[position] = SimulationResult(
            config=ladder[rung],
            stats=system.stats(times[rung]),
            events_processed=events,
            instrumentation=None)
    return results


def _fused_pass(ladder: List[SystemConfig],
                systems: List[MultiprocessorSystem],
                data: Sequence[int]) -> Tuple[int, List[int]]:
    """One pass over ``data`` driving all rungs of ``ladder`` at once.

    Mirrors ``TimingInterleaver._run_fast`` semantics per size; the
    shared work (opcode decode, smallest-size tag probe, icache content,
    task queues, locks) happens once.  Flushes statistics into each
    system and returns ``(events_processed, per-size finish times)``.
    """
    config = ladder[0]
    n_sizes = len(ladder)
    size_range = range(n_sizes)

    # ---- per-size machine state, indexed by ascending rung -----------
    s_states: List[list] = []
    s_tags: List[list] = []
    s_mask: List[int] = []
    s_shift: List[int] = []
    inflight: List[dict] = []
    wbufs: List[List[list]] = []
    for system in systems:
        scc = system.clusters[0].scc
        array = scc.array
        s_states.append(array._states)
        s_tags.append(array._tags)
        s_mask.append(array._index_mask)
        s_shift.append(array._tag_shift)
        inflight.append(scc._inflight)
        wbufs.append(scc.interconnect._write_buffers)
    skew = [0] * n_sizes          # time_s = base + skew[s]
    fin = [-1] * n_sizes          # completion of s's last data reference
    folded = [0] * n_sizes        # uref value already folded into fin[s]
    fill_live = [0] * n_sizes     # latest write-miss fill arrival
    wb_live = [0] * n_sizes       # latest write-buffer retire pushed
    hot = [False] * n_sizes       # inside a fill/write-buffer window
    hot_n = 0
    bus_busy = [0] * n_sizes
    bus_tx = [0] * n_sizes
    bus_cyc = [0] * n_sizes
    d_rmiss = [0] * n_sizes
    d_wmiss = [0] * n_sizes
    d_upg = [0] * n_sizes
    d_evict = [0] * n_sizes
    d_wb = [0] * n_sizes
    d_wbuf = [0] * n_sizes
    d_bus_wait = [0] * n_sizes
    d_stall = [0] * n_sizes
    d_ic = [0] * n_sizes

    # ---- shared (size-independent) state -----------------------------
    base = 0                      # shared clock component
    uref = 0                      # base right after the last uniform ref
    ev = 0
    n_reads = 0
    n_writes = 0
    u_busy = 0                    # compute + ifetch + lock busy cycles
    sync_stall = 0
    queues: Dict[int, list] = {}
    held_locks: set = set()

    # ---- scalar configuration ----------------------------------------
    line_shift = config.line_offset_bits
    nbanks = config.num_banks
    occ = config.bus_occupancy
    up_occ = config.upgrade_bus_occupancy
    mem_lat = config.memory_latency
    ic_lat = config.icache_miss_latency
    wb_depth = config.write_buffer_depth
    lock_oh = config.lock_overhead
    barrier_oh = config.barrier_overhead
    install_state = EXCLUSIVE if config.protocol == "mesi" else SHARED
    model_icache = config.model_icache

    # Shared icache: geometry is identical across the ladder and the
    # fetch sequence is configuration-independent, so content, misses
    # and fetch_lines are computed once (timing stays per size).
    if model_icache:
        il_shift = config.icache_line_size.bit_length() - 1
        ic_lines = config.icache_size // config.icache_line_size
        ic_states = [0] * ic_lines
        ic_tags = [0] * ic_lines
        ic_mask = ic_lines - 1
        ic_shift = ic_lines.bit_length() - 1
    else:
        il_shift = ic_shift = ic_mask = 0
        ic_states = ic_tags = []
    ic_misses = 0
    ic_fetch_lines = 0

    # Smallest-size locals: the one tag probe most references need.
    states0 = s_states[0]
    tags0 = s_tags[0]
    mask0 = s_mask[0]
    shift0 = s_shift[0]

    def slow_read(line: int) -> None:
        """Per-size processing for a read that is not uniformly quiet."""
        nonlocal hot_n
        s = 0
        tag = 0
        while s < n_sizes:                      # misses: ladder prefix
            states = s_states[s]
            index = line & s_mask[s]
            tag = line >> s_shift[s]
            if states[index] and s_tags[s][index] == tag:
                break
            sk = skew[s]
            t = base + sk
            if uref > folded[s]:
                f = uref + sk
                if f > fin[s]:
                    fin[s] = f
            folded[s] = uref
            d_rmiss[s] += 1
            grant = bus_busy[s]
            if grant < t:
                grant = t
            bus_busy[s] = grant + occ
            bus_tx[s] += 1
            bus_cyc[s] += occ
            d_bus_wait[s] += grant - t
            done = grant + mem_lat
            old = states[index]
            if old:                             # tag differs: eviction
                d_evict[s] += 1
                if old == MODIFIED:
                    # Write-back acquires the bus right behind the
                    # fetch; nobody waits on it.
                    d_wb[s] += 1
                    bus_busy[s] += occ
                    bus_tx[s] += 1
                    bus_cyc[s] += occ
                infl = inflight[s]
                if infl:
                    infl.pop((s_tags[s][index] << s_shift[s]) | index,
                             None)
            s_tags[s][index] = tag
            states[index] = install_state
            # note_fill skipped: a read-miss fill arrives at ``done``
            # and the processor resumes at ``done + 1``, so the entry
            # would be stale for every later event on this size.
            ret = done + 1
            d_stall[s] += ret - t - 1
            fin[s] = ret
            skew[s] = ret - base - 1
            now_hot = fill_live[s] > ret or wb_live[s] > ret
            if now_hot:
                if not hot[s]:
                    hot[s] = True
                    hot_n += 1
            elif hot[s]:
                hot[s] = False
                hot_n -= 1
            s += 1
        if hot_n:                               # hits inside live windows
            while s < n_sizes:
                if hot[s]:
                    sk = skew[s]
                    t = base + sk
                    if uref > folded[s]:
                        f = uref + sk
                        if f > fin[s]:
                            fin[s] = f
                    folded[s] = uref
                    done = t + 1
                    if fill_live[s] > t:
                        infl = inflight[s]
                        ready = infl.get(line)
                        if ready is not None:
                            if ready <= t:
                                del infl[line]
                            else:
                                done = ready + 1
                    d_stall[s] += done - t - 1
                    fin[s] = done
                    skew[s] = done - base - 1
                    if fill_live[s] <= done and wb_live[s] <= done:
                        hot[s] = False
                        hot_n -= 1
                s += 1
        # Quiet resident sizes complete at time_s + 1 with zero stall:
        # covered by the shared counters and the ``uref`` fold.

    def reserve(s: int, bank: int, now: int, retire: int) -> int:
        """``BankInterconnect.reserve_write_slot`` on rung ``s``."""
        buf = wbufs[s][bank]
        while buf and buf[0] <= now:
            heappop(buf)
        stall = 0
        if len(buf) >= wb_depth:
            oldest = heappop(buf)
            if oldest > now:
                stall = oldest - now
        pushed = retire if retire > now + stall else now + stall
        heappush(buf, pushed)
        if pushed > wb_live[s]:
            wb_live[s] = pushed
        return stall

    def slow_write(line: int, bank: int) -> None:
        """Per-size processing for a write that is not uniformly quiet."""
        nonlocal hot_n
        s = 0
        while s < n_sizes:                      # misses: ladder prefix
            states = s_states[s]
            index = line & s_mask[s]
            tag = line >> s_shift[s]
            if states[index] and s_tags[s][index] == tag:
                break
            sk = skew[s]
            t = base + sk
            if uref > folded[s]:
                f = uref + sk
                if f > fin[s]:
                    fin[s] = f
            folded[s] = uref
            d_wmiss[s] += 1
            grant = bus_busy[s]
            if grant < t:
                grant = t
            bus_busy[s] = grant + occ
            bus_tx[s] += 1
            bus_cyc[s] += occ
            d_bus_wait[s] += grant - t
            fetch_done = grant + mem_lat
            old = states[index]
            if old:
                d_evict[s] += 1
                if old == MODIFIED:
                    d_wb[s] += 1
                    bus_busy[s] += occ
                    bus_tx[s] += 1
                    bus_cyc[s] += occ
                infl = inflight[s]
                if infl:
                    infl.pop((s_tags[s][index] << s_shift[s]) | index,
                             None)
            s_tags[s][index] = tag
            states[index] = MODIFIED
            inflight[s][line] = fetch_done      # live fill window
            if fetch_done > fill_live[s]:
                fill_live[s] = fetch_done
            complete = t + 1
            stall = reserve(s, bank, complete, fetch_done)
            d_wbuf[s] += stall
            done = complete + stall
            d_stall[s] += done - t - 1
            fin[s] = done
            skew[s] = done - base - 1
            now_hot = fill_live[s] > done or wb_live[s] > done
            if now_hot:
                if not hot[s]:
                    hot[s] = True
                    hot_n += 1
            elif hot[s]:
                hot[s] = False
                hot_n -= 1
            s += 1
        while s < n_sizes:                      # resident sizes
            states = s_states[s]
            index = line & s_mask[s]
            state = states[index]
            if state == SHARED:
                # Upgrade broadcast (every size holding the line SHARED
                # pays it, exactly as per-size replay would).
                sk = skew[s]
                t = base + sk
                if uref > folded[s]:
                    f = uref + sk
                    if f > fin[s]:
                        fin[s] = f
                folded[s] = uref
                d_upg[s] += 1
                grant = bus_busy[s]
                if grant < t:
                    grant = t
                bus_busy[s] = grant + up_occ
                bus_tx[s] += 1
                bus_cyc[s] += up_occ
                states[index] = MODIFIED
                complete = t + 1
                stall = reserve(s, bank, complete, grant + up_occ)
                d_wbuf[s] += stall
                done = complete + stall
                d_stall[s] += done - t - 1
                fin[s] = done
                skew[s] = done - base - 1
                now_hot = fill_live[s] > done or wb_live[s] > done
                if now_hot:
                    if not hot[s]:
                        hot[s] = True
                        hot_n += 1
                elif hot[s]:
                    hot[s] = False
                    hot_n -= 1
            else:
                if state != MODIFIED:           # MESI silent E -> M
                    states[index] = MODIFIED
                if hot[s]:
                    sk = skew[s]
                    t = base + sk
                    if uref > folded[s]:
                        f = uref + sk
                        if f > fin[s]:
                            fin[s] = f
                    folded[s] = uref
                    done = t + 1
                    if fill_live[s] > t:
                        infl = inflight[s]
                        ready = infl.get(line)
                        if ready is not None:
                            if ready <= t:
                                del infl[line]
                            else:
                                done = ready + 1
                    if wb_live[s] > done:
                        stall = reserve(s, bank, done, done)
                        d_wbuf[s] += stall
                        done += stall
                    d_stall[s] += done - t - 1
                    fin[s] = done
                    skew[s] = done - base - 1
                    if fill_live[s] <= done and wb_live[s] <= done:
                        hot[s] = False
                        hot_n -= 1
            s += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    i = 0
    end = len(data)
    while i < end:
        op = data[i]
        if op == OP_READ:
            line = data[i + 1] >> line_shift
            i += 2
            ev += 1
            index = line & mask0
            if (hot_n == 0 and states0[index]
                    and tags0[index] == line >> shift0):
                # Resident at the smallest size => resident everywhere
                # (inclusion); no live windows => zero stall everywhere.
                n_reads += 1
                base += 1
                uref = base
                continue
            slow_read(line)
            n_reads += 1
            base += 1
            uref = base
        elif op == OP_IFETCH:
            count = data[i + 2]
            ev += 1
            if not model_icache:
                u_busy += count
                base += count
                i += 3
                continue
            addr = data[i + 1]
            i += 3
            first = addr >> il_shift
            last = (addr + count * 4 - 1) >> il_shift
            ln = first
            while ln <= last:
                ii = ln & ic_mask
                if ic_states[ii] and ic_tags[ii] == ln >> ic_shift:
                    ln += 1
                else:
                    break
            if ln > last:
                # Every line resident: no refills at any size.
                ic_fetch_lines += last - first + 1
                u_busy += count
                base += count
                continue
            misses = 0
            ln = first
            while ln <= last:
                ic_fetch_lines += 1
                ii = ln & ic_mask
                if not (ic_states[ii] and ic_tags[ii] == ln >> ic_shift):
                    ic_tags[ii] = ln >> ic_shift
                    ic_states[ii] = SHARED
                    misses += 1
                ln += 1
            ic_misses += misses
            for s in size_range:
                sk = skew[s]
                t = base + sk
                if uref > folded[s]:
                    f = uref + sk
                    if f > fin[s]:
                        fin[s] = f
                folded[s] = uref
                stall = 0
                busy = bus_busy[s]
                for _ in range(misses):
                    request = t + stall
                    if busy < request:
                        busy = request
                    busy += occ
                    stall = busy - occ + ic_lat - t
                bus_busy[s] = busy
                bus_tx[s] += misses
                bus_cyc[s] += misses * occ
                d_ic[s] += stall
                skew[s] = sk + stall
                t_new = t + count + stall
                now_hot = fill_live[s] > t_new or wb_live[s] > t_new
                if now_hot:
                    if not hot[s]:
                        hot[s] = True
                        hot_n += 1
                elif hot[s]:
                    hot[s] = False
                    hot_n -= 1
            u_busy += count
            base += count
        elif op == OP_WRITE:
            line = data[i + 1] >> line_shift
            i += 2
            ev += 1
            index = line & mask0
            if (hot_n == 0 and states0[index] == MODIFIED
                    and tags0[index] == line >> shift0):
                # MODIFIED at the smallest size => MODIFIED everywhere
                # (monotonicity): silent hit, dead write-buffer push.
                n_writes += 1
                base += 1
                uref = base
                continue
            slow_write(line, line % nbanks)
            n_writes += 1
            base += 1
            uref = base
        elif op == OP_COMPUTE:
            cycles = data[i + 1]
            i += 2
            ev += 1
            if cycles:
                u_busy += cycles
                base += cycles
        elif op == OP_READ_SPAN or op == OP_WRITE_SPAN:
            span_base = data[i + 1]
            size = data[i + 2]
            stride = data[i + 3]
            if size > 0 and stride <= 0:
                # The element loop below would spin forever (the ladder
                # has no cycle limit to bail it out); fail exactly like
                # the decoded replay tiers so the differ sees parity.
                raise ValueError(f"non-positive span stride at {i}")
            i += 4
            is_read = op == OP_READ_SPAN
            offset = 0
            while offset < size:
                ev += 1
                line = (span_base + offset) >> line_shift
                index = line & mask0
                if is_read:
                    if (hot_n == 0 and states0[index]
                            and tags0[index] == line >> shift0):
                        n_reads += 1
                    else:
                        slow_read(line)
                        n_reads += 1
                else:
                    if (hot_n == 0 and states0[index] == MODIFIED
                            and tags0[index] == line >> shift0):
                        n_writes += 1
                    else:
                        slow_write(line, line % nbanks)
                        n_writes += 1
                base += 1
                uref = base
                offset += stride
        elif op == OP_ENQUEUE:
            ev += 1
            queues.setdefault(data[i + 1], []).append(data[i + 2])
            i += 3
        elif op == OP_DEQUEUE:
            ev += 1
            queue = queues.get(data[i + 1])
            if queue:
                # Replay-only: the recorded stream already took the
                # branch the response selected (see repro.trace.packed).
                del queue[0]
            i += 2
        elif op == OP_LOCK_ACQ:
            ev += 1
            lock_id = data[i + 1]
            i += 2
            if lock_id in held_locks:
                raise DeadlockError(
                    f"processes [0] blocked forever "
                    f"(locks={{{lock_id}: 0}})")
            held_locks.add(lock_id)
            u_busy += lock_oh
            base += lock_oh
        elif op == OP_LOCK_REL:
            ev += 1
            lock_id = data[i + 1]
            i += 2
            if lock_id not in held_locks:
                raise SyncProtocolError(
                    f"process 0 released lock {lock_id} "
                    f"it does not hold")
            held_locks.remove(lock_id)
            u_busy += lock_oh
            base += lock_oh
        elif op == OP_BARRIER:
            ev += 1
            count = data[i + 2]
            i += 3
            if count < 1:
                raise SyncProtocolError("barrier count must be >= 1")
            if count > 1:
                raise DeadlockError(
                    "processes [0] blocked forever (locks={})")
            sync_stall += barrier_oh
            base += barrier_oh
        else:
            raise ValueError(f"unknown packed opcode {op} at {i}")

    times = _flush_ladder(
        systems, n_reads=n_reads, n_writes=n_writes, u_busy=u_busy,
        sync_stall=sync_stall, d_rmiss=d_rmiss, d_wmiss=d_wmiss,
        d_upg=d_upg, d_evict=d_evict, d_wb=d_wb, d_wbuf=d_wbuf,
        d_bus_wait=d_bus_wait, d_stall=d_stall, d_ic=d_ic,
        bus_busy=bus_busy, bus_tx=bus_tx, bus_cyc=bus_cyc, base=base,
        uref=uref, skew=skew, fin=fin, folded=folded,
        model_icache=model_icache, ic_misses=ic_misses,
        ic_fetch_lines=ic_fetch_lines, ic_states=ic_states,
        ic_tags=ic_tags)
    return ev, times


def _flush_ladder(systems, *, n_reads, n_writes, u_busy, sync_stall,
                  d_rmiss, d_wmiss, d_upg, d_evict, d_wb, d_wbuf,
                  d_bus_wait, d_stall, d_ic, bus_busy, bus_tx, bus_cyc,
                  base, uref, skew, fin, folded, model_icache,
                  ic_misses, ic_fetch_lines, ic_states,
                  ic_tags) -> List[int]:
    """Flush fused-pass deltas into each system; per-size finish times.

    Mirrors ``_run_fast``'s finally block plus the counters the
    coherence controller would have bumped.  Shared by the python and
    native passes (per-size sequences may be lists or ``array('q')``).
    """
    busy_total = n_reads + n_writes + u_busy
    references = n_reads + n_writes
    n_sizes = len(systems)
    times = [0] * n_sizes
    for s in range(n_sizes):
        system = systems[s]
        scc = system.clusters[0].scc
        sstats = scc.stats
        sstats.reads += n_reads
        sstats.writes += n_writes
        sstats.read_misses += d_rmiss[s]
        sstats.write_misses += d_wmiss[s]
        sstats.upgrades += d_upg[s]
        sstats.evictions += d_evict[s]
        sstats.writebacks += d_wb[s]
        sstats.bus_wait_cycles += d_bus_wait[s]
        sstats.write_buffer_stall_cycles += d_wbuf[s]
        scc.interconnect.write_stall_cycles += d_wbuf[s]
        bus = system.bus
        bus._busy_until = bus_busy[s]
        bus.transactions += bus_tx[s]
        bus.busy_cycles += bus_cyc[s]
        processor = system._procs[0]
        pstats = processor.stats
        pstats.references += references
        pstats.instructions += busy_total
        pstats.busy_cycles += busy_total
        pstats.memory_stall_cycles += d_stall[s]
        pstats.icache_stall_cycles += d_ic[s]
        pstats.sync_stall_cycles += sync_stall
        if uref > folded[s]:
            f = uref + skew[s]
            if f > fin[s]:
                fin[s] = f
        if fin[s] > processor.finish_time:
            processor.finish_time = fin[s]
        if model_icache:
            icache = system.clusters[0].icaches[0]
            icache.misses += ic_misses
            icache.fetch_lines += ic_fetch_lines
            # The icache tag array stores array('q'); slice-assign needs
            # a matching array, not plain python lists.
            if isinstance(ic_states, _qarray_type):
                icache.array._states[:] = ic_states
                icache.array._tags[:] = ic_tags
            else:
                icache.array._states[:] = _qarray(ic_states)
                icache.array._tags[:] = _qarray(ic_tags)
        times[s] = base + skew[s]
    return times


def _fused_pass_native(ladder: List[SystemConfig],
                       systems: List[MultiprocessorSystem],
                       data: Sequence[int]):
    """Run the fused pass through the C extension's ladder entry points.

    Returns ``(events_processed, per-size finish times)`` exactly like
    :func:`_fused_pass`, or ``None`` when the extension is unavailable
    or predates the ladder ABI (callers degrade to the python pass).
    Queue, lock and barrier opcodes are deferred back here (drain status
    2) so their error messages and accounting match the python pass
    byte for byte.
    """
    from .engine import native as _native
    if not _native.ladder_available():
        return None
    native = _native.load()
    config = ladder[0]
    n_sizes = len(ladder)
    per_size = []
    for system in systems:
        scc = system.clusters[0].scc
        array = scc.array
        per_size.append((array._states, array._tags, array._index_mask,
                         array._tag_shift, scc._inflight,
                         scc.interconnect._write_buffers))
    model_icache = config.model_icache
    if model_icache:
        il_shift = config.icache_line_size.bit_length() - 1
        ic_lines = config.icache_size // config.icache_line_size
        ic_states = _qarray(bytes(8 * ic_lines))
        ic_tags = _qarray(bytes(8 * ic_lines))
        ic_mask = ic_lines - 1
        ic_shift = ic_lines.bit_length() - 1
        ic_pair = (ic_states, ic_tags)
    else:
        il_shift = ic_shift = ic_mask = 0
        ic_states = ic_tags = []
        ic_pair = ()
    install_state = EXCLUSIVE if config.protocol == "mesi" else SHARED
    scal = _qarray([
        config.line_offset_bits, config.num_banks, config.bus_occupancy,
        config.upgrade_bus_occupancy, config.memory_latency,
        config.icache_miss_latency, config.write_buffer_depth,
        install_state, 1 if model_icache else 0, il_shift, ic_mask,
        ic_shift])
    zeros = bytes(8 * n_sizes)
    state = tuple(_qarray(zeros) for _ in range(9))
    state[1][:] = _qarray([-1] * n_sizes)           # fin
    (skew, fin, folded, _fill_live, _wb_live, _hot,
     bus_busy, bus_tx, bus_cyc) = state
    deltas = tuple(_qarray(zeros) for _ in range(9))
    (d_rmiss, d_wmiss, d_upg, d_evict, d_wb, d_wbuf,
     d_bus_wait, d_stall, d_ic) = deltas
    regs = _qarray([0] * 10)
    if not (type(data) is _qarray_type and data.typecode == "q"):
        data = _qarray(data)
    plan = (tuple(per_size), scal, state, deltas, ic_pair, regs)
    lock_oh = config.lock_overhead
    barrier_oh = config.barrier_overhead
    sync_stall = 0
    queues: Dict[int, list] = {}
    held_locks: set = set()
    ctx = native.ladder_setup(plan)
    try:
        drain = native.ladder_drain
        while True:
            status = drain(ctx, data)
            if status == 0:
                break
            i = regs[0]
            op = data[i]
            regs[3] += 1                            # ev
            if op == OP_ENQUEUE:
                queues.setdefault(data[i + 1], []).append(data[i + 2])
                i += 3
            elif op == OP_DEQUEUE:
                queue = queues.get(data[i + 1])
                if queue:
                    del queue[0]
                i += 2
            elif op == OP_LOCK_ACQ:
                lock_id = data[i + 1]
                i += 2
                if lock_id in held_locks:
                    raise DeadlockError(
                        f"processes [0] blocked forever "
                        f"(locks={{{lock_id}: 0}})")
                held_locks.add(lock_id)
                regs[6] += lock_oh                  # u_busy
                regs[1] += lock_oh                  # base
            elif op == OP_LOCK_REL:
                lock_id = data[i + 1]
                i += 2
                if lock_id not in held_locks:
                    raise SyncProtocolError(
                        f"process 0 released lock {lock_id} "
                        f"it does not hold")
                held_locks.remove(lock_id)
                regs[6] += lock_oh
                regs[1] += lock_oh
            elif op == OP_BARRIER:
                count = data[i + 2]
                i += 3
                if count < 1:
                    raise SyncProtocolError("barrier count must be >= 1")
                if count > 1:
                    raise DeadlockError(
                        "processes [0] blocked forever (locks={})")
                sync_stall += barrier_oh
                regs[1] += barrier_oh
            else:
                raise ValueError(f"unknown packed opcode {op} at {i}")
            regs[0] = i
    finally:
        native.ladder_release(ctx)
    times = _flush_ladder(
        systems, n_reads=regs[4], n_writes=regs[5], u_busy=regs[6],
        sync_stall=sync_stall, d_rmiss=d_rmiss, d_wmiss=d_wmiss,
        d_upg=d_upg, d_evict=d_evict, d_wb=d_wb, d_wbuf=d_wbuf,
        d_bus_wait=d_bus_wait, d_stall=d_stall, d_ic=d_ic,
        bus_busy=bus_busy, bus_tx=bus_tx, bus_cyc=bus_cyc,
        base=regs[1], uref=regs[2], skew=skew, fin=fin, folded=folded,
        model_icache=model_icache, ic_misses=regs[8],
        ic_fetch_lines=regs[9], ic_states=ic_states, ic_tags=ic_tags)
    return regs[3], times


# ----------------------------------------------------------------------
# Miss-surface mode for parallel workloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MissSurfacePoint:
    """Content-only counts of one (process, SCC size) cell."""

    reads: int
    writes: int
    read_misses: int
    write_misses: int

    @property
    def miss_rate(self) -> float:
        accesses = self.reads + self.writes
        if not accesses:
            return 0.0
        return (self.read_misses + self.write_misses) / accesses


def per_process_miss_surface(
        config: SystemConfig,
        scc_sizes: Iterable[int],
        streams: Dict[int, Sequence[int]],
) -> Dict[int, Dict[int, MissSurfacePoint]]:
    """Approximate miss surface: each process's tape against all sizes.

    For parallel workloads the interleave order depends on the machine,
    so no fused *timing* replay exists; what one pass per process can
    still deliver is the classic multi-configuration content analysis:
    per-process miss counts for every ladder size simultaneously,
    treating each process's references as a private stream (no
    coherence, no contention, no timing).  Useful for scouting a
    working-set knee before spending full simulations on it; never fed
    into :class:`~repro.experiments.runner.RunStats`.

    Returns ``{process: {scc_size: MissSurfacePoint}}``; sizes must be
    powers of two holding more than one ``config.line_size`` line.
    """
    sizes = sorted(set(scc_sizes))
    if not sizes:
        raise ValueError("need at least one SCC size")
    line_size = config.line_size
    geometry = []
    for size in sizes:
        lines = size // line_size
        if lines < 2 or lines & (lines - 1):
            raise ValueError(
                f"scc size {size} is not a power-of-two line count")
        geometry.append((lines - 1, lines.bit_length() - 1))
    line_shift = config.line_offset_bits
    n_sizes = len(sizes)
    surface: Dict[int, Dict[int, MissSurfacePoint]] = {}
    for proc in sorted(streams):
        data = streams[proc]
        tags = [[-1] * (mask + 1) for mask, _ in geometry]
        reads = writes = 0
        rmiss = [0] * n_sizes
        wmiss = [0] * n_sizes
        tags0 = tags[0]
        mask0, shift0 = geometry[0]

        def touch(line: int, is_read: bool) -> None:
            if tags0[line & mask0] == line >> shift0:
                return          # resident at the smallest size: hit all
            for s in range(n_sizes):
                mask, shift = geometry[s]
                slot = tags[s]
                index = line & mask
                tag = line >> shift
                if slot[index] == tag:
                    break       # inclusion: resident above too
                slot[index] = tag
                if is_read:
                    rmiss[s] += 1
                else:
                    wmiss[s] += 1

        i = 0
        end = len(data)
        while i < end:
            op = data[i]
            if op == OP_READ or op == OP_WRITE:
                line = data[i + 1] >> line_shift
                if op == OP_READ:
                    reads += 1
                    touch(line, True)
                else:
                    writes += 1
                    touch(line, False)
                i += 2
            elif op == OP_READ_SPAN or op == OP_WRITE_SPAN:
                span_base = data[i + 1]
                size = data[i + 2]
                stride = data[i + 3]
                is_read = op == OP_READ_SPAN
                for offset in range(0, size, stride):
                    line = (span_base + offset) >> line_shift
                    if is_read:
                        reads += 1
                        touch(line, True)
                    else:
                        writes += 1
                        touch(line, False)
                i += 4
            elif op in (OP_COMPUTE, OP_LOCK_ACQ, OP_LOCK_REL, OP_DEQUEUE):
                i += 2
            elif op in (OP_IFETCH, OP_BARRIER, OP_ENQUEUE):
                i += 3
            else:
                raise ValueError(f"unknown packed opcode {op} at {i}")
        surface[proc] = {
            sizes[s]: MissSurfacePoint(reads=reads, writes=writes,
                                       read_misses=rmiss[s],
                                       write_misses=wmiss[s])
            for s in range(n_sizes)
        }
    return surface
