"""Whole-stream record/replay and the on-disk trace cache.

A sweep (:mod:`repro.experiments.runner`) simulates the same workload on
every rung of the SCC ladder.  When the workload's per-process event
*content* is independent of the machine configuration -- the
:meth:`~repro.workloads.base.TracedApplication.stream_is_deterministic`
guard -- regenerating the stream at every grid point is pure waste: the
octree is rebuilt, the matrix refactored, the RNG re-drawn, only for the
events to come out identical.  This module records each process's full
stream once, in the packed encoding (:mod:`repro.trace.packed`), and
replays it at the other grid points as one
:class:`~repro.trace.packed.PackedChunk` per process -- the workload's
Python never runs again.

Three pieces:

* :class:`StreamRecorder` -- wraps a workload; the wrapped run behaves
  identically (events, timing, statistics) while every event that passes
  through is appended to a per-process packed buffer;
* :class:`ReplayApplication` -- a workload built from recorded streams;
* :class:`TraceCache` -- stores recordings on disk keyed by the
  workload's :meth:`~repro.workloads.base.TracedApplication
  .trace_signature`, so sweeps in later processes (or later sessions)
  skip the recording run too.

Replay validity is the *caller's* contract: a recorded stream replays
bit-identically only on configurations for which
``stream_is_deterministic`` held at record time (the recorded stream
bakes in every data-dependent branch, including task-queue responses --
see the ``OP_DEQUEUE`` note in :mod:`repro.trace.packed`).
"""

from __future__ import annotations

import json
import logging
import os
import struct
from array import array
from pathlib import Path
from typing import Dict, Generator, Optional

_LOG = logging.getLogger(__name__)

from .packed import (PackedChunk, PackedEncodingError, append_event,
                     packed_from_bytes, packed_to_bytes)
from ..core.config import SystemConfig
from ..workloads.base import TracedApplication

__all__ = ["StreamRecorder", "ReplayApplication", "TraceCache",
           "default_trace_cache", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1

_MAGIC = b"RPTC"
_HEADER_STRUCT = struct.Struct(">4sBxxxI")
"""Magic, format version, padding, JSON-header byte length."""


class StreamRecorder(TracedApplication):
    """Transparent recording wrapper around another workload.

    Hand this to :func:`~repro.simulation.run_simulation` in place of the
    workload it wraps: the run is event-for-event identical (responses,
    chunks and all are forwarded both ways), and afterwards
    :attr:`streams` holds every process's full stream in the packed
    encoding -- or ``None`` if some event could not be encoded (e.g. a
    :class:`~repro.trace.events.TaskEnqueue` carrying a non-int item), in
    which case the run itself still completed normally.
    """

    def __init__(self, inner: TracedApplication):
        self.inner = inner
        self.name = f"{inner.name}+record"
        self.packed = inner.packed
        self.failed = False
        self._buffers: Optional[Dict[int, array]] = None

    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        inner = self.inner.processes(config)
        self._buffers = {proc: array("q") for proc in inner}
        return {proc: self._record(generator, self._buffers[proc])
                for proc, generator in inner.items()}

    @property
    def streams(self) -> Optional[Dict[int, array]]:
        """The recording, once the wrapped run has finished."""
        if self.failed or self._buffers is None:
            return None
        return self._buffers

    def _record(self, generator: Generator, buf: array) -> Generator:
        response = None
        while True:
            try:
                event = generator.send(response)
            except StopIteration:
                return
            if not self.failed:
                try:
                    if type(event) is PackedChunk:
                        buf.extend(event.data)
                    else:
                        append_event(buf, event)
                except PackedEncodingError:
                    # Unencodable stream: keep simulating, drop the tape.
                    self.failed = True
            response = yield event


class ReplayApplication(TracedApplication):
    """A workload reconstituted from recorded streams.

    Each process yields its entire recorded stream as a single
    :class:`~repro.trace.packed.PackedChunk`, so replay runs on the
    interleaver's fast path with zero workload Python.
    """

    def __init__(self, streams: Dict[int, array], name: str = "replay"):
        self.streams = dict(streams)
        self.name = f"{name}+replay"

    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        expected = set(range(config.total_processors))
        if set(self.streams) != expected:
            raise ValueError(
                f"recording has processes {sorted(self.streams)}, "
                f"configuration needs {sorted(expected)}")
        return {proc: self._replay(data)
                for proc, data in self.streams.items()}

    @staticmethod
    def _replay(data: array) -> Generator:
        if len(data):
            yield PackedChunk(data)


class TraceCache:
    """One-file-per-recording disk cache.

    The file layout is a fixed header (magic, format version, JSON length)
    followed by a JSON descriptor (the signature it was stored under plus
    each process's stream length in ints) and the streams' raw 64-bit
    data back to back.  Writes go through a per-process temp file and
    ``os.replace`` so concurrent sweep processes never observe a torn
    recording even when racing on the same key.  A corrupt or truncated
    file (the format version lives in the path digest, so whatever is at
    the path *should* parse) is logged once, deleted, and reported as a
    miss, so the next recording run heals the cache; a signature mismatch
    inside a well-formed file is a digest collision and is left alone.
    """

    def __init__(self, directory: Optional[Path] = None):
        if directory is None:
            directory = Path(os.environ.get(
                "REPRO_TRACE_DIR",
                os.path.join(".repro_cache", "traces")))
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._warned_corrupt = False

    def _path(self, signature: str) -> Path:
        import hashlib
        digest = hashlib.sha256(
            f"t{TRACE_FORMAT_VERSION}:{signature}".encode()
        ).hexdigest()[:24]
        return self.directory / f"{digest}.trace"

    def get(self, signature: str) -> Optional[Dict[int, array]]:
        path = self._path(signature)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            magic, version, header_len = _HEADER_STRUCT.unpack_from(raw)
            if magic != _MAGIC or version != TRACE_FORMAT_VERSION:
                # The format version is part of the path digest, so a
                # mismatched header here is damage, not an old file.
                self._discard_corrupt(path, "bad magic or version")
                return None
            offset = _HEADER_STRUCT.size
            header = json.loads(raw[offset:offset + header_len])
            if header.get("signature") != signature:
                return None          # digest collision: treat as a miss
            offset += header_len
            lengths = [(int(proc), int(length))
                       for proc, length in header["streams"]]
            # A truncated payload can still be a whole number of int64s,
            # which ``packed_from_bytes`` would accept -- validate the
            # exact total length before slicing.
            expected = offset + sum(length * 8 for _, length in lengths)
            if len(raw) != expected:
                self._discard_corrupt(
                    path, f"payload is {len(raw)} bytes, "
                          f"descriptor promises {expected}")
                return None
            streams: Dict[int, array] = {}
            for proc, length in lengths:
                nbytes = length * 8
                streams[proc] = packed_from_bytes(
                    raw[offset:offset + nbytes])
                offset += nbytes
            return streams
        except (struct.error, ValueError, KeyError, TypeError,
                json.JSONDecodeError) as exc:
            self._discard_corrupt(path, exc)
            return None

    def _discard_corrupt(self, path: Path, why) -> None:
        """Delete a damaged recording so the next run rewrites it."""
        if not self._warned_corrupt:
            self._warned_corrupt = True
            _LOG.warning("discarding corrupt trace-cache file %s (%s); "
                         "the stream will be re-recorded", path, why)
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, signature: str, streams: Dict[int, array]) -> None:
        order = sorted(streams)
        header = json.dumps({
            "signature": signature,
            "streams": [[proc, len(streams[proc])] for proc in order],
        }).encode()
        path = self._path(signature)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(_HEADER_STRUCT.pack(_MAGIC, TRACE_FORMAT_VERSION,
                                             len(header)))
                fh.write(header)
                for proc in order:
                    fh.write(packed_to_bytes(streams[proc]))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def default_trace_cache() -> TraceCache:
    """Trace cache under the working tree (override: ``REPRO_TRACE_DIR``)."""
    return TraceCache()
