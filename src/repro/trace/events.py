"""Trace event vocabulary for the Tango-Lite-equivalent interleaver.

The paper drives its multiprocessor cache simulator with "properly
interleaved reference events" produced by Tango-Lite, an execution-driven
tracing tool.  In this reproduction every application process is a Python
generator that *yields* the events defined here; the interleaver
(:mod:`repro.trace.interleave`) consumes them in simulated-time order and
feeds memory events to the cache hierarchy.

Two events carry responses back into the generator through ``send()``:

* :class:`TaskDequeue` -- the interleaver sends back the dequeued item (or
  ``None`` when the queue is empty), which is how dynamically scheduled
  workloads such as Cholesky's supernode task queue are expressed.
* :class:`LockAcquire` -- resumes only once the lock is held (the generator
  receives ``None``; blocking is transparent).

All events are small frozen dataclasses so traces can be stored, hashed and
compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

__all__ = [
    "Compute",
    "Read",
    "Write",
    "Ifetch",
    "LockAcquire",
    "LockRelease",
    "Barrier",
    "TaskEnqueue",
    "TaskDequeue",
    "TraceEvent",
    "is_memory_event",
]


@dataclass(frozen=True, slots=True)
class Compute:
    """Execute ``cycles`` of non-memory work on the issuing processor.

    Applications use this to represent the instructions between shared-data
    references; the interleaver simply advances the process's local clock.
    ``cycles`` must be non-negative (zero is allowed and is a no-op).
    """

    cycles: int


@dataclass(frozen=True, slots=True)
class Read:
    """A data load from shared memory at byte address ``addr``."""

    addr: int


@dataclass(frozen=True, slots=True)
class Write:
    """A data store to shared memory at byte address ``addr``."""

    addr: int


@dataclass(frozen=True, slots=True)
class Ifetch:
    """An instruction fetch of ``count`` sequential instructions at ``addr``.

    Emitting one event per instruction would dominate simulation cost, so
    workloads fetch code in basic-block-sized runs; the per-processor
    instruction cache walks the covered lines.
    """

    addr: int
    count: int = 1


@dataclass(frozen=True, slots=True)
class LockAcquire:
    """Acquire the global lock named ``lock_id`` (blocking)."""

    lock_id: int


@dataclass(frozen=True, slots=True)
class LockRelease:
    """Release the global lock named ``lock_id``.

    Releasing a lock that the process does not hold is a protocol error and
    the interleaver raises :class:`repro.trace.interleave.SyncProtocolError`.
    """

    lock_id: int


@dataclass(frozen=True, slots=True)
class Barrier:
    """Wait at barrier ``barrier_id`` until ``count`` processes arrive.

    All arrivals resume at the maximum arrival time (plus a small fixed
    overhead), mirroring the ANL macro BARRIER used by the SPLASH codes.
    """

    barrier_id: int
    count: int


@dataclass(frozen=True, slots=True)
class TaskEnqueue:
    """Append ``item`` to the shared FIFO task queue ``queue_id``."""

    queue_id: int
    item: Any


@dataclass(frozen=True, slots=True)
class TaskDequeue:
    """Pop the head of task queue ``queue_id``.

    The interleaver sends the popped item back into the generator; it sends
    ``None`` when the queue is currently empty (the application decides
    whether to spin, do other work, or finish).
    """

    queue_id: int


TraceEvent = Union[
    Compute,
    Read,
    Write,
    Ifetch,
    LockAcquire,
    LockRelease,
    Barrier,
    TaskEnqueue,
    TaskDequeue,
]

_MEMORY_EVENT_TYPES = (Read, Write, Ifetch)


def is_memory_event(event: TraceEvent) -> bool:
    """Return ``True`` for events serviced by the memory hierarchy."""
    return isinstance(event, _MEMORY_EVENT_TYPES)
