"""Happens-before data-race detection over trace events.

The instrumented workloads mutate genuinely shared Python state under
simulated locks and barriers; a missing synchronization edge would make
their traces (and the paper behaviours derived from them) depend on
scheduling accidents.  :class:`RaceDetector` verifies there is none: it
observes every event the interleaver dispatches and flags conflicting
accesses to the same cache line that are unordered by the program's
synchronization -- the classic happens-before race definition, computed
FastTrack-style with vector clocks per process and last-access epochs
per line.

Synchronization edges:

* lock release -> subsequent acquire of the same lock;
* barrier arrival -> every release from that barrier episode;
* task enqueue -> the dequeue that receives the item (queues hand data
  between processes in Cholesky and the multiprogramming scheduler).

Usage::

    detector = RaceDetector(config.line_size)
    interleaver = TimingInterleaver(system, observer=detector)
    ...
    interleaver.run()
    assert not detector.races

Accesses at line granularity mean *false* sharing is reported too; that
is deliberate -- unsynchronized false sharing still makes simulated
timing scheduling-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Race", "RaceDetector"]


@dataclass(frozen=True)
class Race:
    """One unordered conflicting pair, reported at first detection."""

    line: int
    first_proc: int
    second_proc: int
    kind: str
    """``"write-write"``, ``"read-write"`` or ``"write-read"``."""

    def __str__(self) -> str:
        return (f"{self.kind} race on line {self.line:#x} between "
                f"processes {self.first_proc} and {self.second_proc}")


class _LineState:
    __slots__ = ("write_proc", "write_epoch", "read_epochs")

    def __init__(self) -> None:
        self.write_proc = -1
        self.write_epoch = 0
        self.read_epochs: Dict[int, int] = {}


class RaceDetector:
    """Interleaver observer implementing FastTrack-style race detection."""

    def __init__(self, line_size: int = 16, max_races: int = 32):
        if line_size < 1 or line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        self._shift = line_size.bit_length() - 1
        self.max_races = max_races
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._lock_clocks: Dict[int, Dict[int, int]] = {}
        self._queue_clocks: Dict[int, Dict[int, int]] = {}
        self._barrier_waiting: Dict[int, List[Tuple[int, Dict[int, int]]]] \
            = {}
        self._lines: Dict[int, _LineState] = {}
        self.races: List[Race] = []

    # ------------------------------------------------------------------
    # Vector clock plumbing
    # ------------------------------------------------------------------

    def _clock(self, proc: int) -> Dict[int, int]:
        clock = self._clocks.get(proc)
        if clock is None:
            clock = {proc: 1}
            self._clocks[proc] = clock
        return clock

    @staticmethod
    def _join(into: Dict[int, int], other: Dict[int, int]) -> None:
        for proc, tick in other.items():
            if into.get(proc, 0) < tick:
                into[proc] = tick

    def _tick(self, proc: int) -> None:
        clock = self._clock(proc)
        clock[proc] = clock.get(proc, 0) + 1

    # ------------------------------------------------------------------
    # Observer interface (called by the interleaver)
    # ------------------------------------------------------------------

    def on_access(self, proc: int, addr: int, is_write: bool) -> None:
        """Check a data access against the line's access history."""
        line = addr >> self._shift
        state = self._lines.get(line)
        if state is None:
            state = _LineState()
            self._lines[line] = state
        clock = self._clock(proc)
        epoch = clock[proc]

        # A prior write must be ordered before any access.
        if (state.write_proc >= 0 and state.write_proc != proc
                and clock.get(state.write_proc, 0) < state.write_epoch):
            self._report(line, state.write_proc, proc,
                         "write-write" if is_write else "write-read")
        if is_write:
            # Every prior read must be ordered before a write.
            for reader, read_epoch in state.read_epochs.items():
                if reader != proc and clock.get(reader, 0) < read_epoch:
                    self._report(line, reader, proc, "read-write")
            state.write_proc = proc
            state.write_epoch = epoch
            state.read_epochs = {proc: epoch}
        else:
            state.read_epochs[proc] = epoch

    def on_acquire(self, proc: int, lock_id: int) -> None:
        held = self._lock_clocks.get(lock_id)
        if held:
            self._join(self._clock(proc), held)
        self._tick(proc)

    def on_release(self, proc: int, lock_id: int) -> None:
        clock = self._clock(proc)
        stored = self._lock_clocks.setdefault(lock_id, {})
        self._join(stored, clock)
        self._tick(proc)

    def on_barrier_arrive(self, proc: int, barrier_id: int) -> None:
        # Snapshot the arrival clock: the merge at release must be over
        # what each participant had done *when it arrived*, so arrival
        # and release handling stay symmetric even if a clock is touched
        # between the two callbacks.
        self._barrier_waiting.setdefault(barrier_id, []).append(
            (proc, dict(self._clock(proc))))

    def on_barrier_release(self, barrier_id: int) -> None:
        """All arrivals synchronize with each other: the merged clock of
        every arrival snapshot is joined into every participant."""
        arrivals = self._barrier_waiting.pop(barrier_id, [])
        merged: Dict[int, int] = {}
        for _proc, snapshot in arrivals:
            self._join(merged, snapshot)
        for proc, _snapshot in arrivals:
            self._join(self._clock(proc), merged)
            self._tick(proc)

    def on_enqueue(self, proc: int, queue_id: int) -> None:
        stored = self._queue_clocks.setdefault(queue_id, {})
        self._join(stored, self._clock(proc))
        self._tick(proc)

    def on_dequeue(self, proc: int, queue_id: int,
                   got_item: bool) -> None:
        if got_item:
            held = self._queue_clocks.get(queue_id)
            if held:
                self._join(self._clock(proc), held)
            self._tick(proc)

    # ------------------------------------------------------------------

    def _report(self, line: int, first: int, second: int,
                kind: str) -> None:
        if len(self.races) < self.max_races:
            self.races.append(Race(line=line, first_proc=first,
                                   second_proc=second, kind=kind))
