"""Trace analysis: LRU stack distances, miss-ratio curves, working sets.

The paper reasons about its workloads through their working sets (how
much cache a benchmark "wants" -- the knees in Figures 2-5).  This
module computes those properties directly from any event stream, which
is how the reproduction's synthetic workloads were validated against
their intended footprints:

* :func:`stack_distances` -- the LRU stack distance of every data
  reference (the number of *distinct* lines touched since the previous
  reference to the same line; cold references yield ``None``);
* :func:`miss_ratio_curve` -- miss ratios of fully-associative LRU
  caches of the given sizes, computed in one pass from the distance
  histogram (Mattson's classic inclusion property);
* :func:`working_set_lines` -- the smallest number of hot lines covering
  a target fraction of references.

The stack-distance computation uses the Bennett-Kruskal / Olken
algorithm: a Fenwick tree over reference timestamps marks each line's
most recent occurrence, so every distance query is O(log N).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from .events import Read, TraceEvent, Write

__all__ = ["data_lines", "stack_distances", "miss_ratio_curve",
           "working_set_lines"]


class _Fenwick:
    """Binary indexed tree over reference timestamps."""

    __slots__ = ("_tree",)

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        tree = self._tree
        while index < len(tree):
            tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index)."""
        total = 0
        tree = self._tree
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total


def data_lines(events: Iterable[TraceEvent],
               line_size: int = 16) -> List[int]:
    """The sequence of cache lines touched by data references."""
    if line_size < 1 or line_size & (line_size - 1):
        raise ValueError("line_size must be a power of two")
    shift = line_size.bit_length() - 1
    return [event.addr >> shift for event in events
            if isinstance(event, (Read, Write))]


def stack_distances(events: Iterable[TraceEvent],
                    line_size: int = 16) -> List[Optional[int]]:
    """LRU stack distance per data reference (``None`` for cold).

    Distance 0 means the immediately preceding distinct line was this
    one (a repeat); a reference at distance d hits in any
    fully-associative LRU cache of more than d lines.
    """
    lines = data_lines(events, line_size)
    tree = _Fenwick(len(lines))
    last_position: Dict[int, int] = {}
    distances: List[Optional[int]] = []
    for position, line in enumerate(lines):
        previous = last_position.get(line)
        if previous is None:
            distances.append(None)
        else:
            # Distinct lines touched strictly after the previous access:
            # the count of "most recent occurrence" marks past it.
            marks_before = tree.prefix_sum(previous + 1)
            marks_total = tree.prefix_sum(position)
            distances.append(marks_total - marks_before)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[line] = position
    return distances


def miss_ratio_curve(events: Iterable[TraceEvent],
                     cache_sizes: Sequence[int],
                     line_size: int = 16) -> Dict[int, float]:
    """Miss ratio of fully-associative LRU caches of ``cache_sizes``.

    One trace pass serves every size (LRU's inclusion property): a
    reference misses in a cache of L lines iff its stack distance is at
    least L (or it is cold).
    """
    if not cache_sizes:
        raise ValueError("need at least one cache size")
    distances = stack_distances(events, line_size)
    if not distances:
        raise ValueError("trace contains no data references")
    histogram = Counter(d for d in distances if d is not None)
    cold = sum(1 for d in distances if d is None)
    total = len(distances)
    curve: Dict[int, float] = {}
    for size in sorted(cache_sizes):
        lines = size // line_size
        if lines < 1:
            raise ValueError(f"cache size {size} smaller than a line")
        hits = sum(count for distance, count in histogram.items()
                   if distance < lines)
        curve[size] = (total - hits) / total
    return curve


def working_set_lines(events: Iterable[TraceEvent],
                      fraction: float = 0.9,
                      line_size: int = 16) -> int:
    """Smallest number of hot lines covering ``fraction`` of references.

    The classic 90% working set: sort lines by reference count and take
    the smallest prefix whose references reach the target fraction.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    counts = Counter(data_lines(events, line_size))
    if not counts:
        raise ValueError("trace contains no data references")
    target = fraction * sum(counts.values())
    covered = 0
    for needed, (_, count) in enumerate(counts.most_common(), start=1):
        covered += count
        if covered >= target:
            return needed
    return len(counts)
