"""Trace analysis: LRU stack distances, miss-ratio curves, working sets.

The paper reasons about its workloads through their working sets (how
much cache a benchmark "wants" -- the knees in Figures 2-5).  This
module computes those properties directly from any event stream, which
is how the reproduction's synthetic workloads were validated against
their intended footprints:

* :func:`stack_distances` -- the LRU stack distance of every data
  reference (the number of *distinct* lines touched since the previous
  reference to the same line; cold references yield ``None``);
* :func:`distance_histogram` -- the one-pass reuse summary
  (:class:`DistanceHistogram`) that the miss-ratio curve, the working
  set and the :mod:`repro.model` surrogate all share;
* :func:`miss_ratio_curve` -- miss ratios of fully-associative LRU
  caches of the given sizes, computed from the distance histogram
  (Mattson's classic inclusion property);
* :func:`working_set_lines` -- the smallest number of hot lines covering
  a target fraction of references.

Every entry point accepts either an iterable of
:class:`~repro.trace.events.TraceEvent` objects (which may themselves
include :class:`~repro.trace.packed.PackedChunk` runs) or a packed
stream directly (a ``PackedChunk`` or the raw ``array('q')`` a
:class:`~repro.trace.record.StreamRecorder` produces).  The packed
paths walk opcodes in place, so profiling a cached tape allocates no
event objects.

The stack-distance computation uses the Bennett-Kruskal / Olken
algorithm: a Fenwick tree over reference timestamps marks each line's
most recent occurrence, so every distance query is O(log N).
"""

from __future__ import annotations

from array import array
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .events import Read, TraceEvent, Write
from .packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE, OP_ENQUEUE,
                     OP_IFETCH, OP_LOCK_ACQ, OP_LOCK_REL, OP_READ,
                     OP_READ_SPAN, OP_WRITE, OP_WRITE_SPAN, PackedChunk)

__all__ = ["data_lines", "stack_distances", "distance_histogram",
           "DistanceHistogram", "miss_ratio_curve", "working_set_lines"]

TraceSource = Union[Iterable[TraceEvent], PackedChunk, array]
"""Anything the analyses accept: decoded events (possibly containing
packed chunks), a whole packed chunk, or a raw packed stream."""


class _Fenwick:
    """Binary indexed tree over reference timestamps."""

    __slots__ = ("_tree",)

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        tree = self._tree
        while index < len(tree):
            tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index)."""
        total = 0
        tree = self._tree
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total


def _packed_source(source: TraceSource):
    """The raw packed ints behind ``source``, or ``None`` if it is an
    event iterable."""
    if isinstance(source, PackedChunk):
        return source.data
    if isinstance(source, array) and source.typecode == "q":
        return source
    return None


def _packed_data_lines(data, shift: int, out: List[int]) -> None:
    """Append the data-reference lines of one packed stream to ``out``,
    walking opcodes directly (no event objects)."""
    append = out.append
    index, end = 0, len(data)
    while index < end:
        op = data[index]
        if op == OP_READ or op == OP_WRITE:
            append(data[index + 1] >> shift)
            index += 2
        elif op == OP_READ_SPAN or op == OP_WRITE_SPAN:
            base = data[index + 1]
            size = data[index + 2]
            stride = data[index + 3]
            for offset in range(0, size, stride):
                append((base + offset) >> shift)
            index += 4
        elif op in (OP_COMPUTE, OP_LOCK_ACQ, OP_LOCK_REL, OP_DEQUEUE):
            index += 2
        elif op in (OP_IFETCH, OP_BARRIER, OP_ENQUEUE):
            index += 3
        else:
            raise ValueError(f"unknown packed opcode {op} at word {index}")


def _line_shift(line_size: int) -> int:
    if line_size < 1 or line_size & (line_size - 1):
        raise ValueError("line_size must be a power of two")
    return line_size.bit_length() - 1


def data_lines(events: TraceSource, line_size: int = 16) -> List[int]:
    """The sequence of cache lines touched by data references."""
    shift = _line_shift(line_size)
    packed = _packed_source(events)
    lines: List[int] = []
    if packed is not None:
        _packed_data_lines(packed, shift, lines)
        return lines
    for event in events:
        if isinstance(event, (Read, Write)):
            lines.append(event.addr >> shift)
        elif type(event) is PackedChunk:
            _packed_data_lines(event.data, shift, lines)
    return lines


def _distances_from_lines(lines: Sequence[int]) -> List[Optional[int]]:
    """Bennett-Kruskal / Olken distances over a line sequence."""
    tree = _Fenwick(len(lines))
    last_position: Dict[int, int] = {}
    distances: List[Optional[int]] = []
    for position, line in enumerate(lines):
        previous = last_position.get(line)
        if previous is None:
            distances.append(None)
        else:
            # Distinct lines touched strictly after the previous access:
            # the count of "most recent occurrence" marks past it.
            marks_before = tree.prefix_sum(previous + 1)
            marks_total = tree.prefix_sum(position)
            distances.append(marks_total - marks_before)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[line] = position
    return distances


def stack_distances(events: TraceSource,
                    line_size: int = 16) -> List[Optional[int]]:
    """LRU stack distance per data reference (``None`` for cold).

    Distance 0 means the immediately preceding distinct line was this
    one (a repeat); a reference at distance d hits in any
    fully-associative LRU cache of more than d lines.
    """
    return _distances_from_lines(data_lines(events, line_size))


class DistanceHistogram:
    """One-pass reuse summary of a reference stream.

    Holds the stack-distance histogram, the cold-reference count, and
    the per-line reference counts -- everything
    :func:`miss_ratio_curve`, :func:`working_set_lines` and the
    :mod:`repro.model` analytical surrogate need, computed in a single
    walk over the tape.
    """

    __slots__ = ("histogram", "cold", "line_counts", "total")

    def __init__(self, histogram: Counter, cold: int,
                 line_counts: Counter):
        self.histogram = histogram
        self.cold = cold
        self.line_counts = line_counts
        self.total = cold + sum(histogram.values())

    @classmethod
    def from_lines(cls, lines: Sequence[int]) -> "DistanceHistogram":
        histogram: Counter = Counter()
        cold = 0
        for distance in _distances_from_lines(lines):
            if distance is None:
                cold += 1
            else:
                histogram[distance] += 1
        return cls(histogram, cold, Counter(lines))

    def miss_count(self, lines: int) -> int:
        """Misses of a fully-associative LRU cache of ``lines`` lines."""
        if lines < 1:
            raise ValueError("cache must hold at least one line")
        return self.cold + sum(count for distance, count
                               in self.histogram.items()
                               if distance >= lines)

    def miss_ratio(self, lines: int) -> float:
        if self.total == 0:
            raise ValueError("trace contains no data references")
        return self.miss_count(lines) / self.total

    def working_set_lines(self, fraction: float = 0.9) -> int:
        """Smallest number of hot lines covering ``fraction`` of
        references (the classic 90% working set)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self.line_counts:
            raise ValueError("trace contains no data references")
        target = fraction * self.total
        covered = 0
        for needed, (_, count) in enumerate(
                self.line_counts.most_common(), start=1):
            covered += count
            if covered >= target:
                return needed
        return len(self.line_counts)


def distance_histogram(events: TraceSource,
                       line_size: int = 16) -> DistanceHistogram:
    """Build the reusable :class:`DistanceHistogram` of a stream."""
    return DistanceHistogram.from_lines(data_lines(events, line_size))


def _as_histogram(events, line_size: int) -> DistanceHistogram:
    if isinstance(events, DistanceHistogram):
        return events
    return distance_histogram(events, line_size)


def miss_ratio_curve(events: Union[TraceSource, DistanceHistogram],
                     cache_sizes: Sequence[int],
                     line_size: int = 16) -> Dict[int, float]:
    """Miss ratio of fully-associative LRU caches of ``cache_sizes``.

    One trace pass serves every size (LRU's inclusion property): a
    reference misses in a cache of L lines iff its stack distance is at
    least L (or it is cold).  Pass a pre-built
    :class:`DistanceHistogram` to share that pass with other analyses.
    """
    if not cache_sizes:
        raise ValueError("need at least one cache size")
    histogram = _as_histogram(events, line_size)
    if histogram.total == 0:
        raise ValueError("trace contains no data references")
    curve: Dict[int, float] = {}
    for size in sorted(cache_sizes):
        lines = size // line_size
        if lines < 1:
            raise ValueError(f"cache size {size} smaller than a line")
        curve[size] = histogram.miss_ratio(lines)
    return curve


def working_set_lines(events: Union[TraceSource, DistanceHistogram],
                      fraction: float = 0.9,
                      line_size: int = 16) -> int:
    """Smallest number of hot lines covering ``fraction`` of references.

    Accepts the same sources as :func:`miss_ratio_curve`, including a
    shared :class:`DistanceHistogram`.
    """
    return _as_histogram(events, line_size).working_set_lines(fraction)
