"""Compact binary trace files.

Static event streams (see :mod:`repro.trace.stream`) can be saved to disk
so experiments are reproducible without re-running the workload generator,
and so regression tests can pin exact reference sequences.  The format is a
simple tagged binary encoding:

* header: magic ``b"SCCT"``, format version, event count;
* one record per event: a type tag byte followed by the event's fields as
  little-endian unsigned 64-bit integers.

Only static events are encodable; :class:`~repro.trace.events.TaskEnqueue`
items must be integers for the same reason.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, List, Union

from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskEnqueue, TraceEvent, Write)

__all__ = ["save_trace", "load_trace", "TraceFormatError"]

_MAGIC = b"SCCT"
_VERSION = 1
_HEADER = struct.Struct("<4sHQ")

_TAG_COMPUTE = 0
_TAG_READ = 1
_TAG_WRITE = 2
_TAG_IFETCH = 3
_TAG_LOCK_ACQUIRE = 4
_TAG_LOCK_RELEASE = 5
_TAG_BARRIER = 6
_TAG_TASK_ENQUEUE = 7

_ONE_FIELD = struct.Struct("<BQ")
_TWO_FIELDS = struct.Struct("<BQQ")


class TraceFormatError(ValueError):
    """The file is not a valid trace of a supported version."""


def save_trace(path: Union[str, Path],
               events: Iterable[TraceEvent]) -> int:
    """Write ``events`` to ``path``; returns the number written."""
    records: List[bytes] = []
    for event in events:
        records.append(_encode(event))
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, len(records)))
        handle.write(b"".join(records))
    return len(records)


def load_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size:
        raise TraceFormatError("truncated header")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise TraceFormatError("bad magic; not a trace file")
    if version != _VERSION:
        raise TraceFormatError(f"unsupported trace version {version}")
    events: List[TraceEvent] = []
    offset = _HEADER.size
    for _ in range(count):
        event, offset = _decode(data, offset)
        events.append(event)
    if offset != len(data):
        raise TraceFormatError("trailing bytes after final event")
    return events


def _encode(event: TraceEvent) -> bytes:
    kind = type(event)
    if kind is Compute:
        return _ONE_FIELD.pack(_TAG_COMPUTE, event.cycles)
    if kind is Read:
        return _ONE_FIELD.pack(_TAG_READ, event.addr)
    if kind is Write:
        return _ONE_FIELD.pack(_TAG_WRITE, event.addr)
    if kind is Ifetch:
        return _TWO_FIELDS.pack(_TAG_IFETCH, event.addr, event.count)
    if kind is LockAcquire:
        return _ONE_FIELD.pack(_TAG_LOCK_ACQUIRE, event.lock_id)
    if kind is LockRelease:
        return _ONE_FIELD.pack(_TAG_LOCK_RELEASE, event.lock_id)
    if kind is Barrier:
        return _TWO_FIELDS.pack(_TAG_BARRIER, event.barrier_id, event.count)
    if kind is TaskEnqueue:
        if not isinstance(event.item, int) or event.item < 0:
            raise TraceFormatError(
                "only non-negative integer task items are encodable")
        return _TWO_FIELDS.pack(_TAG_TASK_ENQUEUE, event.queue_id,
                                event.item)
    raise TraceFormatError(f"event {event!r} is not encodable "
                           f"(dynamic streams cannot be saved)")


def _decode(data: bytes, offset: int):
    tag = data[offset]
    if tag in (_TAG_IFETCH, _TAG_BARRIER, _TAG_TASK_ENQUEUE):
        _, first, second = _TWO_FIELDS.unpack_from(data, offset)
        offset += _TWO_FIELDS.size
        if tag == _TAG_IFETCH:
            return Ifetch(first, second), offset
        if tag == _TAG_BARRIER:
            return Barrier(first, second), offset
        return TaskEnqueue(first, second), offset
    _, value = _ONE_FIELD.unpack_from(data, offset)
    offset += _ONE_FIELD.size
    if tag == _TAG_COMPUTE:
        return Compute(value), offset
    if tag == _TAG_READ:
        return Read(value), offset
    if tag == _TAG_WRITE:
        return Write(value), offset
    if tag == _TAG_LOCK_ACQUIRE:
        return LockAcquire(value), offset
    if tag == _TAG_LOCK_RELEASE:
        return LockRelease(value), offset
    raise TraceFormatError(f"unknown event tag {tag}")
