"""Tango-Lite-equivalent tracing substrate.

Event vocabulary (:mod:`~repro.trace.events`), the packed allocation-free
encoding (:mod:`~repro.trace.packed`), the timing-feedback interleaver
(:mod:`~repro.trace.interleave`), whole-stream record/replay and the
trace cache (:mod:`~repro.trace.record`), stream utilities
(:mod:`~repro.trace.stream`) and a binary trace-file format
(:mod:`~repro.trace.tracefile`).
"""

from .analysis import (data_lines, miss_ratio_curve, stack_distances,
                       working_set_lines)
from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskDequeue, TaskEnqueue, TraceEvent, Write,
                     is_memory_event)
from .interleave import DeadlockError, SyncProtocolError, TimingInterleaver
from .packed import (PackedChunk, PackedEncodingError, append_event,
                     decode_events, encode_events, event_count,
                     packed_from_bytes, packed_to_bytes)
from .racecheck import Race, RaceDetector
from .record import (ReplayApplication, StreamRecorder, TraceCache,
                     default_trace_cache)
from .stream import (coalesce_compute, event_histogram, materialize, replay,
                     reference_count)
from .tracefile import TraceFormatError, load_trace, save_trace

__all__ = [
    "Barrier", "Compute", "Ifetch", "LockAcquire", "LockRelease", "Read",
    "TaskDequeue", "TaskEnqueue", "TraceEvent", "Write", "is_memory_event",
    "DeadlockError", "SyncProtocolError", "TimingInterleaver",
    "PackedChunk", "PackedEncodingError", "append_event", "decode_events",
    "encode_events", "event_count", "packed_from_bytes", "packed_to_bytes",
    "ReplayApplication", "StreamRecorder", "TraceCache",
    "default_trace_cache",
    "Race", "RaceDetector",
    "coalesce_compute", "event_histogram", "materialize", "replay",
    "reference_count", "TraceFormatError", "load_trace", "save_trace",
    "data_lines", "miss_ratio_curve", "stack_distances",
    "working_set_lines",
]
