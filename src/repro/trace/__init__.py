"""Tango-Lite-equivalent tracing substrate.

Event vocabulary (:mod:`~repro.trace.events`), the timing-feedback
interleaver (:mod:`~repro.trace.interleave`), stream utilities
(:mod:`~repro.trace.stream`) and a binary trace-file format
(:mod:`~repro.trace.tracefile`).
"""

from .analysis import (data_lines, miss_ratio_curve, stack_distances,
                       working_set_lines)
from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskDequeue, TaskEnqueue, TraceEvent, Write,
                     is_memory_event)
from .interleave import DeadlockError, SyncProtocolError, TimingInterleaver
from .racecheck import Race, RaceDetector
from .stream import (coalesce_compute, event_histogram, materialize, replay,
                     reference_count)
from .tracefile import TraceFormatError, load_trace, save_trace

__all__ = [
    "Barrier", "Compute", "Ifetch", "LockAcquire", "LockRelease", "Read",
    "TaskDequeue", "TaskEnqueue", "TraceEvent", "Write", "is_memory_event",
    "DeadlockError", "SyncProtocolError", "TimingInterleaver",
    "Race", "RaceDetector",
    "coalesce_compute", "event_histogram", "materialize", "replay",
    "reference_count", "TraceFormatError", "load_trace", "save_trace",
    "data_lines", "miss_ratio_curve", "stack_distances",
    "working_set_lines",
]
