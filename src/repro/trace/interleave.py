"""Timing-accurate interleaving of application processes.

Tango-Lite's job in the paper (Section 2.2.2) is "to supply properly
interleaved reference events to a detailed multiprocessor cache simulator".
:class:`TimingInterleaver` is that component.  Every application process is
a generator of :mod:`repro.trace.events`; the interleaver keeps each
process's local clock and always advances the globally *earliest* runnable
process, so the order in which references reach the caches reflects
simulated time -- including the feedback of memory stalls into instruction
interleaving, which is what distinguishes timing-accurate simulation from
fixed-interleave trace replay.

Exactness note: the scheduler lets the earliest process keep running while
its local clock has not passed the next-earliest process's clock.  No other
process can emit an event in that window, so this batching is *exactly*
equivalent to strict global time ordering while avoiding one heap operation
per event.

Synchronization (ANL macro equivalents):

* locks are FIFO-granted; uncontended acquire/release costs
  ``lock_overhead`` busy cycles, contended waiting counts as sync stall;
* barriers release all arrivals at the maximum arrival time plus
  ``barrier_overhead``;
* task queues are shared FIFOs; ``TaskDequeue`` returns ``None`` to the
  generator when empty (workloads spin or retire, their choice).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..core.system import MultiprocessorSystem
from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskDequeue, TaskEnqueue, TraceEvent, Write)

__all__ = ["TimingInterleaver", "DeadlockError", "SyncProtocolError"]

ProcessGenerator = Generator[TraceEvent, Any, None]


class DeadlockError(RuntimeError):
    """All unfinished processes are blocked on synchronization."""


class SyncProtocolError(RuntimeError):
    """A process misused a lock or barrier (e.g. released a lock it does
    not hold)."""


class _Process:
    __slots__ = ("pid", "generator", "time", "response", "blocked",
                 "finished", "block_start", "in_heap")

    def __init__(self, pid: int, generator: ProcessGenerator):
        self.pid = pid
        self.generator = generator
        self.time = 0
        self.response: Any = None
        self.blocked = False
        self.finished = False
        self.block_start = 0
        self.in_heap = False


class _Lock:
    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.waiters: Deque[int] = deque()


class TimingInterleaver:
    """Drives application processes against a memory system."""

    def __init__(self, system: MultiprocessorSystem,
                 lock_overhead: Optional[int] = None,
                 barrier_overhead: Optional[int] = None,
                 observer=None):
        self.system = system
        self.observer = observer
        """Optional event observer (e.g.
        :class:`repro.trace.racecheck.RaceDetector`); receives
        ``on_access``/``on_acquire``/``on_release``/``on_barrier_*``/
        ``on_enqueue``/``on_dequeue`` callbacks as events are granted."""
        config = system.config
        self.lock_overhead = (config.lock_overhead if lock_overhead is None
                              else lock_overhead)
        self.barrier_overhead = (config.barrier_overhead
                                 if barrier_overhead is None
                                 else barrier_overhead)
        self._processes: Dict[int, _Process] = {}
        self._heap: List[Tuple[int, int, int]] = []
        self._seq = 0
        self._locks: Dict[int, _Lock] = {}
        self._barriers: Dict[int, List[int]] = {}
        self._queues: Dict[int, Deque[Any]] = {}
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_process(self, proc_id: int, generator: ProcessGenerator,
                    start_time: int = 0) -> None:
        """Register ``generator`` as the event stream of processor
        ``proc_id`` (a machine-global id known to the system config)."""
        if proc_id in self._processes:
            raise ValueError(f"process {proc_id} already registered")
        if not 0 <= proc_id < self.system.config.total_processors:
            raise ValueError(f"process id {proc_id} outside the machine")
        process = _Process(proc_id, generator)
        process.time = start_time
        self._processes[proc_id] = process
        self._push(process)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Run every process to completion; returns the execution time
        (the cycle the last process finished).

        ``max_cycles`` aborts a runaway simulation with ``RuntimeError``
        (useful in tests) -- it bounds simulated time, not wall time.
        """
        if not self._processes:
            raise RuntimeError("no processes registered")
        finish_time = 0
        while self._heap:
            _time, _, pid = heapq.heappop(self._heap)
            process = self._processes[pid]
            process.in_heap = False
            finish = self._advance(process, max_cycles)
            if finish is not None:
                finish_time = max(finish_time, finish)
        unfinished = [p.pid for p in self._processes.values()
                      if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"processes {unfinished} blocked forever "
                f"(locks={self._lock_summary()})")
        return finish_time

    def _advance(self, process: _Process,
                 max_cycles: Optional[int]) -> Optional[int]:
        """Run ``process`` until it blocks, finishes, or falls behind the
        next-earliest process.  Returns its finish time if it ended."""
        heap = self._heap
        while True:
            if max_cycles is not None and process.time > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles")
            try:
                if process.response is not None:
                    event = process.generator.send(process.response)
                    process.response = None
                else:
                    # next() also serves plain iterators (replayed traces).
                    event = next(process.generator)
            except StopIteration:
                process.finished = True
                return process.time
            self.events_processed += 1
            self._dispatch(process, event)
            if process.blocked:
                return None
            if process.in_heap:
                # The process unblocked itself while handling its own event
                # (it was the releasing arrival of a barrier) and is already
                # scheduled; running on would double-schedule it.
                return None
            if heap and process.time > heap[0][0]:
                self._push(process)
                return None

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _dispatch(self, process: _Process, event: TraceEvent) -> None:
        system = self.system
        pid = process.pid
        if type(event) is Read:
            if self.observer is not None:
                self.observer.on_access(pid, event.addr, False)
            process.time = system.data_access(pid, event.addr, False,
                                              process.time)
        elif type(event) is Write:
            if self.observer is not None:
                self.observer.on_access(pid, event.addr, True)
            process.time = system.data_access(pid, event.addr, True,
                                              process.time)
        elif type(event) is Compute:
            if event.cycles:
                system.account_compute(pid, event.cycles,
                                       now=process.time)
                process.time += event.cycles
        elif type(event) is Ifetch:
            process.time = system.ifetch(pid, event.addr, event.count,
                                         process.time)
        elif type(event) is LockAcquire:
            self._lock_acquire(process, event.lock_id)
        elif type(event) is LockRelease:
            self._lock_release(process, event.lock_id)
        elif type(event) is Barrier:
            self._barrier(process, event.barrier_id, event.count)
        elif type(event) is TaskEnqueue:
            if self.observer is not None:
                self.observer.on_enqueue(pid, event.queue_id)
            self._queues.setdefault(event.queue_id, deque()).append(
                event.item)
        elif type(event) is TaskDequeue:
            queue = self._queues.setdefault(event.queue_id, deque())
            process.response = queue.popleft() if queue else None
            if self.observer is not None:
                self.observer.on_dequeue(pid, event.queue_id,
                                         process.response is not None)
        else:
            raise TypeError(f"process {pid} yielded {event!r}, "
                            f"not a trace event")

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------

    def _lock_acquire(self, process: _Process, lock_id: int) -> None:
        lock = self._locks.setdefault(lock_id, _Lock())
        if lock.holder is None:
            lock.holder = process.pid
            if self.observer is not None:
                self.observer.on_acquire(process.pid, lock_id)
            self.system.account_compute(process.pid, self.lock_overhead,
                                        now=process.time)
            process.time += self.lock_overhead
        else:
            process.blocked = True
            process.block_start = process.time
            lock.waiters.append(process.pid)

    def _lock_release(self, process: _Process, lock_id: int) -> None:
        lock = self._locks.get(lock_id)
        if lock is None or lock.holder != process.pid:
            raise SyncProtocolError(
                f"process {process.pid} released lock {lock_id} "
                f"it does not hold")
        if self.observer is not None:
            self.observer.on_release(process.pid, lock_id)
        self.system.account_compute(process.pid, self.lock_overhead,
                                    now=process.time)
        process.time += self.lock_overhead
        if lock.waiters:
            next_pid = lock.waiters.popleft()
            lock.holder = next_pid
            if self.observer is not None:
                self.observer.on_acquire(next_pid, lock_id)
            self._wake(next_pid, process.time + self.lock_overhead)
        else:
            lock.holder = None

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------

    def _barrier(self, process: _Process, barrier_id: int,
                 count: int) -> None:
        if count < 1:
            raise SyncProtocolError("barrier count must be >= 1")
        waiting = self._barriers.setdefault(barrier_id, [])
        process.blocked = True
        process.block_start = process.time
        waiting.append(process.pid)
        if self.observer is not None:
            self.observer.on_barrier_arrive(process.pid, barrier_id)
        if len(waiting) > count:
            raise SyncProtocolError(
                f"barrier {barrier_id} exceeded its count {count}")
        if len(waiting) == count:
            release = max(self._processes[pid].time for pid in waiting)
            release += self.barrier_overhead
            arrivals = list(waiting)
            waiting.clear()
            if self.observer is not None:
                self.observer.on_barrier_release(barrier_id)
            for pid in arrivals:
                self._wake(pid, release)

    # ------------------------------------------------------------------
    # Scheduling plumbing
    # ------------------------------------------------------------------

    def _wake(self, pid: int, resume_time: int) -> None:
        process = self._processes[pid]
        resume_time = max(resume_time, process.time)
        self.system.account_sync(pid, resume_time - process.block_start,
                                 start=process.block_start)
        process.time = resume_time
        process.blocked = False
        self._push(process)

    def _push(self, process: _Process) -> None:
        if process.in_heap:
            raise RuntimeError(f"process {process.pid} scheduled twice")
        process.in_heap = True
        self._seq += 1
        heapq.heappush(self._heap, (process.time, self._seq, process.pid))

    def _lock_summary(self) -> Dict[int, Optional[int]]:
        return {lock_id: lock.holder
                for lock_id, lock in self._locks.items() if lock.waiters}
