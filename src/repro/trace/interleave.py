"""Timing-accurate interleaving of application processes.

Tango-Lite's job in the paper (Section 2.2.2) is "to supply properly
interleaved reference events to a detailed multiprocessor cache simulator".
:class:`TimingInterleaver` is that component.  Every application process is
a generator of :mod:`repro.trace.events`; the interleaver keeps each
process's local clock and always advances the globally *earliest* runnable
process, so the order in which references reach the caches reflects
simulated time -- including the feedback of memory stalls into instruction
interleaving, which is what distinguishes timing-accurate simulation from
fixed-interleave trace replay.

Exactness note: the scheduler lets the earliest process keep running while
its local clock has not passed the next-earliest process's clock.  No other
process can emit an event in that window, so this batching is *exactly*
equivalent to strict global time ordering while avoiding one heap operation
per event.

Packed fast path: a generator may yield a
:class:`~repro.trace.packed.PackedChunk` of integer-encoded events instead
of individual event objects (see :mod:`repro.trace.packed` for the
validity contract).  Chunks are consumed without resuming the generator or
allocating an event object per reference, with the same per-event
scheduling checks as the object path; on machines with a direct-mapped
power-of-two SCC, the default snoopy protocol, and no observer or probe
attached, the common read-hit/write-hit memory path is additionally
inlined here (statistics are accumulated in flat delta arrays and flushed
once when the run ends, preserving bit-identical totals).

Synchronization (ANL macro equivalents):

* locks are FIFO-granted; uncontended acquire/release costs
  ``lock_overhead`` busy cycles, contended waiting counts as sync stall;
* barriers release all arrivals at the maximum arrival time plus
  ``barrier_overhead``;
* task queues are shared FIFOs; ``TaskDequeue`` returns ``None`` to the
  generator when empty (workloads spin or retire, their choice).
  Enqueueing ``None`` is a protocol error: the empty-queue response could
  not be told apart from the item.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from ..core.cache import DirectMappedArray, MODIFIED
from ..core.coherence import CoherenceController
from ..core.system import MultiprocessorSystem
from ..instrument.probes import NULL_PROBE
from .engine import resolve_backend
from .events import (Barrier, Compute, Ifetch, LockAcquire, LockRelease,
                     Read, TaskDequeue, TaskEnqueue, TraceEvent, Write)
from .packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE, OP_ENQUEUE,
                     OP_IFETCH, OP_LOCK_ACQ, OP_LOCK_REL, OP_READ,
                     OP_READ_SPAN, OP_WRITE, OP_WRITE_SPAN, PackedChunk)

__all__ = ["TimingInterleaver", "DeadlockError", "SyncProtocolError",
           "fused_replay_ok"]

ProcessGenerator = Generator[TraceEvent, Any, None]

_NO_LIMIT = (1 << 63) - 1   # max_cycles sentinel (one int compare per event)


class DeadlockError(RuntimeError):
    """All unfinished processes are blocked on synchronization."""


class SyncProtocolError(RuntimeError):
    """A process misused a lock, barrier, or task queue (e.g. released a
    lock it does not hold, or enqueued ``None``)."""


def fused_replay_ok(config) -> bool:
    """Whether one recorded tape on ``config`` can drive the fused
    multi-configuration engine (:mod:`repro.trace.multiconfig`).

    Stricter than the interleaver's own ``_fast_ok``: the fused engine
    inlines the single-process scheduling loop, so it needs exactly one
    processor (interleave order is then configuration-independent and the
    size-ladder inclusion argument holds), the plain shared-SCC snoopy
    machine, direct-mapped power-of-two geometry, write buffering enabled
    (``stall_on_writes`` changes the write path shape), and
    ``bank_cycle_time == 1`` (a single processor then provably never
    conflicts on a bank, so the engine can skip bank arbitration).
    """
    lines = config.scc_lines
    if not (config.total_processors == 1
            and config.cluster_organization == "shared-scc"
            and config.inter_cluster == "snoopy-bus"
            and config.associativity == 1
            and config.bank_cycle_time == 1
            and not config.stall_on_writes
            and lines > 1 and lines & (lines - 1) == 0):
        return False
    if config.model_icache:
        line = config.icache_line_size
        ic_lines = config.icache_size // line
        if (line < 1 or line & (line - 1)
                or ic_lines < 2 or ic_lines & (ic_lines - 1)):
            return False
    return True


class _Process:
    __slots__ = ("pid", "generator", "time", "response", "blocked",
                 "finished", "block_start", "in_heap", "chunk", "chunk_pos",
                 "chunk_sub")

    def __init__(self, pid: int, generator: ProcessGenerator):
        self.pid = pid
        self.generator = generator
        self.time = 0
        self.response: Any = None
        self.blocked = False
        self.finished = False
        self.block_start = 0
        self.in_heap = False
        # Packed-chunk consumption state: the int sequence being drained,
        # the next position in it, and the byte offset inside a partially
        # drained span opcode.
        self.chunk: Optional[Any] = None
        self.chunk_pos = 0
        self.chunk_sub = 0


class _Lock:
    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.waiters: Deque[int] = deque()


class TimingInterleaver:
    """Drives application processes against a memory system."""

    def __init__(self, system: MultiprocessorSystem,
                 lock_overhead: Optional[int] = None,
                 barrier_overhead: Optional[int] = None,
                 observer=None, force_generic: bool = False,
                 backend: Optional[str] = None):
        self.system = system
        self.observer = observer
        """Optional event observer (e.g.
        :class:`repro.trace.racecheck.RaceDetector`); receives
        ``on_access``/``on_acquire``/``on_release``/``on_barrier_*``/
        ``on_enqueue``/``on_dequeue`` callbacks as events are granted."""
        config = system.config
        self.lock_overhead = (config.lock_overhead if lock_overhead is None
                              else lock_overhead)
        self.barrier_overhead = (config.barrier_overhead
                                 if barrier_overhead is None
                                 else barrier_overhead)
        self._processes: Dict[int, _Process] = {}
        self._heap: List[Tuple[int, int, int]] = []
        self._seq = 0
        self._locks: Dict[int, _Lock] = {}
        self._barriers: Dict[int, List[int]] = {}
        self._queues: Dict[int, Deque[Any]] = {}
        self.events_processed = 0
        # The inline memory fast path is only exact for the plain
        # shared-SCC machine: snoopy MSI/MESI protocol, direct-mapped
        # arrays with a power-of-two line count (mask/shift indexing), no
        # observer and no instrumentation probe.  Everything else drains
        # chunks through the generic per-event dispatch (still without
        # per-event generator resumes or event objects).
        # ``force_generic`` opts out even when the machine qualifies --
        # the differential verifier (repro.verify) uses it to run the
        # same tape through both loops.
        lines = config.scc_lines
        self._fast_ok = (
            not force_generic
            and observer is None
            and type(system) is MultiprocessorSystem
            and type(system.coherence) is CoherenceController
            and system.probe is NULL_PROBE
            and lines & (lines - 1) == 0
            and all(type(cluster.scc.array) is DirectMappedArray
                    for cluster in system.clusters))
        if self._fast_ok:
            self._proc_cluster = [config.cluster_of(p)
                                  for p in range(config.total_processors)]
            self._idx_mask = lines - 1
            self._tag_shift = lines.bit_length() - 1
        # Replay backend for the fast path (repro.trace.engine): an
        # execution knob, never an identity knob -- every backend is
        # fingerprint-identical, so results and cache keys do not depend
        # on it.  ``None`` defers to $REPRO_ENGINE (default ``auto``).
        self.backend_requested = backend
        self.backend = resolve_backend(backend)
        self.engine_used: Optional[str] = None
        """Concrete engine the last :meth:`run` executed on
        (``generic``/``python``/``numpy``/``native``)."""

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_process(self, proc_id: int, generator: ProcessGenerator,
                    start_time: int = 0) -> None:
        """Register ``generator`` as the event stream of processor
        ``proc_id`` (a machine-global id known to the system config)."""
        if proc_id in self._processes:
            raise ValueError(f"process {proc_id} already registered")
        if not 0 <= proc_id < self.system.config.total_processors:
            raise ValueError(f"process id {proc_id} outside the machine")
        process = _Process(proc_id, generator)
        process.time = start_time
        self._processes[proc_id] = process
        self._push(process)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Run every process to completion; returns the execution time
        (the cycle the last process finished).

        ``max_cycles`` aborts a runaway simulation with ``RuntimeError``
        (useful in tests) -- it bounds simulated time, not wall time.
        """
        if not self._processes:
            raise RuntimeError("no processes registered")
        if self._fast_ok:
            backend = self.backend
            if backend == "native":
                from .engine import native as native_backend
                if native_backend.load() is not None:
                    self.engine_used = "native"
                    finish_time = native_backend.run(self, max_cycles)
                else:
                    # The extension disappeared after resolution (e.g.
                    # cache cleared mid-process); degrade like auto.
                    backend = self.backend = resolve_backend("auto")
            if backend == "numpy":
                from .engine import numpy_backend
                self.engine_used = "numpy"
                finish_time = numpy_backend.run(self, max_cycles)
            elif backend == "python":
                self.engine_used = "python"
                finish_time = self._run_fast(max_cycles)
        else:
            self.engine_used = "generic"
            finish_time = self._run_generic(max_cycles)
        unfinished = [p.pid for p in self._processes.values()
                      if not p.finished]
        if unfinished:
            raise DeadlockError(
                f"processes {unfinished} blocked forever "
                f"(locks={self._lock_summary()})")
        return finish_time

    def _run_generic(self, max_cycles: Optional[int]) -> int:
        finish_time = 0
        heap = self._heap
        pop = heapq.heappop
        processes = self._processes
        while heap:
            _time, _, pid = pop(heap)
            process = processes[pid]
            process.in_heap = False
            finish = self._advance(process, max_cycles)
            if finish is not None:
                finish_time = max(finish_time, finish)
        return finish_time

    def _advance(self, process: _Process,
                 max_cycles: Optional[int]) -> Optional[int]:
        """Run ``process`` until it blocks, finishes, or falls behind the
        next-earliest process.  Returns its finish time if it ended.

        On the fast path this only ever runs *object* events: chunks are
        drained by :meth:`_run_fast`, so a freshly yielded chunk is
        installed on the process and control returns to the caller."""
        heap = self._heap
        fast = self._fast_ok
        while True:
            if process.chunk is not None:
                # Only the generic path resumes a partially drained chunk
                # here; _run_fast never enters with one pending.
                if not self._consume_chunk_generic(process, max_cycles):
                    return None
                process.chunk = None
                process.chunk_pos = 0
                process.chunk_sub = 0
            if max_cycles is not None and process.time > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles")
            try:
                if process.response is not None:
                    event = process.generator.send(process.response)
                    process.response = None
                else:
                    # next() also serves plain iterators (replayed traces).
                    event = next(process.generator)
            except StopIteration:
                process.finished = True
                return process.time
            if type(event) is PackedChunk:
                process.chunk = event.data
                process.chunk_pos = 0
                process.chunk_sub = 0
                if fast:
                    return None
                continue
            self.events_processed += 1
            self._dispatch(process, event)
            if process.blocked:
                return None
            if process.in_heap:
                # The process unblocked itself while handling its own event
                # (it was the releasing arrival of a barrier) and is already
                # scheduled; running on would double-schedule it.
                return None
            if heap and process.time > heap[0][0]:
                self._push(process)
                return None

    # ------------------------------------------------------------------
    # Packed-chunk consumption
    # ------------------------------------------------------------------

    def _run_fast(self, max_cycles: Optional[int]) -> int:
        """Scheduler main loop fused with the inline chunk consumer.

        With many processors the scheduler preempts after nearly every
        event, so the cost that matters is the *process switch*, not the
        per-event work.  This loop keeps everything a switch needs in
        locals -- per-cluster tag arrays, bank tables and in-flight maps
        in small lists indexed by cluster id -- and performs the common
        switch (current process preempted by the heap top, next process
        also mid-chunk) with a single ``heappushpop`` and a handful of
        list lookups, never leaving this frame.  Object events (sync
        handshakes, generator resumes) drop out to :meth:`_advance`.

        Per-event semantics -- preemption against the heap top,
        ``max_cycles``, statistics -- are identical to the object path.
        The heap top is cached in ``next_time``: while a chunk drains,
        every other process is suspended, so only this process's own
        pushes and sync handlers can change it, and those points refresh
        the cache.  Statistic deltas accumulate in flat arrays indexed by
        processor/cluster and flush once in the ``finally`` (also on
        abort); nothing reads the affected counters mid-run on the fast
        path (no probe, no observer).
        """
        heap = self._heap
        processes = self._processes
        system = self.system
        config = system.config
        n_cl = config.clusters
        cl_scc = [cluster.scc for cluster in system.clusters]
        cl_states = [scc.array._states for scc in cl_scc]
        cl_tags = [scc.array._tags for scc in cl_scc]
        cl_icn = [scc.interconnect for scc in cl_scc]
        cl_bank_free = [icn._bank_free for icn in cl_icn]
        cl_inflight = [scc._inflight for scc in cl_scc]
        cl_reserve = [icn.reserve_write_slot for icn in cl_icn]
        nbanks = cl_icn[0].num_banks
        bank_cycle = cl_icn[0].bank_cycle_time
        idx_mask = self._idx_mask
        tag_shift = self._tag_shift
        line_shift = config.line_offset_bits
        coherence = system.coherence
        read_miss = coherence.read_miss
        write_line = coherence.write_line
        stall_on_writes = config.stall_on_writes
        proc_cluster = self._proc_cluster
        procs = system._procs
        nproc = config.total_processors
        queues = self._queues
        ifetch = system.ifetch
        # Instruction-fetch inline.  Without an icache the event is pure
        # accounting; with one, the every-line-resident case skips the
        # system call, the per-line method dispatches, and the stats
        # walk, falling back to system.ifetch whenever any line misses
        # (bus refills, installs).  Only power-of-two icache geometries
        # qualify (every paper configuration).
        model_icache = config.model_icache
        ic_objs = None
        iline_shift = 0
        if model_icache:
            iline = config.icache_line_size
            if iline > 0 and iline & (iline - 1) == 0:
                iline_shift = iline.bit_length() - 1
                caches = [system.clusters[proc_cluster[p]]
                          .icaches[config.port_of(p)]
                          for p in range(nproc)]
                if all(ic.array._index_mask for ic in caches):
                    ic_objs = caches
                    ic_states = [ic.array._states for ic in caches]
                    ic_tags = [ic.array._tags for ic in caches]
                    ic_mask = [ic.array._index_mask for ic in caches]
                    ic_shift = [ic.array._tag_shift for ic in caches]
        pop = heapq.heappop
        pushpop = heapq.heappushpop
        advance = self._advance
        limit = _NO_LIMIT if max_cycles is None else max_cycles
        # Statistic deltas (busy == instructions on this path: both grow
        # by 1 per reference and by the cycle count per compute).
        ev = 0
        d_reads = [0] * n_cl
        d_writes = [0] * n_cl
        d_conf = [0] * n_cl
        d_wbuf = [0] * n_cl
        d_refs = [0] * nproc
        d_busy = [0] * nproc
        d_stall = [0] * nproc
        d_finish = [-1] * nproc
        finish_time = 0
        pending = -1    # pid handed over by a preempt switch, not yet run
        try:
            while True:
                if pending >= 0:
                    pid = pending
                    pending = -1
                    process = processes[pid]
                else:
                    if not heap:
                        break
                    pid = pop(heap)[2]
                    process = processes[pid]
                    process.in_heap = False
                if process.chunk is None:
                    finish = advance(process, max_cycles)
                    if finish is not None and finish > finish_time:
                        finish_time = finish
                    if process.chunk is None:
                        continue
                # ---- drain chunks inline, switching processes in-frame --
                data = process.chunk
                i = process.chunk_pos
                sub = process.chunk_sub
                end = len(data)
                time = process.time
                cl = proc_cluster[pid]
                states = cl_states[cl]
                tags = cl_tags[cl]
                bank_free = cl_bank_free[cl]
                inflight = cl_inflight[cl]
                scc = cl_scc[cl]
                reserve = cl_reserve[cl]
                next_time = heap[0][0] if heap else _NO_LIMIT
                while True:
                    yielded = False
                    while i < end:
                        op = data[i]
                        if (op == OP_READ or op == OP_WRITE
                                or op == OP_COMPUTE):
                            if time > limit:
                                raise RuntimeError(
                                    f"simulation exceeded {max_cycles} "
                                    f"cycles")
                            operand = data[i + 1]
                            i += 2
                            ev += 1
                            if op == OP_COMPUTE:
                                if operand:
                                    d_busy[pid] += operand
                                    time += operand
                                    if time > next_time:
                                        yielded = True
                                        break
                                continue
                            line = operand >> line_shift
                            bank = line % nbanks
                            free = bank_free[bank]
                            if free > time:
                                d_conf[cl] += free - time
                                start = free
                            else:
                                start = time
                            bank_free[bank] = start + bank_cycle
                            idx = line & idx_mask
                            if op == OP_READ:
                                if (states[idx]
                                        and tags[idx] == line >> tag_shift):
                                    d_reads[cl] += 1
                                    if inflight:
                                        ready = inflight.get(line)
                                        if ready is None:
                                            done = start + 1
                                        elif ready <= start:
                                            del inflight[line]
                                            done = start + 1
                                        else:
                                            done = ready + 1
                                    else:
                                        done = start + 1
                                else:
                                    done = read_miss(scc, line, start)
                            else:
                                if (states[idx] >= MODIFIED
                                        and tags[idx] == line >> tag_shift):
                                    # MODIFIED write hit (or the MESI
                                    # silent EXCLUSIVE -> MODIFIED
                                    # upgrade): no bus.
                                    states[idx] = MODIFIED
                                    d_writes[cl] += 1
                                    if inflight:
                                        ready = inflight.get(line)
                                        if ready is None:
                                            done = start + 1
                                        elif ready <= start:
                                            del inflight[line]
                                            done = start + 1
                                        else:
                                            done = ready + 1
                                    else:
                                        done = start + 1
                                    if not stall_on_writes:
                                        stall = reserve(bank, done, done)
                                        d_wbuf[cl] += stall
                                        done += stall
                                else:
                                    outcome = write_line(scc, line, start)
                                    done = outcome.complete
                                    if stall_on_writes:
                                        if outcome.retire > done:
                                            done = outcome.retire
                                    else:
                                        stall = reserve(bank, done,
                                                        outcome.retire)
                                        d_wbuf[cl] += stall
                                        done += stall
                            d_refs[pid] += 1
                            d_busy[pid] += 1
                            d_stall[pid] += done - time - 1
                            d_finish[pid] = done
                            time = done
                            if time > next_time:
                                yielded = True
                                break
                        elif op == OP_READ_SPAN or op == OP_WRITE_SPAN:
                            base = data[i + 1]
                            size = data[i + 2]
                            stride = data[i + 3]
                            offset = sub
                            sub = 0
                            preempted = False
                            is_read = op == OP_READ_SPAN
                            while offset < size:
                                if time > limit:
                                    raise RuntimeError(
                                        f"simulation exceeded {max_cycles}"
                                        f" cycles")
                                ev += 1
                                line = (base + offset) >> line_shift
                                bank = line % nbanks
                                free = bank_free[bank]
                                if free > time:
                                    d_conf[cl] += free - time
                                    start = free
                                else:
                                    start = time
                                bank_free[bank] = start + bank_cycle
                                idx = line & idx_mask
                                if is_read:
                                    if (states[idx] and tags[idx]
                                            == line >> tag_shift):
                                        d_reads[cl] += 1
                                        if inflight:
                                            ready = inflight.get(line)
                                            if ready is None:
                                                done = start + 1
                                            elif ready <= start:
                                                del inflight[line]
                                                done = start + 1
                                            else:
                                                done = ready + 1
                                        else:
                                            done = start + 1
                                    else:
                                        done = read_miss(scc, line, start)
                                else:
                                    if (states[idx] >= MODIFIED
                                            and tags[idx]
                                            == line >> tag_shift):
                                        states[idx] = MODIFIED
                                        d_writes[cl] += 1
                                        if inflight:
                                            ready = inflight.get(line)
                                            if ready is None:
                                                done = start + 1
                                            elif ready <= start:
                                                del inflight[line]
                                                done = start + 1
                                            else:
                                                done = ready + 1
                                        else:
                                            done = start + 1
                                        if not stall_on_writes:
                                            stall = reserve(bank, done,
                                                            done)
                                            d_wbuf[cl] += stall
                                            done += stall
                                    else:
                                        outcome = write_line(scc, line,
                                                             start)
                                        done = outcome.complete
                                        if stall_on_writes:
                                            if outcome.retire > done:
                                                done = outcome.retire
                                        else:
                                            stall = reserve(bank, done,
                                                            outcome.retire)
                                            d_wbuf[cl] += stall
                                            done += stall
                                d_refs[pid] += 1
                                d_busy[pid] += 1
                                d_stall[pid] += done - time - 1
                                d_finish[pid] = done
                                time = done
                                offset += stride
                                if time > next_time:
                                    preempted = True
                                    break
                            if offset >= size:
                                i += 4
                            else:
                                sub = offset
                            if preempted:
                                yielded = True
                                break
                        elif op == OP_IFETCH:
                            if time > limit:
                                raise RuntimeError(
                                    f"simulation exceeded {max_cycles} "
                                    f"cycles")
                            ev += 1
                            count = data[i + 2]
                            if not model_icache:
                                # account_ifetch(count, 0) inline.
                                d_busy[pid] += count
                                time += count
                            elif ic_objs is not None:
                                addr = data[i + 1]
                                iline_no = addr >> iline_shift
                                ilast = (addr + count * 4
                                         - 1) >> iline_shift
                                istates = ic_states[pid]
                                itags = ic_tags[pid]
                                imask = ic_mask[pid]
                                ishift = ic_shift[pid]
                                while iline_no <= ilast:
                                    idxi = iline_no & imask
                                    if (istates[idxi] and itags[idxi]
                                            == iline_no >> ishift):
                                        iline_no += 1
                                    else:
                                        break
                                if iline_no > ilast:
                                    # Every line resident: no installs,
                                    # no bus, no refill stall.
                                    ic_objs[pid].fetch_lines += (
                                        ilast - (addr >> iline_shift) + 1)
                                    d_busy[pid] += count
                                    time += count
                                else:
                                    time = ifetch(pid, addr, count, time)
                            else:
                                time = ifetch(pid, data[i + 1], count,
                                              time)
                            i += 3
                            if time > next_time:
                                yielded = True
                                break
                        elif op == OP_ENQUEUE:
                            if time > limit:
                                raise RuntimeError(
                                    f"simulation exceeded {max_cycles} "
                                    f"cycles")
                            ev += 1
                            queues.setdefault(data[i + 1],
                                              deque()).append(data[i + 2])
                            i += 3
                        elif op == OP_DEQUEUE:
                            if time > limit:
                                raise RuntimeError(
                                    f"simulation exceeded {max_cycles} "
                                    f"cycles")
                            ev += 1
                            # Replay-only (see repro.trace.packed): the
                            # recorded stream already took the branch, so
                            # the item is popped and discarded.
                            queue = queues.get(data[i + 1])
                            if queue:
                                queue.popleft()
                            i += 2
                        else:
                            # Synchronization opcode: run the object-path
                            # handler (rare relative to memory events).
                            if time > limit:
                                raise RuntimeError(
                                    f"simulation exceeded {max_cycles} "
                                    f"cycles")
                            ev += 1
                            process.time = time
                            if op == OP_LOCK_ACQ:
                                self._lock_acquire(process, data[i + 1])
                                i += 2
                            elif op == OP_LOCK_REL:
                                self._lock_release(process, data[i + 1])
                                i += 2
                            elif op == OP_BARRIER:
                                self._barrier(process, data[i + 1],
                                              data[i + 2])
                                i += 3
                            else:
                                raise ValueError(
                                    f"unknown packed opcode {op} at {i}")
                            time = process.time
                            if process.blocked or process.in_heap:
                                yielded = True
                                break
                            # The handler may have pushed woken processes.
                            next_time = heap[0][0] if heap else _NO_LIMIT
                            if time > next_time:
                                yielded = True
                                break
                    if not yielded:
                        # Chunk exhausted: resume the generator; it may
                        # hand back another chunk for the same process.
                        process.time = time
                        process.chunk = None
                        process.chunk_pos = 0
                        process.chunk_sub = 0
                        finish = advance(process, max_cycles)
                        if finish is not None:
                            if finish > finish_time:
                                finish_time = finish
                            break
                        if process.chunk is None:
                            break   # blocked, rescheduled, or finished
                        data = process.chunk
                        i = 0
                        sub = 0
                        end = len(data)
                        time = process.time
                        next_time = heap[0][0] if heap else _NO_LIMIT
                        continue
                    process.time = time
                    process.chunk_pos = i
                    process.chunk_sub = sub
                    if process.blocked or process.in_heap:
                        break
                    # Preempted by the heap top.  Because time exceeds the
                    # cached top, the pushed entry cannot be the one that
                    # comes back out, so push-and-pop fuse into one sift.
                    self._seq += 1
                    process.in_heap = True
                    npid = pushpop(heap, (time, self._seq, pid))[2]
                    process = processes[npid]
                    process.in_heap = False
                    if process.chunk is None:
                        pending = npid
                        break   # object path runs through the outer loop
                    pid = npid
                    data = process.chunk
                    i = process.chunk_pos
                    sub = process.chunk_sub
                    end = len(data)
                    time = process.time
                    cl = proc_cluster[pid]
                    states = cl_states[cl]
                    tags = cl_tags[cl]
                    bank_free = cl_bank_free[cl]
                    inflight = cl_inflight[cl]
                    scc = cl_scc[cl]
                    reserve = cl_reserve[cl]
                    next_time = heap[0][0] if heap else _NO_LIMIT
        finally:
            self.events_processed += ev
            for c in range(n_cl):
                sstats = cl_scc[c].stats
                if d_reads[c]:
                    sstats.reads += d_reads[c]
                if d_writes[c]:
                    sstats.writes += d_writes[c]
                if d_conf[c]:
                    sstats.bank_conflict_cycles += d_conf[c]
                    cl_icn[c].conflict_cycles += d_conf[c]
                if d_wbuf[c]:
                    sstats.write_buffer_stall_cycles += d_wbuf[c]
            for p in range(nproc):
                refs = d_refs[p]
                busy = d_busy[p]
                if refs or busy:
                    pstats = procs[p].stats
                    pstats.references += refs
                    pstats.instructions += busy
                    pstats.busy_cycles += busy
                    pstats.memory_stall_cycles += d_stall[p]
                if d_finish[p] > procs[p].finish_time:
                    # Reference completions are monotonic per processor,
                    # so "time of the last reference" is a max -- and max
                    # does not go stale if a process's final references
                    # came through the object path after its last chunk.
                    procs[p].finish_time = d_finish[p]
        return finish_time

    def _consume_chunk_generic(self, process: _Process,
                               max_cycles: Optional[int]) -> bool:
        """Drain ``process.chunk`` through the per-event dispatch.

        Used whenever the inline fast path is not exact (observer or
        probe attached, set-associative or non-power-of-two arrays,
        directory transport, private-cache organization).  Still avoids
        the per-event generator resume and, for spans, most event-object
        allocations' framing overhead.
        """
        data = process.chunk
        i = process.chunk_pos
        sub = process.chunk_sub
        end = len(data)
        heap = self._heap
        dispatch = self._dispatch
        while i < end:
            if max_cycles is not None and process.time > max_cycles:
                process.chunk_pos = i
                process.chunk_sub = sub
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles")
            op = data[i]
            if op == OP_READ_SPAN or op == OP_WRITE_SPAN:
                base = data[i + 1]
                size = data[i + 2]
                stride = data[i + 3]
                cls = Read if op == OP_READ_SPAN else Write
                offset = sub
                sub = 0
                preempted = False
                while offset < size:
                    if (max_cycles is not None
                            and process.time > max_cycles):
                        process.chunk_pos = i
                        process.chunk_sub = offset
                        raise RuntimeError(
                            f"simulation exceeded {max_cycles} cycles")
                    self.events_processed += 1
                    dispatch(process, cls(base + offset))
                    offset += stride
                    if heap and process.time > heap[0][0]:
                        preempted = True
                        break
                if offset >= size:
                    i += 4
                else:
                    sub = offset
                if preempted:
                    process.chunk_pos = i
                    process.chunk_sub = sub
                    self._push(process)
                    return False
                continue
            if op == OP_READ:
                event: TraceEvent = Read(data[i + 1])
                i += 2
            elif op == OP_WRITE:
                event = Write(data[i + 1])
                i += 2
            elif op == OP_COMPUTE:
                event = Compute(data[i + 1])
                i += 2
            elif op == OP_IFETCH:
                event = Ifetch(data[i + 1], data[i + 2])
                i += 3
            elif op == OP_LOCK_ACQ:
                event = LockAcquire(data[i + 1])
                i += 2
            elif op == OP_LOCK_REL:
                event = LockRelease(data[i + 1])
                i += 2
            elif op == OP_BARRIER:
                event = Barrier(data[i + 1], data[i + 2])
                i += 3
            elif op == OP_ENQUEUE:
                event = TaskEnqueue(data[i + 1], data[i + 2])
                i += 3
            elif op == OP_DEQUEUE:
                # Replay-only: pop and discard (the recorded stream
                # already contains the branch the response selected).
                self.events_processed += 1
                queue = self._queues.get(data[i + 1])
                item = queue.popleft() if queue else None
                if self.observer is not None:
                    self.observer.on_dequeue(process.pid, data[i + 1],
                                             item is not None)
                i += 2
                continue
            else:
                raise ValueError(f"unknown packed opcode {op} at {i}")
            self.events_processed += 1
            dispatch(process, event)
            if process.blocked or process.in_heap:
                process.chunk_pos = i
                process.chunk_sub = 0
                return False
            if heap and process.time > heap[0][0]:
                process.chunk_pos = i
                process.chunk_sub = 0
                self._push(process)
                return False
        return True

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _dispatch(self, process: _Process, event: TraceEvent) -> None:
        system = self.system
        pid = process.pid
        if type(event) is Read:
            if self.observer is not None:
                self.observer.on_access(pid, event.addr, False)
            process.time = system.data_access(pid, event.addr, False,
                                              process.time)
        elif type(event) is Write:
            if self.observer is not None:
                self.observer.on_access(pid, event.addr, True)
            process.time = system.data_access(pid, event.addr, True,
                                              process.time)
        elif type(event) is Compute:
            if event.cycles:
                system.account_compute(pid, event.cycles,
                                       now=process.time)
                process.time += event.cycles
        elif type(event) is Ifetch:
            process.time = system.ifetch(pid, event.addr, event.count,
                                         process.time)
        elif type(event) is LockAcquire:
            self._lock_acquire(process, event.lock_id)
        elif type(event) is LockRelease:
            self._lock_release(process, event.lock_id)
        elif type(event) is Barrier:
            self._barrier(process, event.barrier_id, event.count)
        elif type(event) is TaskEnqueue:
            if event.item is None:
                # An enqueued None would be indistinguishable from the
                # empty-queue dequeue response.
                raise SyncProtocolError(
                    f"process {pid} enqueued None on queue "
                    f"{event.queue_id}; None is the empty-queue response")
            if self.observer is not None:
                self.observer.on_enqueue(pid, event.queue_id)
            self._queues.setdefault(event.queue_id, deque()).append(
                event.item)
        elif type(event) is TaskDequeue:
            # Look up before defaulting: polls on a missing queue must not
            # allocate a fresh deque per poll.
            queue = self._queues.get(event.queue_id)
            process.response = queue.popleft() if queue else None
            if self.observer is not None:
                self.observer.on_dequeue(pid, event.queue_id,
                                         process.response is not None)
        else:
            raise TypeError(f"process {pid} yielded {event!r}, "
                            f"not a trace event")

    # ------------------------------------------------------------------
    # Locks
    # ------------------------------------------------------------------

    def _lock_acquire(self, process: _Process, lock_id: int) -> None:
        lock = self._locks.setdefault(lock_id, _Lock())
        if lock.holder is None:
            lock.holder = process.pid
            if self.observer is not None:
                self.observer.on_acquire(process.pid, lock_id)
            self.system.account_compute(process.pid, self.lock_overhead,
                                        now=process.time)
            process.time += self.lock_overhead
        else:
            process.blocked = True
            process.block_start = process.time
            lock.waiters.append(process.pid)

    def _lock_release(self, process: _Process, lock_id: int) -> None:
        lock = self._locks.get(lock_id)
        if lock is None or lock.holder != process.pid:
            raise SyncProtocolError(
                f"process {process.pid} released lock {lock_id} "
                f"it does not hold")
        if self.observer is not None:
            self.observer.on_release(process.pid, lock_id)
        self.system.account_compute(process.pid, self.lock_overhead,
                                    now=process.time)
        process.time += self.lock_overhead
        if lock.waiters:
            next_pid = lock.waiters.popleft()
            lock.holder = next_pid
            if self.observer is not None:
                self.observer.on_acquire(next_pid, lock_id)
            self._wake(next_pid, process.time + self.lock_overhead)
        else:
            lock.holder = None

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------

    def _barrier(self, process: _Process, barrier_id: int,
                 count: int) -> None:
        if count < 1:
            raise SyncProtocolError("barrier count must be >= 1")
        waiting = self._barriers.setdefault(barrier_id, [])
        process.blocked = True
        process.block_start = process.time
        waiting.append(process.pid)
        if self.observer is not None:
            self.observer.on_barrier_arrive(process.pid, barrier_id)
        if len(waiting) > count:
            raise SyncProtocolError(
                f"barrier {barrier_id} exceeded its count {count}")
        if len(waiting) == count:
            release = max(self._processes[pid].time for pid in waiting)
            release += self.barrier_overhead
            arrivals = list(waiting)
            waiting.clear()
            if self.observer is not None:
                self.observer.on_barrier_release(barrier_id)
            for pid in arrivals:
                self._wake(pid, release)

    # ------------------------------------------------------------------
    # Scheduling plumbing
    # ------------------------------------------------------------------

    def _wake(self, pid: int, resume_time: int) -> None:
        process = self._processes[pid]
        resume_time = max(resume_time, process.time)
        self.system.account_sync(pid, resume_time - process.block_start,
                                 start=process.block_start)
        process.time = resume_time
        process.blocked = False
        self._push(process)

    def _push(self, process: _Process) -> None:
        if process.in_heap:
            raise RuntimeError(f"process {process.pid} scheduled twice")
        process.in_heap = True
        self._seq += 1
        heapq.heappush(self._heap, (process.time, self._seq, process.pid))

    def _lock_summary(self) -> Dict[int, Optional[int]]:
        return {lock_id: lock.holder
                for lock_id, lock in self._locks.items() if lock.waiters}
