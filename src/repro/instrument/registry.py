"""Named metrics: counters and timelines gathered during one run.

:class:`MetricsRegistry` is the container the probe writes into and
everything downstream reads out of: the ``profile`` CLI renders its
timelines, :mod:`repro.instrument.chrometrace` exports them, and
:mod:`repro.experiments.runner` persists :meth:`MetricsRegistry.summary`
alongside each cached :class:`~repro.experiments.runner.RunStats`.

Naming convention (dots group related series, mirroring the machine's
topology):

* ``bus.occupancy`` -- inter-cluster bus busy cycles per bin;
* ``cluster<c>.bank<b>.conflict`` -- per-bank conflict-wait cycles;
* ``cluster<c>.write_buffer`` -- high-water write-buffer depth;
* ``proc<p>.busy`` / ``proc<p>.memory`` / ``proc<p>.sync`` -- the
  per-processor cycle breakdown of Figure 2's discussion.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .timeline import Timeline

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Lazily-created named counters and timelines."""

    __slots__ = ("bin_width", "counters", "timelines")

    def __init__(self, bin_width: int = 1024):
        if bin_width < 1:
            raise ValueError("bin_width must be >= 1")
        self.bin_width = bin_width
        self.counters: Dict[str, float] = {}
        self.timelines: Dict[str, Timeline] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def timeline(self, name: str, mode: str = "sum") -> Timeline:
        """The named timeline, created on first use."""
        timeline = self.timelines.get(name)
        if timeline is None:
            timeline = Timeline(self.bin_width, mode=mode)
            self.timelines[name] = timeline
        return timeline

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter_group(self, prefix: str) -> Dict[str, float]:
        """Counters under ``prefix.``, keyed by the remainder of the
        name -- e.g. ``counter_group("session.points")`` is the sweep
        orchestrator's live progress (``done``/``cached``/``retried``/
        ``quarantined``...), the payload progress UIs poll."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {name[len(dotted):]: value
                for name, value in sorted(self.counters.items())
                if name.startswith(dotted)}

    def matching(self, prefix: str) -> List[Tuple[str, Timeline]]:
        """Timelines whose name starts with ``prefix``, sorted by name."""
        return sorted((name, tl) for name, tl in self.timelines.items()
                      if name.startswith(prefix))

    def merged(self, prefix: str, n_bins: int = 0) -> Timeline:
        """Element-wise combination of every timeline under ``prefix``.

        ``sum`` timelines add; ``max`` timelines take the maximum --
        e.g. ``merged("cluster0.bank")`` is cluster 0's total conflict
        series and ``merged("cluster")`` (over ``write_buffer`` names)
        the machine-wide buffer high-water.  ``n_bins`` optionally
        re-bins the result.
        """
        parts = self.matching(prefix)
        if not parts:
            return Timeline(self.bin_width)
        mode = parts[0][1].mode
        merged = Timeline(self.bin_width, mode=mode)
        combine = max if mode == "max" else float.__add__
        for _name, timeline in parts:
            merged._grow_to(max(0, len(timeline.bins) - 1))
            for index, value in enumerate(timeline.bins):
                merged.bins[index] = combine(merged.bins[index], value)
        return merged.rebinned(n_bins) if n_bins else merged

    def rebin_all(self, n_bins: int) -> None:
        """Collapse every timeline to at most ``n_bins`` bins, in place."""
        for name, timeline in self.timelines.items():
            self.timelines[name] = timeline.rebinned(n_bins)

    def summary(self) -> Dict[str, float]:
        """Flat JSON-safe digest: all counters plus headline timeline
        statistics (peak/mean bus utilization, total conflict cycles,
        write-buffer high-water) -- the payload persisted with cached
        sweep results."""
        digest: Dict[str, float] = dict(self.counters)
        bus = self.timelines.get("bus.occupancy")
        if bus is not None:
            digest["bus_peak_utilization"] = (
                bus.peak() / bus.bin_width if bus.bin_width else 0.0)
            digest["bus_mean_utilization"] = (
                bus.mean() / bus.bin_width if bus.bin_width else 0.0)
        conflict = [tl for name, tl in self.timelines.items()
                    if ".bank" in name and name.endswith(".conflict")]
        if conflict:
            digest["bank_conflict_cycles"] = sum(
                tl.total() for tl in conflict)
        depth = [tl for name, tl in self.timelines.items()
                 if name.endswith(".write_buffer")]
        if depth:
            digest["write_buffer_peak_depth"] = max(
                tl.peak() for tl in depth)
        return digest

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Full JSON-safe dump (counters and every timeline)."""
        return {
            "bin_width": self.bin_width,
            "counters": dict(self.counters),
            "timelines": {name: timeline.as_dict()
                          for name, timeline in self.timelines.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        registry = cls(int(data["bin_width"]))
        registry.counters = dict(data["counters"])
        registry.timelines = {
            name: Timeline.from_dict(payload)
            for name, payload in data["timelines"].items()}
        return registry
