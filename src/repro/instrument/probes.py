"""Probe API: what the simulator's hot paths emit events into.

Design contract (this is the zero-overhead-when-disabled rule):

* every instrumented component holds a ``probe`` attribute, defaulting
  to the module-level :data:`NULL_PROBE` singleton;
* hot loops guard each emission with ``if probe is not NULL_PROBE`` --
  one attribute load and one identity test, no call, when profiling is
  off (measured < 1% on the quick Barnes-Hut run);
* the probe is duck-typed: anything implementing the ``NullProbe``
  method surface can be plugged in, and :class:`InstrumentationProbe`
  is the standard implementation that feeds a
  :class:`~repro.instrument.registry.MetricsRegistry` and a bounded
  :class:`~repro.instrument.sampling.EventLog`.

Event vocabulary (one method per hardware phenomenon):

=================  ====================================================
``bus_acquire``    a :class:`~repro.core.bus.SnoopyBus` grant
``bank_access``    one SCC bank claim (conflict wait included)
``write_buffer``   a store entering a bank's write buffer
``cache_access``   tag-check outcome of one data reference
``invalidation``   remote copies killed by one write
``proc_busy``      straight-line execution span of one processor
``proc_stall``     a memory/sync/icache stall span of one processor
=================  ====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .registry import MetricsRegistry
from .sampling import EventLog
from .timeline import Timeline

__all__ = ["NullProbe", "NULL_PROBE", "InstrumentationProbe"]


class NullProbe:
    """The do-nothing probe every component starts with.

    Kept callable (not just a sentinel) so code outside the guarded hot
    loops may emit unconditionally; each method is a no-op.
    """

    enabled = False

    def bus_acquire(self, bus: str, now: int, start: int,
                    occupancy: int) -> None:
        pass

    def bank_access(self, cluster: int, bank: int, now: int, start: int,
                    wait: int) -> None:
        pass

    def write_buffer(self, cluster: int, bank: int, now: int, depth: int,
                     stall: int) -> None:
        pass

    def cache_access(self, cluster: int, line: int, is_write: bool,
                     hit: bool, start: int, complete: int) -> None:
        pass

    def invalidation(self, cluster: int, line: int, copies: int,
                     now: int) -> None:
        pass

    def proc_busy(self, proc: int, start: int, cycles: int) -> None:
        pass

    def proc_stall(self, proc: int, kind: str, start: int,
                   end: int) -> None:
        pass


NULL_PROBE = NullProbe()
"""Shared no-op probe; hot paths compare against it by identity."""


class InstrumentationProbe(NullProbe):
    """Collects probe events into timelines, counters, and an event log.

    ``bin_width`` sets timeline resolution in cycles.  ``record_events``
    keeps raw event records (bounded by ``max_events`` via deterministic
    decimation) for slice-level Chrome-trace export; disable it for
    cheap summary-only instrumentation (what sweep caching uses).
    """

    enabled = True

    def __init__(self, bin_width: int = 1024, record_events: bool = True,
                 max_events: int = 100_000):
        self.registry = MetricsRegistry(bin_width)
        self.events: Optional[EventLog] = (
            EventLog(max_events) if record_events else None)
        self.execution_time = 0
        # Per-id timeline handles, cached so the enabled hot path pays a
        # tuple-keyed dict hit instead of a string format per event.
        self._bus_occupancy = self.registry.timeline("bus.occupancy")
        self._bus_wait = self.registry.timeline("bus.wait")
        self._bus_invalidations = self.registry.timeline("bus.invalidations")
        self._bank_conflict: Dict[Tuple[int, int], Timeline] = {}
        self._wb_depth: Dict[int, Timeline] = {}
        self._proc_tl: Dict[Tuple[int, str], Timeline] = {}

    # ------------------------------------------------------------------
    # Probe callbacks
    # ------------------------------------------------------------------

    def bus_acquire(self, bus: str, now: int, start: int,
                    occupancy: int) -> None:
        self._bus_occupancy.add_span(start, start + occupancy)
        if start > now:
            self._bus_wait.add_span(now, start)
        registry = self.registry
        registry.count("bus_transactions")
        registry.count("bus_busy_cycles", occupancy)
        registry.count("bus_wait_cycles", start - now)
        if self.events is not None:
            self.events.append(("bus", start, occupancy, start - now, bus))

    def bank_access(self, cluster: int, bank: int, now: int, start: int,
                    wait: int) -> None:
        self.registry.count("bank_accesses")
        if not wait:
            return
        key = (cluster, bank)
        timeline = self._bank_conflict.get(key)
        if timeline is None:
            timeline = self.registry.timeline(
                f"cluster{cluster}.bank{bank}.conflict")
            self._bank_conflict[key] = timeline
        timeline.add_span(now, start)
        self.registry.count("bank_conflict_events")
        if self.events is not None:
            self.events.append(("bank", now, wait, cluster, bank))

    def write_buffer(self, cluster: int, bank: int, now: int, depth: int,
                     stall: int) -> None:
        timeline = self._wb_depth.get(cluster)
        if timeline is None:
            timeline = self.registry.timeline(
                f"cluster{cluster}.write_buffer", mode="max")
            self._wb_depth[cluster] = timeline
        timeline.add_sample(now, depth)
        if stall:
            self.registry.count("write_buffer_stalls")
            self.registry.count("write_buffer_stall_cycles", stall)
            if self.events is not None:
                self.events.append(("wb", now, stall, cluster, bank, depth))

    def cache_access(self, cluster: int, line: int, is_write: bool,
                     hit: bool, start: int, complete: int) -> None:
        registry = self.registry
        if hit:
            registry.count("cache_hits")
            return
        registry.count("cache_misses")
        if self.events is not None:
            self.events.append(("miss", start, complete - start, cluster,
                                line, is_write))

    def invalidation(self, cluster: int, line: int, copies: int,
                     now: int) -> None:
        if not copies:
            return
        self.registry.count("invalidations", copies)
        self._bus_invalidations.add_at(now, copies)
        if self.events is not None:
            self.events.append(("inval", now, 0, cluster, line, copies))

    def proc_busy(self, proc: int, start: int, cycles: int) -> None:
        if cycles:
            self._proc_timeline(proc, "busy").add_span(start, start + cycles)

    def proc_stall(self, proc: int, kind: str, start: int,
                   end: int) -> None:
        if end <= start:
            return
        self._proc_timeline(proc, kind).add_span(start, end)
        if self.events is not None:
            self.events.append(("proc", start, end - start, proc, kind))

    def _proc_timeline(self, proc: int, kind: str) -> Timeline:
        key = (proc, kind)
        timeline = self._proc_tl.get(key)
        if timeline is None:
            timeline = self.registry.timeline(f"proc{proc}.{kind}")
            self._proc_tl[key] = timeline
        return timeline

    # ------------------------------------------------------------------
    # Post-run API
    # ------------------------------------------------------------------

    def finalize(self, execution_time: int) -> None:
        """Stamp the run's horizon (called by ``run_simulation``)."""
        self.execution_time = execution_time
        self.registry.count("execution_time", execution_time)

    def rebin(self, n_bins: int) -> None:
        """Collapse all timelines to at most ``n_bins`` bins."""
        self.registry.rebin_all(n_bins)
        # Cached handles went stale; re-resolve lazily on next use.
        self._bus_occupancy = self.registry.timeline("bus.occupancy")
        self._bus_wait = self.registry.timeline("bus.wait")
        self._bus_invalidations = self.registry.timeline("bus.invalidations")
        self._bank_conflict.clear()
        self._wb_depth.clear()
        self._proc_tl.clear()

    def bus_utilization(self) -> List[float]:
        """Per-bin inter-cluster bus occupancy as a 0..1 fraction."""
        return self._resolved_bus().utilization_series()

    def peak_bus_utilization(self) -> float:
        """Highest per-bin bus occupancy fraction over the run."""
        timeline = self._resolved_bus()
        return timeline.peak() / timeline.bin_width

    def _resolved_bus(self) -> Timeline:
        return self.registry.timeline("bus.occupancy")

    def summary(self) -> Dict[str, float]:
        """Flat JSON-safe digest (what sweep caches persist)."""
        digest = self.registry.summary()
        digest["execution_time"] = self.execution_time
        if self.events is not None:
            digest["events_recorded"] = len(self.events)
            digest["events_dropped"] = self.events.dropped
        return digest
