"""Cycle-level observability for the shared-cache multiprocessor.

The simulator's end-of-run aggregates (:mod:`repro.core.stats`) say *how
much* time went to bank conflicts or bus waits, never *when*.  This
package adds the temporal axis:

* :mod:`~repro.instrument.probes` -- the zero-overhead-when-disabled
  probe API the core hot paths emit into (``NULL_PROBE`` by default);
* :mod:`~repro.instrument.timeline` -- interval-binned series (bus
  occupancy, per-bank conflicts, write-buffer depth, per-processor
  busy/memory/sync breakdown);
* :mod:`~repro.instrument.registry` -- the named-metrics container a
  :class:`~repro.simulation.SimulationResult` carries and the sweep
  cache persists;
* :mod:`~repro.instrument.sampling` -- bounded deterministic retention
  of raw events;
* :mod:`~repro.instrument.chrometrace` -- Chrome-trace/Perfetto JSON
  export (open any run in ``ui.perfetto.dev``).

Quick start::

    from repro import KB, SystemConfig, run_simulation
    from repro.instrument import InstrumentationProbe, write_chrome_trace
    from repro.workloads import MP3D

    probe = InstrumentationProbe(bin_width=512)
    config = SystemConfig.paper_parallel(8, 4 * KB)
    result = run_simulation(config, MP3D(n_particles=600, steps=3),
                            instrumentation=probe)
    print(probe.peak_bus_utilization())
    write_chrome_trace(probe, "mp3d.json", config=config)

Or, without writing Python::

    python -m repro profile mp3d --procs 8 --scc 4KB --trace-out mp3d.json
"""

from .chrometrace import (BUS_PID, SCC_TID, bank_tid, chrome_trace,
                          cluster_pid, proc_tid, write_chrome_trace)
from .probes import NULL_PROBE, InstrumentationProbe, NullProbe
from .registry import MetricsRegistry
from .sampling import EventLog
from .timeline import Timeline

__all__ = [
    "NULL_PROBE", "NullProbe", "InstrumentationProbe",
    "MetricsRegistry", "Timeline", "EventLog",
    "chrome_trace", "write_chrome_trace",
    "BUS_PID", "SCC_TID", "bank_tid", "cluster_pid", "proc_tid",
]
