"""Bounded, deterministic retention of raw instrumentation events.

A profiled MP3D run emits hundreds of thousands of probe events; keeping
them all would swamp memory and produce Perfetto traces too large to
load.  :class:`EventLog` caps retention with *adaptive decimation*:
while under the cap every event is kept, and each time the log fills it
drops every second retained event and doubles its sampling stride, so
the survivors stay uniformly spread over the whole run.  The scheme is
deterministic (no RNG), which keeps traces reproducible across runs and
lets tests assert on exact contents.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["EventLog"]

Event = Tuple  # (kind, ts, *payload) -- kind str first, timestamp second.


class EventLog:
    """Append-only event store with a hard size cap.

    ``append`` is the hot-path entry point: one counter increment plus,
    for retained events, one list append.  ``stride`` starts at 1 (keep
    everything) and doubles whenever the log reaches ``capacity``.
    """

    __slots__ = ("capacity", "stride", "_counter", "_events", "offered")

    def __init__(self, capacity: int = 100_000):
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self.stride = 1
        self._counter = 0
        self._events: List[Event] = []
        self.offered = 0
        """Total events offered, retained or not (for drop reporting)."""

    def append(self, event: Event) -> None:
        """Offer one event; retained if it lands on the current stride."""
        self.offered += 1
        count = self._counter
        self._counter = count + 1
        if count % self.stride:
            return
        events = self._events
        events.append(event)
        if len(events) >= self.capacity:
            # Halve the population and double the stride: survivors
            # remain an even sample of everything offered so far.
            del events[1::2]
            self.stride *= 2

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events offered but not retained."""
        return self.offered - len(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All retained events whose first field equals ``kind``."""
        return [event for event in self._events if event[0] == kind]
