"""Chrome-trace (Perfetto) JSON export of an instrumented run.

Any simulation run with an :class:`~repro.instrument.probes.
InstrumentationProbe` can be opened in ``ui.perfetto.dev`` (or
``chrome://tracing``): :func:`chrome_trace` converts the probe's event
log and timelines into the Trace Event Format's ``traceEvents`` array.
Simulated cycles map one-to-one onto the format's microsecond ``ts``
axis, so "1 ms" in the UI reads as 1000 processor cycles.

``pid``/``tid`` mapping (one Perfetto "process" per hardware box)::

    pid 1              the inter-cluster snoopy bus
        tid 1          granted transactions (X slices)
    pid 10 + c         cluster c
        tid 1 + b      SCC bank b (conflict instants)
        tid 90         SCC miss stream (instants, args carry latency)
        tid 100 + port processor slices (busy / memory / sync stalls)

Counter tracks ("C" events) carry the binned timelines: bus utilization
(0..1), per-cluster bank-conflict cycles, and write-buffer high-water
depth.  Counters are re-binned to at most ``max_counter_bins`` points so
a long run cannot bloat the file.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["BUS_PID", "cluster_pid", "bank_tid", "proc_tid", "SCC_TID",
           "chrome_trace", "write_chrome_trace"]

BUS_PID = 1
"""Perfetto pid of the inter-cluster bus pseudo-process."""

SCC_TID = 90
"""Thread id carrying a cluster's cache-miss instant stream."""

_BUS_TID = 1
_CLUSTER_TIMELINE = re.compile(r"cluster(\d+)\.")


def cluster_pid(cluster: int) -> int:
    """Perfetto pid for one cluster."""
    return 10 + cluster

def bank_tid(bank: int) -> int:
    """Thread id for one SCC bank inside its cluster's pid."""
    return 1 + bank

def proc_tid(port: int) -> int:
    """Thread id for one processor (cluster-local port number)."""
    return 100 + port


def chrome_trace(probe, config=None,
                 max_counter_bins: int = 1000) -> Dict[str, object]:
    """Render ``probe`` as a Trace-Event-Format dict.

    ``config`` (a :class:`~repro.core.config.SystemConfig`) maps global
    processor ids onto their cluster's pid; without it each processor
    gets a standalone pid of ``1000 + proc``.  The returned dict is
    ``json.dumps``-ready and lists ``traceEvents`` in non-decreasing
    ``ts`` order (Perfetto does not require this, but it makes the file
    diffable and lets tests assert monotonicity).
    """
    events: List[Dict[str, object]] = []
    meta: List[Dict[str, object]] = []

    def name_process(pid: int, name: str, sort: int) -> None:
        meta.append({"ph": "M", "pid": pid, "name": "process_name",
                     "args": {"name": name}})
        meta.append({"ph": "M", "pid": pid, "name": "process_sort_index",
                     "args": {"sort_index": sort}})

    def name_thread(pid: int, tid: int, name: str) -> None:
        meta.append({"ph": "M", "pid": pid, "tid": tid,
                     "name": "thread_name", "args": {"name": name}})

    def pid_tid_of_proc(proc: int):
        if config is None:
            return 1000 + proc, proc_tid(0)
        return (cluster_pid(config.cluster_of(proc)),
                proc_tid(config.port_of(proc)))

    name_process(BUS_PID, "inter-cluster bus", 0)
    name_thread(BUS_PID, _BUS_TID, "transactions")
    named_pids = {BUS_PID}
    named_threads = set()

    def ensure_cluster(cluster: int) -> int:
        pid = cluster_pid(cluster)
        if pid not in named_pids:
            named_pids.add(pid)
            name_process(pid, f"cluster {cluster}", 1 + cluster)
        return pid

    # -- slice and instant events from the raw log ---------------------
    if probe.events is not None:
        for event in probe.events:
            kind, ts = event[0], event[1]
            if kind == "bus":
                _kind, start, occupancy, wait, bus = event
                events.append({"ph": "X", "pid": BUS_PID, "tid": _BUS_TID,
                               "ts": start, "dur": occupancy,
                               "name": "transaction", "cat": "bus",
                               "args": {"wait": wait, "bus": bus}})
            elif kind == "bank":
                _kind, now, wait, cluster, bank = event
                pid = ensure_cluster(cluster)
                tid = bank_tid(bank)
                if (pid, tid) not in named_threads:
                    named_threads.add((pid, tid))
                    name_thread(pid, tid, f"bank {bank}")
                events.append({"ph": "i", "pid": pid, "tid": tid,
                               "ts": now, "s": "t",
                               "name": "bank conflict", "cat": "bank",
                               "args": {"wait": wait}})
            elif kind == "wb":
                _kind, now, stall, cluster, bank, depth = event
                pid = ensure_cluster(cluster)
                events.append({"ph": "i", "pid": pid, "tid": SCC_TID,
                               "ts": now, "s": "t",
                               "name": "write-buffer stall", "cat": "scc",
                               "args": {"stall": stall, "bank": bank,
                                        "depth": depth}})
            elif kind == "miss":
                _kind, start, latency, cluster, line, is_write = event
                pid = ensure_cluster(cluster)
                if (pid, SCC_TID) not in named_threads:
                    named_threads.add((pid, SCC_TID))
                    name_thread(pid, SCC_TID, "scc misses")
                events.append({"ph": "i", "pid": pid, "tid": SCC_TID,
                               "ts": start, "s": "t",
                               "name": "write miss" if is_write
                               else "read miss", "cat": "scc",
                               "args": {"line": line, "latency": latency}})
            elif kind == "inval":
                _kind, now, _dur, cluster, line, copies = event
                events.append({"ph": "i", "pid": BUS_PID, "tid": _BUS_TID,
                               "ts": now, "s": "p",
                               "name": "invalidation", "cat": "bus",
                               "args": {"from_cluster": cluster,
                                        "line": line, "copies": copies}})
            elif kind == "proc":
                _kind, start, dur, proc, stall_kind = event
                pid, tid = pid_tid_of_proc(proc)
                if config is not None:
                    ensure_cluster(config.cluster_of(proc))
                elif pid not in named_pids:
                    named_pids.add(pid)
                    name_process(pid, f"processor {proc}", 100 + proc)
                if (pid, tid) not in named_threads:
                    named_threads.add((pid, tid))
                    name_thread(pid, tid, f"proc {proc}")
                events.append({"ph": "X", "pid": pid, "tid": tid,
                               "ts": start, "dur": dur, "name": stall_kind,
                               "cat": "proc"})

    # -- counter tracks from the binned timelines ----------------------
    def emit_counter(pid: int, name: str, timeline, value_name: str,
                     scale: float = 1.0) -> None:
        compact = timeline.rebinned(max_counter_bins)
        width = compact.bin_width
        for index, value in enumerate(compact.bins):
            events.append({"ph": "C", "pid": pid, "tid": 0,
                           "ts": index * width, "name": name,
                           "args": {value_name: value * scale}})

    registry = probe.registry
    bus_timeline = registry.timelines.get("bus.occupancy")
    if bus_timeline is not None and bus_timeline.bins:
        compact = bus_timeline.rebinned(max_counter_bins)
        for index, value in enumerate(compact.bins):
            events.append({"ph": "C", "pid": BUS_PID, "tid": 0,
                           "ts": index * compact.bin_width,
                           "name": "bus utilization",
                           "args": {"fraction": value / compact.bin_width}})
    clusters = sorted({int(match.group(1))
                       for name in registry.timelines
                       for match in [_CLUSTER_TIMELINE.match(name)]
                       if match})
    for cluster in clusters:
        pid = ensure_cluster(cluster)
        conflict = registry.merged(f"cluster{cluster}.bank")
        if conflict.bins:
            emit_counter(pid, "bank conflict cycles", conflict, "cycles")
        depth = registry.timelines.get(f"cluster{cluster}.write_buffer")
        if depth is not None and depth.bins:
            emit_counter(pid, "write-buffer depth", depth, "entries")

    events.sort(key=lambda event: event.get("ts", 0))
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.instrument",
            "execution_time_cycles": probe.execution_time,
            "time_unit": "1 trace us = 1 simulated cycle",
        },
    }


def write_chrome_trace(probe, path, config=None,
                       max_counter_bins: int = 1000) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    payload = chrome_trace(probe, config=config,
                           max_counter_bins=max_counter_bins)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, separators=(",", ":")))
    return path
