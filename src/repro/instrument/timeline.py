"""Interval-binned utilization timelines.

The paper's headline phenomena -- SCC bank contention (Section 2.2.2)
and bus saturation under invalidation-heavy MP3D traffic (Section
3.1.2) -- are *temporal*: a configuration that looks fine on end-of-run
averages may spend its whole slowdown inside a few saturated phases.
:class:`Timeline` turns a stream of timestamped spans or samples into a
fixed-width binned series cheap enough to maintain during simulation
and small enough to export whole.

Bins grow on demand (the simulated horizon is unknown until the run
ends) and can be re-binned afterwards to a target bin count for display
or export (:meth:`Timeline.rebinned`).
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["Timeline"]


class Timeline:
    """One binned series over simulated time.

    ``mode`` selects how values combine within a bin:

    * ``"sum"`` -- totals (busy cycles, conflict cycles); spans added
      with :meth:`add_span` are split proportionally across the bins
      they overlap, so a bin's value never exceeds ``bin_width`` times
      the number of concurrent contributors.
    * ``"max"`` -- high-water marks (write-buffer depth); samples added
      with :meth:`add_sample` keep the largest value seen per bin.
    """

    __slots__ = ("bin_width", "mode", "bins")

    def __init__(self, bin_width: int, mode: str = "sum"):
        if bin_width < 1:
            raise ValueError("bin_width must be >= 1")
        if mode not in ("sum", "max"):
            raise ValueError("mode must be 'sum' or 'max'")
        self.bin_width = bin_width
        self.mode = mode
        self.bins: List[float] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _grow_to(self, index: int) -> None:
        bins = self.bins
        if index >= len(bins):
            bins.extend([0.0] * (index + 1 - len(bins)))

    def add_span(self, start: int, end: int, weight: float = 1.0) -> None:
        """Accumulate ``weight`` per cycle over ``[start, end)``.

        The span's mass is split across every bin it overlaps, so a
        4-cycle bus occupancy straddling a bin boundary contributes to
        both bins in proportion.
        """
        if end <= start:
            return
        width = self.bin_width
        first = start // width
        last = (end - 1) // width
        self._grow_to(last)
        bins = self.bins
        if first == last:
            bins[first] += (end - start) * weight
            return
        bins[first] += ((first + 1) * width - start) * weight
        for index in range(first + 1, last):
            bins[index] += width * weight
        bins[last] += (end - last * width) * weight

    def add_at(self, t: int, value: float) -> None:
        """Accumulate ``value`` into the bin containing cycle ``t``."""
        index = t // self.bin_width
        self._grow_to(index)
        self.bins[index] += value

    def add_sample(self, t: int, value: float) -> None:
        """Record ``value`` at cycle ``t`` (``max`` mode: high-water)."""
        index = t // self.bin_width
        self._grow_to(index)
        if self.mode == "max":
            if value > self.bins[index]:
                self.bins[index] = value
        else:
            self.bins[index] += value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def series(self) -> List[float]:
        """The raw per-bin values (a copy)."""
        return list(self.bins)

    def utilization_series(self) -> List[float]:
        """Per-bin values divided by ``bin_width`` (fraction busy).

        Only meaningful in ``sum`` mode for single-resource occupancy
        timelines, where a fully-held bin reads 1.0.
        """
        width = self.bin_width
        return [value / width for value in self.bins]

    def peak(self) -> float:
        """Largest bin value (0.0 if nothing was recorded)."""
        return max(self.bins) if self.bins else 0.0

    def total(self) -> float:
        """Sum of all bin values."""
        return sum(self.bins)

    def mean(self) -> float:
        """Average bin value (0.0 if nothing was recorded)."""
        return sum(self.bins) / len(self.bins) if self.bins else 0.0

    def __len__(self) -> int:
        return len(self.bins)

    # ------------------------------------------------------------------
    # Re-binning
    # ------------------------------------------------------------------

    def rebinned(self, n_bins: int) -> "Timeline":
        """Collapse to at most ``n_bins`` bins (new ``Timeline``).

        ``sum`` bins merge by addition, ``max`` bins by maximum.  The
        result's ``bin_width`` is a whole multiple of the original so
        bin boundaries stay aligned.
        """
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        factor = max(1, -(-len(self.bins) // n_bins))
        merged = Timeline(self.bin_width * factor, mode=self.mode)
        if not self.bins:
            return merged
        merged._grow_to((len(self.bins) - 1) // factor)
        combine = max if self.mode == "max" else float.__add__
        for index, value in enumerate(self.bins):
            target = index // factor
            merged.bins[target] = combine(merged.bins[target], value)
        return merged

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form (round-trips through :meth:`from_dict`)."""
        return {"bin_width": self.bin_width, "mode": self.mode,
                "bins": list(self.bins)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Timeline":
        timeline = cls(int(data["bin_width"]), mode=str(data["mode"]))
        timeline.bins = [float(v) for v in data["bins"]]
        return timeline
