"""Seeded Pareto-frontier search over the cluster design space.

:func:`optimize` runs a small genetic loop over
:class:`~repro.optimize.space.Candidate` designs, pricing each
generation through the :class:`~repro.optimize.evaluate.FunnelEvaluator`
tiers: the analytical surrogate triages the population, the fused
engines score the survivors, and the frontier is confirmed at full
fidelity (cache-warm, so the confirm pass costs zero simulator calls
on points the fused tier already resolved).

The population is seeded with -- and always exactly prices -- the
paper's Section 5 recommendations, so the resulting frontier either
*contains* each recommendation or names the candidate that dominates
it (:class:`PaperVerdict`).

Determinism: all randomness flows through ``random.Random(seed)``,
iteration orders are sorted, and budget accounting is cache-blind, so
the same seed over the same grid always returns the same frontier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .evaluate import BudgetExhausted, Evaluation, FunnelEvaluator
from .space import Candidate, DesignSpace

__all__ = ["FrontierPoint", "OptimizeResult", "PaperVerdict",
           "optimize", "pareto_front"]


def pareto_front(evaluations: List[Evaluation]) -> List[Evaluation]:
    """Non-dominated subset under (relative area, mean normalized
    time), both minimized; sorted by ascending area then time."""
    ordered = sorted(evaluations,
                     key=lambda e: (e.relative_area,
                                    e.mean_normalized_time, e.candidate))
    front: List[Evaluation] = []
    for evaluation in ordered:
        if not any(other.dominates(evaluation) for other in ordered):
            front.append(evaluation)
    return front


@dataclass(frozen=True)
class FrontierPoint:
    """One frontier entry plus its provenance."""

    evaluation: Evaluation
    is_paper_recommendation: bool


@dataclass(frozen=True)
class PaperVerdict:
    """How one Section 5 recommendation fared against the search."""

    candidate: Candidate
    evaluation: Evaluation
    on_frontier: bool
    dominated_by: Optional[Candidate]
    """A frontier candidate strictly dominating the recommendation
    (``None`` when the recommendation itself made the frontier)."""


@dataclass(frozen=True)
class OptimizeResult:
    """Everything :func:`optimize` learned."""

    seed: int
    frontier: Tuple[FrontierPoint, ...]
    verdicts: Tuple[PaperVerdict, ...]
    evaluated: Tuple[Evaluation, ...]
    """All exact-tier evaluations, sorted by cost/performance."""

    generations_run: int
    budget: Dict[str, Dict[str, Optional[int]]]
    stopped_early: bool
    """True when a tier budget ran out before the loop finished."""

    @property
    def best(self) -> Optional[Evaluation]:
        """Lowest cost/performance product among exact evaluations."""
        return self.evaluated[0] if self.evaluated else None

    def rediscovers_paper(self) -> bool:
        """Whether every recommendation is on (or dominated by a point
        of) the frontier -- the acceptance check for the reproduction:
        the search must rediscover Section 5's designs or name strictly
        better ones."""
        return bool(self.verdicts) and all(
            v.on_frontier or v.dominated_by is not None
            for v in self.verdicts)


def _fill_population(space: DesignSpace, rng: random.Random,
                     population: List[Candidate], size: int) -> None:
    """Top up ``population`` with distinct random legal candidates."""
    seen = set(population)
    misses = 0
    while len(population) < size and misses < 8 * size:
        candidate = space.sample(rng)
        if candidate is None or candidate in seen:
            misses += 1
            continue
        seen.add(candidate)
        population.append(candidate)


def optimize(space: DesignSpace, evaluator: FunnelEvaluator,
             seed: int = 0, generations: int = 3,
             population_size: int = 12, promote: int = 4,
             confirm: bool = True) -> OptimizeResult:
    """Search ``space`` for the cost/performance Pareto frontier.

    Each generation: triage the population at the analytical tier,
    promote the ``promote`` best triage scores (plus, in the first
    generation, every paper recommendation) to the fused tier, then
    breed the next generation from the fused elite by mutation and
    crossover.  A :class:`~repro.optimize.evaluate.BudgetExhausted`
    from any tier ends the search gracefully with the evaluations
    already in hand.
    """
    if generations < 1:
        raise ValueError("generations must be >= 1")
    if population_size < 1:
        raise ValueError("population_size must be >= 1")
    if promote < 1:
        raise ValueError("promote must be >= 1")

    rng = random.Random(seed)
    seeds = space.seeds()
    exact: Dict[Candidate, Evaluation] = {}
    population: List[Candidate] = list(seeds)
    _fill_population(space, rng, population, population_size)

    generations_run = 0
    stopped_early = False
    try:
        for generation in range(generations):
            triage = evaluator.evaluate(population, "analytical")
            ranked = sorted(triage,
                            key=lambda e: (e.cost_performance,
                                           e.candidate))
            chosen = [e.candidate for e in ranked[:promote]]
            if generation == 0:
                chosen.extend(c for c in seeds if c not in chosen)
            scored = evaluator.evaluate(chosen, "fused")
            for evaluation in scored:
                exact[evaluation.candidate] = evaluation
            generations_run += 1

            if generation == generations - 1:
                break
            # Breed the next generation from the exact-tier elite.
            elite = [e.candidate for e in
                     sorted(exact.values(),
                            key=lambda e: (e.cost_performance,
                                           e.candidate))[:promote]]
            children: List[Candidate] = list(elite)
            seen = set(children)
            attempts = 0
            while (len(children) < population_size
                   and attempts < 8 * population_size):
                attempts += 1
                if len(elite) >= 2 and rng.random() < 0.5:
                    child = space.crossover(rng.choice(elite),
                                            rng.choice(elite), rng)
                else:
                    child = space.mutate(rng.choice(elite), rng)
                child = space.mutate(child, rng)
                if child not in seen:
                    seen.add(child)
                    children.append(child)
            population = children
            _fill_population(space, rng, population, population_size)
    except BudgetExhausted:
        stopped_early = True

    # Confirm the frontier at full fidelity.  Fused and full share
    # cache keys, so this re-prices the frontier without new simulator
    # calls; on budget exhaustion the fused evaluations stand.
    frontier_evals = pareto_front(list(exact.values()))
    if confirm and frontier_evals and not stopped_early:
        try:
            confirmed = evaluator.evaluate(
                [e.candidate for e in frontier_evals], "full")
            for evaluation in confirmed:
                exact[evaluation.candidate] = evaluation
            frontier_evals = pareto_front(list(exact.values()))
        except BudgetExhausted:
            stopped_early = True

    frontier_candidates = {e.candidate for e in frontier_evals}
    frontier = tuple(
        FrontierPoint(evaluation=e,
                      is_paper_recommendation=e.candidate in seeds)
        for e in frontier_evals)

    verdicts = []
    for candidate in seeds:
        evaluation = exact.get(candidate)
        if evaluation is None:
            # Budget ran out before this recommendation was priced.
            continue
        dominated_by = None
        if candidate not in frontier_candidates:
            for point in frontier_evals:
                if point.dominates(evaluation):
                    dominated_by = point.candidate
                    break
        verdicts.append(PaperVerdict(
            candidate=candidate, evaluation=evaluation,
            on_frontier=candidate in frontier_candidates,
            dominated_by=dominated_by))

    evaluated = tuple(sorted(exact.values(),
                             key=lambda e: (e.cost_performance,
                                            e.candidate)))
    return OptimizeResult(
        seed=seed,
        frontier=frontier,
        verdicts=tuple(verdicts),
        evaluated=evaluated,
        generations_run=generations_run,
        budget=evaluator.budget.summary(),
        stopped_early=stopped_early)
