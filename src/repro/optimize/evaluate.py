"""The three-tier evaluation funnel and its budget accounting.

Candidates are priced through a funnel of increasing fidelity:

* **analytical** -- the :mod:`repro.model` surrogate triages the bulk
  of the population for free (no simulation).  Parallel rows with more
  than one processor per cluster -- exactly where the surrogate is
  known-bad (miss-ratio MAE ~ 0.09) -- skip this tier: the evaluator
  routes them straight to the fused tier, and the specs it does build
  carry ``strict_parallel=True`` so the session would refuse such rows
  anyway.
* **fused** -- the exact trace/fused-replay engines score the
  survivors.  These specs use the default instrumented cache keys, so
  an optimizer run warms (and is warmed by) ordinary ``repro sweep``
  runs over the same grid points.
* **full** -- per-point simulation confirms the frontier.  Fused and
  full share cache keys byte-for-byte, so the confirm pass over points
  the fused tier already resolved costs zero simulator calls.

Every tier draws from a :class:`BudgetLedger`; exhausting a tier's
allowance raises :class:`BudgetExhausted`, which the search loop
catches to stop gracefully with the frontier found so far.

Fitness follows Section 5: the latency-corrected normalized execution
time of :func:`repro.cost.costperf.compare_configurations` (relative
to the paper's 8-processor / 512 KB reference), composed with the
parametric floorplan area.  ``cost_performance`` is their product --
normalized time x relative area -- so *lower is better* and the
paper's 24% Section 5.1 gain appears as a 1/1.24 ratio between the
two-processor and one-processor entries.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..cost.costperf import (NORMALIZATION_CONFIG, compare_configurations,
                             surface_from_results)
from ..cost.floorplan import CLUSTER_IMPLEMENTATIONS, implementation_for
from ..cost.latency import latency_factor
from ..experiments.session import grid_sweep
from ..experiments.spec import FIDELITIES, ExperimentProfile, SweepSpec
from .space import Candidate

__all__ = ["BudgetExhausted", "BudgetLedger", "DEFAULT_TIER_BUDGETS",
           "Evaluation", "FunnelEvaluator"]

TIERS = FIDELITIES
"""Funnel tiers, in ascending fidelity: analytical, fused, full."""

DEFAULT_TIER_BUDGETS: Dict[str, Optional[int]] = {
    "analytical": 4096, "fused": 512, "full": 128}
"""Grid points each tier may evaluate per search (``None`` caps
nothing).  Analytical points are model lookups, so the triage tier is
roomy; the exact tiers bound the simulation bill."""


class BudgetExhausted(RuntimeError):
    """A tier's point allowance ran out mid-search."""

    def __init__(self, tier: str, requested: int, remaining: int):
        self.tier = tier
        self.requested = requested
        self.remaining = remaining
        super().__init__(
            f"{tier} tier budget exhausted: {requested} point(s) "
            f"requested, {remaining} remaining")


class BudgetLedger:
    """Per-tier accounting of grid points the funnel has evaluated.

    Points are charged when a spec is *submitted*, whether or not the
    result comes back warm -- deterministic bookkeeping that does not
    depend on cache state, so the same seed always charges the same
    bill (the acceptance criterion for reproducible searches)."""

    def __init__(self, budgets: Optional[Mapping[str, Optional[int]]]
                 = None):
        merged = dict(DEFAULT_TIER_BUDGETS)
        if budgets:
            unknown = sorted(set(budgets) - set(TIERS))
            if unknown:
                raise ValueError(f"unknown budget tier(s) {unknown}; "
                                 f"tiers are {list(TIERS)}")
            merged.update(budgets)
        self._caps = merged
        self._spent = {tier: 0 for tier in TIERS}

    def remaining(self, tier: str) -> Optional[int]:
        cap = self._caps[tier]
        if cap is None:
            return None
        return max(0, cap - self._spent[tier])

    def spent(self, tier: str) -> int:
        return self._spent[tier]

    def charge(self, tier: str, points: int) -> None:
        """Record ``points`` evaluations against ``tier`` (raises
        :class:`BudgetExhausted` without charging if they don't fit)."""
        remaining = self.remaining(tier)
        if remaining is not None and points > remaining:
            raise BudgetExhausted(tier, points, remaining)
        self._spent[tier] += points

    def summary(self) -> Dict[str, Dict[str, Optional[int]]]:
        """JSON-safe ``{tier: {"spent": n, "cap": cap}}`` report."""
        return {tier: {"spent": self._spent[tier], "cap": self._caps[tier]}
                for tier in TIERS}


@dataclass(frozen=True)
class Evaluation:
    """One candidate priced at one funnel tier."""

    candidate: Candidate
    tier: str
    normalized_times: Tuple[Tuple[str, float], ...]
    """Per-benchmark latency-corrected times relative to the paper's
    8-processor / 512 KB reference (sorted by benchmark name)."""

    mean_normalized_time: float
    area_mm2: float
    relative_area: float
    """Cluster area relative to the 204 mm^2 uniprocessor cluster."""

    cost_performance: float
    """``mean_normalized_time * relative_area`` -- lower is better."""

    def dominates(self, other: "Evaluation") -> bool:
        """Pareto dominance on (relative area, mean normalized time)."""
        no_worse = (self.relative_area <= other.relative_area
                    and self.mean_normalized_time
                    <= other.mean_normalized_time)
        better = (self.relative_area < other.relative_area
                  or self.mean_normalized_time
                  < other.mean_normalized_time)
        return no_worse and better


_UNIPROCESSOR_AREA = CLUSTER_IMPLEMENTATIONS[1].cluster_area_mm2


class FunnelEvaluator:
    """Price candidate batches at a funnel tier via sweep machinery.

    Candidates sharing (processors, variant knobs) are batched into one
    :class:`SweepSpec` per benchmark whose ladder is their SCC sizes,
    so the fused engine resolves a whole row in one pass.  Execution
    goes through :func:`~repro.experiments.session.grid_sweep` locally,
    or through a :class:`~repro.fabric.client.SweepClient` when one is
    supplied -- candidate batches ride the same fabric as any sweep.

    Every point is keyed by the existing ``point_cache_key`` scheme,
    which is the warmth contract: searches and plain sweeps share one
    result cache in both directions.
    """

    def __init__(self, profile: ExperimentProfile,
                 benchmarks: Iterable[str] = ("mp3d",),
                 budget: Optional[BudgetLedger] = None,
                 client=None,
                 cache=None, trace_cache=None, session_dir=None,
                 jobs: Optional[int] = None,
                 backend: Optional[str] = None):
        self.profile = profile
        self.benchmarks = tuple(sorted(set(benchmarks)))
        if not self.benchmarks:
            raise ValueError("benchmarks must name at least one workload")
        self.budget = budget if budget is not None else BudgetLedger()
        self.client = client
        self._sweep_kwargs = {}
        if cache is not None:
            self._sweep_kwargs["cache"] = cache
        if trace_cache is not None:
            self._sweep_kwargs["trace_cache"] = trace_cache
        if session_dir is not None:
            self._sweep_kwargs["session_dir"] = session_dir
        self.jobs = jobs
        self.backend = backend
        self._base_times: Dict[str, float] = {}
        self._memo: Dict[Tuple[Candidate, str], Evaluation] = {}

    # ------------------------------------------------------------------

    def _kind(self, benchmark: str) -> str:
        return ("multiprogramming" if benchmark == "multiprogramming"
                else "parallel")

    def _effective_tier(self, tier: str, benchmark: str,
                        procs: int) -> str:
        """Route known-bad surrogate rows past the analytical tier:
        multi-processor *parallel* rows go straight to fused (the
        strict-parallel policy, applied before any spec is built)."""
        if (tier == "analytical" and self._kind(benchmark) == "parallel"
                and procs > 1):
            return "fused"
        return tier

    def _build_spec(self, benchmark: str, procs: int,
                    ladder: Tuple[int, ...],
                    variants: Tuple[Tuple[str, object], ...],
                    tier: str) -> SweepSpec:
        return SweepSpec(
            kind=self._kind(benchmark),
            benchmark=benchmark,
            profile=self.profile,
            ladder=ladder,
            procs=(procs,),
            variants=variants,
            fidelity=tier,
            instrument=tier != "analytical",
            fused=tier != "full",
            strict_parallel=tier == "analytical",
            backend=self.backend,
            jobs=self.jobs,
        )

    def _run_spec(self, spec: SweepSpec):
        self.budget.charge(spec.fidelity,
                           len(spec.ladder) * len(spec.procs))
        if self.client is not None:
            return self.client.result(self.client.submit(spec))
        return grid_sweep(spec, **self._sweep_kwargs)

    def _base_time(self, benchmark: str) -> float:
        """Raw time of the 8-processor / 512 KB reference (always exact
        fidelity -- predictions never set the normalization base)."""
        if benchmark not in self._base_times:
            procs, scc = NORMALIZATION_CONFIG
            spec = self._build_spec(benchmark, procs, (scc,), (), "fused")
            results = self._run_spec(spec)
            surface = surface_from_results(results)
            self._base_times[benchmark] = surface[(procs, scc)]
        return self._base_times[benchmark]

    # ------------------------------------------------------------------

    def evaluate(self, candidates: Iterable[Candidate],
                 tier: str) -> List[Evaluation]:
        """Price ``candidates`` at ``tier``; returns one
        :class:`Evaluation` per distinct candidate, in sorted order.

        Previously-priced (candidate, tier) pairs are served from the
        in-run memo without touching the budget.  Raises
        :class:`BudgetExhausted` once the tier's allowance runs out --
        by then every already-priced candidate remains memoized, so
        callers can stop gracefully with partial coverage.
        """
        if tier not in TIERS:
            raise ValueError(f"tier must be one of {list(TIERS)}, "
                             f"not {tier!r}")
        todo = sorted(c for c in set(candidates)
                      if (c, tier) not in self._memo)

        # Batch by (procs, variants): one spec per batch per benchmark,
        # with the batch's SCC sizes as the ladder.
        batches: Dict[Tuple[int, Tuple[Tuple[str, object], ...]],
                      List[Candidate]] = {}
        for candidate in todo:
            key = (candidate.procs, candidate.variants())
            batches.setdefault(key, []).append(candidate)

        raw_times: Dict[Tuple[Candidate, str], float] = {}
        for (procs, variants), group in sorted(batches.items()):
            ladder = tuple(sorted({c.scc_paper_bytes for c in group}))
            for benchmark in self.benchmarks:
                self._base_time(benchmark)  # prime in deterministic order
                effective = self._effective_tier(tier, benchmark, procs)
                spec = self._build_spec(benchmark, procs, ladder,
                                        variants, effective)
                surface = surface_from_results(self._run_spec(spec))
                for candidate in group:
                    raw_times[(candidate, benchmark)] = surface[
                        candidate.grid_point()]

        for candidate in todo:
            self._memo[(candidate, tier)] = self._score(candidate, tier,
                                                        raw_times)
        return [self._memo[(candidate, tier)]
                for candidate in sorted(set(candidates))]

    def _score(self, candidate: Candidate, tier: str,
               raw_times: Mapping[Tuple[Candidate, str], float]
               ) -> Evaluation:
        point = candidate.grid_point()
        normalized: List[Tuple[str, float]] = []
        for benchmark in self.benchmarks:
            base = self._base_time(benchmark)
            raw = raw_times[(candidate, benchmark)]
            if point == NORMALIZATION_CONFIG:
                # The candidate sits exactly on the normalization point:
                # a two-entry surface would collide (variant knobs, or a
                # prediction vs the exact base), so apply the Table 6/7
                # arithmetic directly.
                factor = latency_factor(
                    benchmark, implementation_for(point[0]).load_latency)
                normalized.append((benchmark, raw * factor / base))
            else:
                table = compare_configurations(
                    {benchmark: {NORMALIZATION_CONFIG: base, point: raw}},
                    configurations=(point,))
                normalized.append(
                    (benchmark, table.cells[0].normalized_time))
        mean_time = statistics.fmean(time for _, time in normalized)
        area = candidate.area_mm2()
        relative_area = area / _UNIPROCESSOR_AREA
        return Evaluation(
            candidate=candidate,
            tier=tier,
            normalized_times=tuple(normalized),
            mean_normalized_time=mean_time,
            area_mm2=area,
            relative_area=relative_area,
            cost_performance=mean_time * relative_area,
        )
