"""Human-readable rendering of an optimizer run."""

from __future__ import annotations

from typing import List

from ..experiments.report import format_size, render_table
from .search import OptimizeResult

__all__ = ["render_frontier"]


def render_frontier(result: OptimizeResult) -> str:
    """The frontier table plus the paper verdicts and budget lines."""
    benchmarks = ()
    if result.frontier:
        benchmarks = tuple(
            name for name, _ in
            result.frontier[0].evaluation.normalized_times)
    headers = (["design", "area mm^2", "rel area"]
               + [f"{name} time" for name in benchmarks]
               + ["mean time", "cost*perf", "paper?"])
    rows = []
    for point in result.frontier:
        e = point.evaluation
        rows.append(
            [e.candidate.label(), f"{e.area_mm2:.0f}",
             f"{e.relative_area:.2f}"]
            + [f"{time:.3f}" for _, time in e.normalized_times]
            + [f"{e.mean_normalized_time:.3f}",
               f"{e.cost_performance:.3f}",
               "yes" if point.is_paper_recommendation else ""])
    lines: List[str] = [render_table(
        f"Cost/performance Pareto frontier (seed {result.seed}, "
        f"{result.generations_run} generation(s))", headers, rows)]

    lines.append("")
    lines.append("Paper Section 5 recommendations:")
    if not result.verdicts:
        lines.append("  (none priced -- budget exhausted)")
    for verdict in result.verdicts:
        procs = verdict.candidate.procs
        size = format_size(verdict.candidate.scc_paper_bytes)
        if verdict.on_frontier:
            status = "on the frontier"
        elif verdict.dominated_by is not None:
            status = f"dominated by {verdict.dominated_by.label()}"
        else:
            status = "off the frontier (not dominated: frontier trades "\
                     "along another axis)"
        lines.append(f"  {procs}p / {size}: {status} "
                     f"(cost*perf "
                     f"{verdict.evaluation.cost_performance:.3f})")
    lines.append(
        "  verdict: search "
        + ("REDISCOVERS (or beats) the paper's designs"
           if result.rediscovers_paper()
           else "does NOT cover the paper's designs"))

    lines.append("")
    lines.append("Funnel budget (grid points evaluated / cap):")
    for tier, entry in result.budget.items():
        cap = "unlimited" if entry["cap"] is None else entry["cap"]
        lines.append(f"  {tier:10s} {entry['spent']} / {cap}")
    if result.stopped_early:
        lines.append("  search stopped early: a tier budget ran out")
    return "\n".join(lines)
