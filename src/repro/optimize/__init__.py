"""Design-space search over the shared-cache cluster parameters.

The paper explores a two-axis grid (processors per cluster, SCC size)
and hand-picks its Section 5 recommendations from the resulting
tables.  This package closes the loop: a seeded Pareto-frontier search
over those axes *plus* the machine knobs the simulator exposes beyond
them (associativity, banking, coherence protocol, write-buffer depth),
priced through a three-tier fidelity funnel that shares the result
cache with every ordinary sweep.

Entry points: build a :class:`DesignSpace` and a
:class:`FunnelEvaluator`, then call :func:`optimize` -- or run
``python -m repro optimize`` for the packaged CLI.
"""

from .evaluate import (BudgetExhausted, BudgetLedger,
                       DEFAULT_TIER_BUDGETS, Evaluation, FunnelEvaluator)
from .report import render_frontier
from .search import (FrontierPoint, OptimizeResult, PaperVerdict,
                     optimize, pareto_front)
from .space import PAPER_RECOMMENDATIONS, Candidate, DesignSpace

__all__ = [
    "BudgetExhausted", "BudgetLedger", "DEFAULT_TIER_BUDGETS",
    "Evaluation", "FunnelEvaluator",
    "render_frontier",
    "FrontierPoint", "OptimizeResult", "PaperVerdict",
    "optimize", "pareto_front",
    "PAPER_RECOMMENDATIONS", "Candidate", "DesignSpace",
]
