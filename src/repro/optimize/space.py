"""Candidate encoding and the searchable design space.

A :class:`Candidate` is one cluster design the optimizer can price:
the paper's two swept axes (processors per cluster, SCC capacity) plus
the four machine knobs the simulator exposes beyond them
(associativity, bank provisioning, coherence protocol, write-buffer
depth).  Knobs left at the paper presets are omitted from cache keys
and spec variants, so the pure (procs, SCC) plane -- everything the
existing sweeps ever computed -- stays byte-compatible with the
pre-optimizer cache layout.

:class:`DesignSpace` owns the legal domains and the seeded genetic
operators (sample / mutate / crossover).  All randomness flows through
a caller-provided :class:`random.Random`, so the same seed always
walks the same candidates -- the determinism half of the optimizer's
contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Tuple

from ..core.config import KB, SystemConfig
from ..cost.floorplan import (CLUSTER_IMPLEMENTATIONS,
                              candidate_cluster_area_mm2)
from ..experiments.spec import (PAPER_LADDER, PROCS_SWEPT,
                                ExperimentProfile)

__all__ = ["Candidate", "DesignSpace", "PAPER_RECOMMENDATIONS"]


@dataclass(frozen=True, order=True)
class Candidate:
    """One cluster design: the paper's grid axes plus variant knobs."""

    procs: int
    """Processors per cluster (the floorplans cover 1, 2, 4, 8)."""

    scc_paper_bytes: int
    """SCC capacity in *paper* bytes (scaled down at evaluation time by
    the profile's ladder scale, like every sweep)."""

    associativity: int = 1
    protocol: str = "msi"
    banks_per_processor: int = 4
    write_buffer_depth: int = 4

    def grid_point(self) -> Tuple[int, int]:
        """The (procs per cluster, paper SCC bytes) surface key."""
        return (self.procs, self.scc_paper_bytes)

    def variants(self) -> Tuple[Tuple[str, object], ...]:
        """Non-preset knobs as :attr:`SweepSpec.variants` pairs."""
        defaults = SystemConfig()
        pairs = [("associativity", self.associativity),
                 ("banks_per_processor", self.banks_per_processor),
                 ("protocol", self.protocol),
                 ("write_buffer_depth", self.write_buffer_depth)]
        return tuple(sorted((knob, value) for knob, value in pairs
                            if value != getattr(defaults, knob)))

    def area_mm2(self) -> float:
        """Cluster silicon area from the Section 4 parametric model."""
        return candidate_cluster_area_mm2(
            self.procs, self.scc_paper_bytes,
            associativity=self.associativity,
            banks_per_processor=self.banks_per_processor,
            write_buffer_depth=self.write_buffer_depth)

    def label(self) -> str:
        """``"2p/32KB"`` plus any non-preset knobs."""
        base = f"{self.procs}p/{self.scc_paper_bytes // KB}KB"
        extras = ",".join(f"{_SHORT_KNOB[knob]}={value}"
                          for knob, value in self.variants())
        return f"{base}[{extras}]" if extras else base


_SHORT_KNOB = {"associativity": "assoc", "banks_per_processor": "banks",
               "protocol": "protocol", "write_buffer_depth": "wbuf"}


PAPER_RECOMMENDATIONS: Tuple[Candidate, ...] = (
    Candidate(2, 32 * KB),
    Candidate(4, 64 * KB),
    Candidate(8, 128 * KB),
)
"""Section 5's verdicts: the 2-processor/32 KB single-chip cluster and
the 4-processor/64 KB and 8-processor/128 KB MCM clusters."""


class DesignSpace:
    """Legal candidate domains plus the seeded genetic operators.

    ``profile`` matters for legality: the reproduction scales cache
    sizes down by ``ladder_scale``, so a 4 KB paper SCC simulates at
    512 bytes (32 lines) -- too few lines for eight banks-per-processor
    at eight processors, say.  Candidates are validated against the
    *simulated* configuration, exactly the machine they would price.
    """

    def __init__(self, profile: ExperimentProfile,
                 procs: Iterable[int] = PROCS_SWEPT,
                 ladder: Iterable[int] = PAPER_LADDER,
                 associativity: Iterable[int] = (1, 2, 4),
                 protocols: Iterable[str] = ("msi", "mesi"),
                 banks: Iterable[int] = (2, 4, 8),
                 write_buffers: Iterable[int] = (1, 2, 4, 8),
                 explore_knobs: bool = True):
        self.profile = profile
        self.procs = tuple(sorted(set(procs)))
        self.ladder = tuple(sorted(set(ladder)))
        unknown = [p for p in self.procs
                   if p not in CLUSTER_IMPLEMENTATIONS]
        if unknown:
            raise ValueError(f"no floorplan (and so no cost) for "
                             f"{unknown} processors per cluster")
        if explore_knobs:
            self.associativity = tuple(sorted(set(associativity)))
            self.protocols = tuple(sorted(set(protocols)))
            self.banks = tuple(sorted(set(banks)))
            self.write_buffers = tuple(sorted(set(write_buffers)))
        else:
            self.associativity = (1,)
            self.protocols = ("msi",)
            self.banks = (4,)
            self.write_buffers = (4,)
        self._dimensions = (
            ("procs", self.procs),
            ("scc_paper_bytes", self.ladder),
            ("associativity", self.associativity),
            ("protocol", self.protocols),
            ("banks_per_processor", self.banks),
            ("write_buffer_depth", self.write_buffers),
        )

    # ------------------------------------------------------------------

    def legal(self, candidate: Candidate) -> bool:
        """Whether the candidate simulates as a valid machine."""
        if (candidate.procs not in self.procs
                or candidate.scc_paper_bytes not in self.ladder):
            return False
        scaled = candidate.scc_paper_bytes // self.profile.ladder_scale
        try:
            SystemConfig.paper_parallel(
                candidate.procs, scaled).with_updates(
                    **dict(candidate.variants()))
        except ValueError:
            return False
        return True

    def seeds(self) -> Tuple[Candidate, ...]:
        """The paper's recommended designs that fit this space (the
        search starts from -- and always exactly prices -- these)."""
        return tuple(c for c in PAPER_RECOMMENDATIONS if self.legal(c))

    # -- genetic operators ---------------------------------------------

    def sample(self, rng: random.Random,
               attempts: int = 64) -> Optional[Candidate]:
        """One uniformly-drawn legal candidate (``None`` if the space
        is so constrained that ``attempts`` rejections all failed)."""
        for _ in range(attempts):
            candidate = Candidate(**{name: rng.choice(domain)
                                     for name, domain in self._dimensions})
            if self.legal(candidate):
                return candidate
        return None

    def mutate(self, candidate: Candidate,
               rng: random.Random, attempts: int = 16) -> Candidate:
        """Step one dimension to a neighbouring value (legal results
        only; falls back to the parent when every step is illegal)."""
        for _ in range(attempts):
            name, domain = rng.choice(self._dimensions)
            if len(domain) < 2:
                continue
            index = domain.index(getattr(candidate, name))
            step = rng.choice((-1, 1))
            neighbour = domain[max(0, min(len(domain) - 1, index + step))]
            mutated = replace(candidate, **{name: neighbour})
            if mutated != candidate and self.legal(mutated):
                return mutated
        return candidate

    def crossover(self, parent_a: Candidate, parent_b: Candidate,
                  rng: random.Random, attempts: int = 16) -> Candidate:
        """Uniform crossover: each dimension drawn from either parent."""
        for _ in range(attempts):
            child = Candidate(**{
                name: getattr(rng.choice((parent_a, parent_b)), name)
                for name, _ in self._dimensions})
            if self.legal(child):
                return child
        return parent_a
