"""Implementation cost models of Sections 4-5: process technology, SRAM
blocks, crossbar ICN, pad counting, chip floorplans, the pixstats-style
load-latency sensitivity model, and the cost/performance combination."""

from .costperf import (ComparisonCell, ComparisonTable,
                       MissingSurfacePointError, NORMALIZATION_CONFIG,
                       compare_configurations, cost_performance_gain,
                       mcm_table, single_chip_table, surface_from_results)
from .floorplan import (CLUSTER_IMPLEMENTATIONS, ClusterImplementation,
                        candidate_cluster_area_mm2, implementation_for)
from .icn import DEFAULT_PITCH_UM, WIRES_PER_PORT, crossbar_area_mm2
from .latency import (PAPER_LATENCY_MODELS, PAPER_TABLE5, LoadLatencyModel,
                      latency_factor)
from .pins import (LINES_PER_PROCESSOR, PackagingChoice, choose_packaging,
                   perimeter_pad_capacity, signal_pads)
from .sram import (DATA_CACHE_BLOCK, SCC_BANK_BLOCK, SramBlock,
                   access_time_fo4, cache_area_mm2,
                   max_direct_mapped_bytes)
from .technology import (ALPHA_21064, BANK_ARBITRATION_FO4, CYCLE_TIME_FO4,
                         PAPER_PROCESS, ProcessNode, ScaledProcessor)

__all__ = [
    "ComparisonCell", "ComparisonTable", "MissingSurfacePointError",
    "NORMALIZATION_CONFIG", "compare_configurations",
    "cost_performance_gain", "mcm_table", "single_chip_table",
    "surface_from_results",
    "CLUSTER_IMPLEMENTATIONS", "ClusterImplementation",
    "candidate_cluster_area_mm2", "implementation_for",
    "DEFAULT_PITCH_UM", "WIRES_PER_PORT", "crossbar_area_mm2",
    "PAPER_LATENCY_MODELS", "PAPER_TABLE5", "LoadLatencyModel",
    "latency_factor",
    "LINES_PER_PROCESSOR", "PackagingChoice", "choose_packaging",
    "perimeter_pad_capacity", "signal_pads",
    "DATA_CACHE_BLOCK", "SCC_BANK_BLOCK", "SramBlock", "access_time_fo4",
    "cache_area_mm2", "max_direct_mapped_bytes",
    "ALPHA_21064", "BANK_ARBITRATION_FO4", "CYCLE_TIME_FO4",
    "PAPER_PROCESS", "ProcessNode", "ScaledProcessor",
]
