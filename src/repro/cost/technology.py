"""Semiconductor technology assumptions (Section 4.1).

The paper targets a 0.4 um CMOS process with three interconnect layers
(available "by the end of 1996"), in which an 18 mm x 18 mm die
(300 mm^2) is economical.  Processor area is estimated by linearly
scaling the DEC Alpha 21064 (implemented at 0.68 um) to 0.4 um, and all
timing is expressed in FO4 inverter delays: the 21064's aggressive
circuit design achieves a 30-FO4 processor cycle, which the paper adopts
for every implementation it evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessNode", "PAPER_PROCESS", "ALPHA_21064", "ScaledProcessor",
           "CYCLE_TIME_FO4", "BANK_ARBITRATION_FO4"]

CYCLE_TIME_FO4 = 30
"""Processor cycle time in FO4 inverter delays (Section 4.1)."""

BANK_ARBITRATION_FO4 = 17
"""FO4 delays to arbitrate for an SCC bank across the crossbar ICN
(Section 4.3); it does not fit in the cycle, hence the extra pipeline
stage and three-cycle loads of the shared-cache chips."""


@dataclass(frozen=True)
class ProcessNode:
    """A CMOS process generation."""

    gate_length_um: float
    metal_layers: int
    max_die_side_mm: float

    @property
    def max_die_area_mm2(self) -> float:
        """Largest economical die for this process."""
        return self.max_die_side_mm ** 2

    def area_scale_from(self, other: "ProcessNode") -> float:
        """Factor by which areas shrink moving from ``other`` to here.

        Linear shrink in both dimensions -- the paper's "good first
        approximation" (Section 4.1).
        """
        return (self.gate_length_um / other.gate_length_um) ** 2


PAPER_PROCESS = ProcessNode(gate_length_um=0.4, metal_layers=3,
                            max_die_side_mm=18.0)
"""The 1996-era process every floorplan in Section 4 assumes.  Note the
paper quotes 300 mm^2 as the economical die; 18 mm on a side is its
stated die dimension (the extra 24 mm^2 is pad-ring territory)."""

ALPHA_PROCESS = ProcessNode(gate_length_um=0.68, metal_layers=3,
                            max_die_side_mm=17.0)
"""The process of the reference DEC Alpha 21064 implementation."""


@dataclass(frozen=True)
class ReferenceProcessor:
    """Die-level facts about the reference microprocessor."""

    name: str
    process: ProcessNode
    core_area_mm2: float
    """Integer unit + floating point unit area."""

    icache_area_mm2: float
    """Instruction cache area at its native size."""

    icache_kb: int
    cycle_fo4: int


ALPHA_21064 = ReferenceProcessor(
    name="DEC Alpha 21064",
    process=ALPHA_PROCESS,
    core_area_mm2=103.0,
    icache_area_mm2=38.0,
    icache_kb=8,
    cycle_fo4=30,
)
"""Component areas of the 21064 at 0.68 um.  The die is 16.8 x 13.9 mm
(234 mm^2); roughly 103 mm^2 is the integer and floating-point core and
38 mm^2 the 8 KB instruction cache, the remainder being the data cache,
pads and routing.  Only the IU, FPU and instruction cache are scaled
into the paper's floorplans (Section 4.1)."""


@dataclass(frozen=True)
class ScaledProcessor:
    """The 21064 core scaled into the paper's 0.4 um process."""

    core_area_mm2: float
    icache_area_mm2: float
    icache_kb: int

    @classmethod
    def in_process(cls, target: ProcessNode = PAPER_PROCESS,
                   reference: ReferenceProcessor = ALPHA_21064,
                   icache_kb: int = 16) -> "ScaledProcessor":
        """Scale the reference processor linearly into ``target``.

        The floorplans use a 16 KB instruction cache (twice the 21064's),
        so the icache area is scaled by capacity as well as process.
        """
        shrink = target.area_scale_from(reference.process)
        return cls(
            core_area_mm2=reference.core_area_mm2 * shrink,
            icache_area_mm2=(reference.icache_area_mm2 * shrink
                             * icache_kb / reference.icache_kb),
            icache_kb=icache_kb,
        )

    @property
    def total_area_mm2(self) -> float:
        """Core plus instruction cache."""
        return self.core_area_mm2 + self.icache_area_mm2
