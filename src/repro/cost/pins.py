"""Signal I/O pad counting and packaging feasibility (Sections 4.4-4.5).

Multi-chip clusters need chip-to-chip wires: each processor that accesses
a cache bank on another chip needs its 160 address/data/control lines
brought off chip.  The four-processor building block ends up with about
600 signal pads -- still placeable in a perimeter pad frame -- while the
eight-processor block needs about 1100, which forces an area-array
technology such as IBM's controlled-collapse chip connection (C4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LINES_PER_PROCESSOR", "signal_pads", "perimeter_pad_capacity",
           "PackagingChoice", "choose_packaging"]

LINES_PER_PROCESSOR = 160
"""Address, data and control lines one remote processor needs
(Section 4.4)."""

_BASE_PADS = 280
"""Pads for memory-bus, clock and system signals common to every chip,
backed out of the paper's 600-pad four-processor chip (two remote
processors: 600 - 2 x 160)."""

_DEFAULT_PAD_PITCH_UM = 120.0
"""Perimeter pad pitch achievable in the 1996-era packaging the paper
assumes."""


def signal_pads(remote_processors: int,
                lines_per_processor: int = LINES_PER_PROCESSOR) -> int:
    """Signal pads a cluster chip needs to talk to ``remote_processors``
    processors on other chips of the same cluster."""
    if remote_processors < 0:
        raise ValueError("remote_processors must be non-negative")
    return _BASE_PADS + remote_processors * lines_per_processor


def perimeter_pad_capacity(die_side_mm: float,
                           pad_pitch_um: float = _DEFAULT_PAD_PITCH_UM) -> int:
    """Pads that fit in a single-row perimeter frame on a square die."""
    if die_side_mm <= 0 or pad_pitch_um <= 0:
        raise ValueError("dimensions must be positive")
    return int(4 * die_side_mm * 1000.0 / pad_pitch_um)


@dataclass(frozen=True)
class PackagingChoice:
    """Outcome of the pads-vs-perimeter feasibility check."""

    pads: int
    perimeter_capacity: int
    needs_c4: bool
    """True when pads exceed the perimeter frame and an area array
    (C4-style) is required, as for the eight-processor block."""


def choose_packaging(pads: int, die_side_mm: float = 18.0,
                     pad_pitch_um: float = _DEFAULT_PAD_PITCH_UM
                     ) -> PackagingChoice:
    """Decide between a perimeter pad frame and C4 for a pad count."""
    capacity = perimeter_pad_capacity(die_side_mm, pad_pitch_um)
    return PackagingChoice(pads=pads, perimeter_capacity=capacity,
                           needs_c4=pads > capacity)
