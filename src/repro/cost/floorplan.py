"""Chip floorplans for the four cluster implementations (Sections 4.2-4.5).

One floorplan per cluster design the paper evaluates:

===============================  =======  ==========  =========  ========
design                           SCC      chip area   vs 1-proc  load lat
===============================  =======  ==========  =========  ========
one processor per cluster        64 KB*   204 mm^2    --         2 cycles
two processors per cluster       32 KB    279 mm^2    +37%       3 cycles
four processors (2-chip MCM)     64 KB    297 mm^2    +46%       4 cycles
eight processors (4-chip MCM)    128 KB   306 mm^2    +50%       4 cycles
===============================  =======  ==========  =========  ========

(*) the uniprocessor's cache is a private data cache, not a shared SCC.

Each :class:`ClusterImplementation` carries the paper's quoted totals
(authoritative -- they come from drawn floorplans) alongside a component
breakdown built from the SRAM, ICN and scaled-processor models; the
difference is the routing / pad-ring / dead-space overhead, which the
tests assert is non-negative and sane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .icn import crossbar_area_mm2
from .pins import choose_packaging, signal_pads
from .sram import DATA_CACHE_BLOCK, SCC_BANK_BLOCK, cache_area_mm2
from .technology import PAPER_PROCESS, ScaledProcessor

__all__ = ["ClusterImplementation", "CLUSTER_IMPLEMENTATIONS",
           "implementation_for", "candidate_cluster_area_mm2"]

KB = 1024


@dataclass(frozen=True)
class ClusterImplementation:
    """One of the paper's four cluster designs."""

    name: str
    processors: int
    scc_bytes: int
    """Data cache capacity per cluster (private cache for 1 processor)."""

    chips: int
    """Chips per cluster (MCM designs use multiple two-processor-derived
    chips)."""

    chip_area_mm2: float
    """Paper-quoted total chip area (per chip)."""

    load_latency: int
    """Pipeline load latency in cycles (Section 4: 2 for the private
    cache, 3 with on-chip ICN arbitration, 4 across MCM chip crossings)."""

    ports_per_icn: int
    banks: int
    signal_pads_quoted: int
    """Paper-quoted signal pad count per chip (0 where unstated)."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def cluster_area_mm2(self) -> float:
        """Silicon area of the whole cluster (all chips)."""
        return self.chip_area_mm2 * self.chips

    @property
    def area_ratio_vs_uniprocessor(self) -> float:
        """Chip area relative to the one-processor chip (the paper's
        +37% / +46% / +50% figures)."""
        return self.chip_area_mm2 / CLUSTER_IMPLEMENTATIONS[1].chip_area_mm2

    def component_areas_mm2(self) -> Dict[str, float]:
        """Breakdown from the parametric models (per chip)."""
        processor = ScaledProcessor.in_process(PAPER_PROCESS)
        processors_on_chip = min(self.processors, 2)
        areas: Dict[str, float] = {
            "cores": processors_on_chip * processor.core_area_mm2,
            "icaches": processors_on_chip * processor.icache_area_mm2,
        }
        if self.processors == 1:
            areas["data cache"] = cache_area_mm2(self.scc_bytes,
                                                 DATA_CACHE_BLOCK)
        else:
            scc_bytes_per_chip = self.scc_bytes // self.chips
            areas["scc banks"] = cache_area_mm2(scc_bytes_per_chip,
                                                SCC_BANK_BLOCK)
            areas["icn"] = crossbar_area_mm2(self.ports_per_icn, self.banks)
        return areas

    @property
    def overhead_mm2(self) -> float:
        """Quoted total minus modelled components: routing, pad ring and
        dead space of the drawn floorplan."""
        return self.chip_area_mm2 - sum(self.component_areas_mm2().values())

    @property
    def fits_die(self) -> bool:
        """Whether the chip fits the economical die (Section 4.1)."""
        return self.chip_area_mm2 <= PAPER_PROCESS.max_die_area_mm2 + 6.0

    def packaging(self):
        """Pad-frame vs C4 decision for this chip's pad count."""
        pads = self.signal_pads_quoted or signal_pads(
            (self.processors - 2) if self.processors > 2 else 0)
        return choose_packaging(pads)


CLUSTER_IMPLEMENTATIONS: Dict[int, ClusterImplementation] = {
    1: ClusterImplementation(
        name="one processor, 64 KB private cache",
        processors=1, scc_bytes=64 * KB, chips=1,
        chip_area_mm2=204.0, load_latency=2,
        ports_per_icn=0, banks=0, signal_pads_quoted=0),
    2: ClusterImplementation(
        name="two processors, 32 KB SCC",
        processors=2, scc_bytes=32 * KB, chips=1,
        chip_area_mm2=279.0, load_latency=3,
        ports_per_icn=3, banks=8, signal_pads_quoted=0),
    4: ClusterImplementation(
        name="four processors, 64 KB SCC (2-chip MCM)",
        processors=4, scc_bytes=64 * KB, chips=2,
        chip_area_mm2=297.0, load_latency=4,
        ports_per_icn=5, banks=8, signal_pads_quoted=600),
    8: ClusterImplementation(
        name="eight processors, 128 KB SCC (4-chip MCM)",
        processors=8, scc_bytes=128 * KB, chips=4,
        chip_area_mm2=306.0, load_latency=4,
        ports_per_icn=9, banks=8, signal_pads_quoted=1100),
}
"""Section 4's four designs, keyed by processors per cluster."""


def implementation_for(processors: int) -> ClusterImplementation:
    """The paper's implementation for a cluster of ``processors``."""
    try:
        return CLUSTER_IMPLEMENTATIONS[processors]
    except KeyError:
        raise ValueError(
            f"the paper implements 1, 2, 4 or 8 processors per cluster, "
            f"not {processors}") from None


# ----------------------------------------------------------------------
# Parametric candidate areas (design-space search)
# ----------------------------------------------------------------------

_ASSOC_AREA_PER_DOUBLING = 0.03
"""Fractional cache-area surcharge per doubling of associativity
(duplicated tag comparators and way-select muxes alongside every set;
the data array itself does not grow)."""

_WRITE_BUFFER_ENTRY_MM2 = 0.05
"""Area of one additional write-buffer entry per SCC bank.  The 8 mm^2
SCC bank block already includes the paper's depth (the default
:class:`~repro.core.config.SystemConfig` ships four entries); deeper
buffers pay per entry per bank, shallower ones get the saving."""

_DEFAULT_WRITE_BUFFER_DEPTH = 4
_DEFAULT_BANKS_PER_PROCESSOR = 4


def candidate_cluster_area_mm2(processors: int, scc_bytes: int,
                               associativity: int = 1,
                               banks_per_processor: int =
                               _DEFAULT_BANKS_PER_PROCESSOR,
                               write_buffer_depth: int =
                               _DEFAULT_WRITE_BUFFER_DEPTH) -> float:
    """Cluster silicon area (all chips) of an arbitrary candidate.

    The paper only drew floorplans for its four designs; a design-space
    search needs a cost for every candidate it visits.  This model
    anchors on the quoted implementation for ``processors`` (so every
    paper design point returns exactly its quoted area) and adjusts the
    parametric components that differ:

    * the SCC/data-cache macro count for a different capacity;
    * the crossbar bundle area for a different bank provisioning;
    * a tag/way-mux surcharge for set associativity;
    * per-bank write-buffer entries beyond the block's built-in depth.

    ``protocol`` is deliberately absent: MESI versus MSI is a handful of
    state bits per line and controller states -- area noise at this
    scale (it trades bus traffic, not silicon).
    """
    impl = implementation_for(processors)
    if scc_bytes < 1:
        raise ValueError("scc_bytes must be positive")
    if associativity < 1:
        raise ValueError("associativity must be >= 1")
    if banks_per_processor < 1:
        raise ValueError("banks_per_processor must be >= 1")
    if write_buffer_depth < 1:
        raise ValueError("write_buffer_depth must be >= 1")

    block = DATA_CACHE_BLOCK if processors == 1 else SCC_BANK_BLOCK
    cache = cache_area_mm2(scc_bytes, block)
    delta_cache = cache - cache_area_mm2(impl.scc_bytes, block)
    delta_assoc = (cache * _ASSOC_AREA_PER_DOUBLING
                   * (associativity.bit_length() - 1))
    if processors == 1:
        # No ICN and no SCC write buffers on the uniprocessor chip.
        delta_icn = 0.0
        delta_wbuf = 0.0
    else:
        banks = banks_per_processor * processors
        banks_per_chip = max(1, banks // impl.chips)
        delta_icn = impl.chips * (
            crossbar_area_mm2(impl.ports_per_icn, banks_per_chip)
            - crossbar_area_mm2(impl.ports_per_icn, impl.banks))
        delta_wbuf = (banks * _WRITE_BUFFER_ENTRY_MM2
                      * (write_buffer_depth
                         - _DEFAULT_WRITE_BUFFER_DEPTH))
    area = (impl.cluster_area_mm2 + delta_cache + delta_icn
            + delta_assoc + delta_wbuf)
    # A candidate can undercut the drawn floorplan (smaller SCC,
    # fewer banks) but never below its cores-plus-overhead floor.
    floor = impl.cluster_area_mm2 - cache_area_mm2(impl.scc_bytes, block)
    return max(area, floor + block.area_mm2)
