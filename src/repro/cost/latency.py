"""Load-latency sensitivity model -- the pixstats equivalent (Table 5).

Section 5.1 compares cluster implementations whose pipelines have
different load latencies (2, 3 or 4 cycles) by running the benchmarks
through pixstats on a uniprocessor with a perfect memory system.  We
reproduce that with an analytic in-order pipeline model.

For a load whose result is first used ``d`` instructions later, an
in-order five-stage pipeline with load latency ``L`` stalls
``max(0, (L - 1) - d)`` cycles.  With a base CPI of one:

    time(L) = 1 + load_fraction * E[max(0, L - 1 - d)]

The compiler scheduled for three-cycle loads (Section 5.1), so distances
of at least one instruction are universal and ``time(2) = 1``; the
four-cycle numbers are pessimistic, exactly as the paper notes.  Each
benchmark is characterised by its load fraction and the probabilities of
use distances of exactly one and exactly two instructions; the shipped
instances are calibrated to reproduce Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["LoadLatencyModel", "PAPER_LATENCY_MODELS", "latency_factor",
           "PAPER_TABLE5"]


@dataclass(frozen=True)
class LoadLatencyModel:
    """Pipeline sensitivity of one benchmark to load latency."""

    name: str
    load_fraction: float
    """Loads per instruction."""

    p_distance_1: float
    """Probability a load's first use is exactly 1 instruction later."""

    p_distance_2: float
    """Probability the first use is exactly 2 instructions later."""

    def __post_init__(self):
        if not 0.0 < self.load_fraction < 1.0:
            raise ValueError("load_fraction must be in (0, 1)")
        if self.p_distance_1 < 0 or self.p_distance_2 < 0:
            raise ValueError("distance probabilities must be >= 0")
        if self.p_distance_1 + self.p_distance_2 > 1.0:
            raise ValueError("distance probabilities exceed 1")

    def stalls_per_load(self, load_latency: int) -> float:
        """Expected stall cycles per load at ``load_latency``."""
        if load_latency < 2:
            raise ValueError("a pipelined load takes at least 2 cycles")
        extra = load_latency - 2   # beyond the baseline 2-cycle load
        if extra == 0:
            return 0.0
        if extra == 1:
            return self.p_distance_1
        # extra == 2 (and beyond, conservatively): d=1 stalls extra,
        # d=2 stalls extra-1, etc.
        stalls = 0.0
        for distance, probability in ((1, self.p_distance_1),
                                      (2, self.p_distance_2)):
            stalls += probability * max(0, load_latency - 1 - distance)
        return stalls

    def relative_time(self, load_latency: int) -> float:
        """Execution time relative to the 2-cycle-load pipeline."""
        return 1.0 + self.load_fraction * self.stalls_per_load(load_latency)


#: Per-benchmark models calibrated to reproduce Table 5 exactly.
PAPER_LATENCY_MODELS: Dict[str, LoadLatencyModel] = {
    "barnes-hut": LoadLatencyModel("barnes-hut", load_fraction=0.25,
                                   p_distance_1=0.24, p_distance_2=0.04),
    "mp3d": LoadLatencyModel("mp3d", load_fraction=0.25,
                             p_distance_1=0.28, p_distance_2=0.00),
    "cholesky": LoadLatencyModel("cholesky", load_fraction=0.25,
                                 p_distance_1=0.28, p_distance_2=0.08),
    "multiprogramming": LoadLatencyModel("multiprogramming",
                                         load_fraction=0.25,
                                         p_distance_1=0.32,
                                         p_distance_2=0.04),
}

#: Table 5 as printed, for verification: benchmark -> (t2, t3, t4).
PAPER_TABLE5: Dict[str, Tuple[float, float, float]] = {
    "barnes-hut": (1.00, 1.06, 1.13),
    "mp3d": (1.00, 1.07, 1.14),
    "cholesky": (1.00, 1.07, 1.16),
    "multiprogramming": (1.00, 1.08, 1.17),
}


def latency_factor(benchmark: str, load_latency: int) -> float:
    """Table 5 lookup: relative uniprocessor time for a benchmark at a
    load latency, from the calibrated models."""
    try:
        model = PAPER_LATENCY_MODELS[benchmark]
    except KeyError:
        raise ValueError(f"no latency model for benchmark {benchmark!r}; "
                         f"known: {sorted(PAPER_LATENCY_MODELS)}") from None
    return model.relative_time(load_latency)
