"""SRAM block area and cache access-time models (Sections 4.2-4.3).

Two block designs appear in the paper's floorplans, both built on the
same SRAM cell:

* the **single-ported data-cache block**: 8 KB in 6.6 mm^2 at 0.4 um,
  including cache tags and the drivers that return data to the
  functional units; its 2.2 mm width includes the wiring channel that
  connects the bottom row of blocks to the core (Section 4.2);
* the **SCC bank block**: 8 mm^2 but only 4 KB, because each bank adds
  an arbitration unit, a write buffer, the stronger drivers needed for
  the long crossbar wires, and a second decoder so the block can be
  accessed from the top or the bottom (Section 4.3).

The access-time model answers the question that pins the uniprocessor
floorplan: the largest direct-mapped cache accessible within the 30-FO4
cycle is 64 KB.  We model direct-mapped access time as a logarithmic
decode term anchored to that statement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .technology import CYCLE_TIME_FO4

__all__ = ["SramBlock", "DATA_CACHE_BLOCK", "SCC_BANK_BLOCK",
           "access_time_fo4", "max_direct_mapped_bytes",
           "cache_area_mm2"]

KB = 1024


@dataclass(frozen=True)
class SramBlock:
    """One SRAM macro in the 0.4 um process."""

    name: str
    capacity_bytes: int
    area_mm2: float
    width_mm: float
    ported: int
    """Access ports per block (via the ICN for SCC banks)."""

    @property
    def mm2_per_kb(self) -> float:
        """Area efficiency (mm^2 per KB stored)."""
        return self.area_mm2 / (self.capacity_bytes / KB)


DATA_CACHE_BLOCK = SramBlock(
    name="single-ported data cache block",
    capacity_bytes=8 * KB, area_mm2=6.6, width_mm=2.2, ported=1)

SCC_BANK_BLOCK = SramBlock(
    name="SCC bank block (arbitration + write buffer + dual decode)",
    capacity_bytes=4 * KB, area_mm2=8.0, width_mm=2.2, ported=1)


def cache_area_mm2(capacity_bytes: int, block: SramBlock) -> float:
    """Area of a cache built from whole ``block`` macros."""
    if capacity_bytes < 1:
        raise ValueError("capacity must be positive")
    blocks = -(-capacity_bytes // block.capacity_bytes)  # ceil division
    return blocks * block.area_mm2


# ----------------------------------------------------------------------
# Direct-mapped access time
# ----------------------------------------------------------------------

_DECODE_SLOPE_FO4 = 3.0
"""Extra FO4 per doubling of capacity (decode + longer word/bit lines)."""

_BASE_FO4 = CYCLE_TIME_FO4 - _DECODE_SLOPE_FO4 * 6.0
"""Anchor: a 64 KB (2^6 KB) direct-mapped cache takes exactly the 30-FO4
cycle (Section 4.2), so the size-independent overhead (address drive,
sense, data return) is 30 - 3*log2(64)."""


_ASSOC_SLOPE_FO4 = 2.5
"""Extra FO4 per doubling of associativity (way muxing and the tag
compare moving onto the critical path) -- why the paper's designs stay
direct-mapped within the 30-FO4 cycle."""


def access_time_fo4(capacity_bytes: int, associativity: int = 1) -> float:
    """Access time of a cache, in FO4 inverter delays.

    Includes the functional units driving the address lines and the SRAM
    driving data back (the paper's definition of the 64 KB limit).
    Associativity beyond direct-mapped adds way-select delay.
    """
    if capacity_bytes < KB:
        raise ValueError("model is calibrated for caches >= 1 KB")
    if associativity < 1 or associativity & (associativity - 1):
        raise ValueError("associativity must be a power of two >= 1")
    return (_BASE_FO4 + _DECODE_SLOPE_FO4 * math.log2(capacity_bytes / KB)
            + _ASSOC_SLOPE_FO4 * math.log2(associativity))


def max_direct_mapped_bytes(budget_fo4: float = CYCLE_TIME_FO4) -> int:
    """Largest power-of-two direct-mapped cache within ``budget_fo4``."""
    if budget_fo4 < _BASE_FO4 + 0.0:
        raise ValueError("budget below the fixed access overhead")
    doublings = int((budget_fo4 - _BASE_FO4) / _DECODE_SLOPE_FO4)
    return KB << doublings if doublings >= 0 else KB
