"""Crossbar processor-cache interconnection network area (Section 4.3).

The ports of the SCC are implemented by a crossbar between processors
(plus the cache-controller refill port) and the interleaved banks.  Its
area is wire-dominated: each port contributes a bundle of address, data
and control wires running across every bank column.  The paper quotes
12.1 mm^2 for the two-processor chip's three-port, eight-bank crossbar
at a 1.6 um wire pitch, and roughly 12 mm^2 (versus 10 mm^2) for the
five-port variant of the four-processor building block.

The model here is the bundle model: ``area = banks x bank_span x ports x
wires_per_port x pitch``, calibrated so the (3 ports, 8 banks) point
reproduces the paper's 12.1 mm^2.
"""

from __future__ import annotations

__all__ = ["WIRES_PER_PORT", "DEFAULT_PITCH_UM", "crossbar_area_mm2"]

WIRES_PER_PORT = 160
"""Address + data + control wires per processor port (Section 4.4)."""

DEFAULT_PITCH_UM = 1.6
"""Wire pitch of the 0.4 um process's crossbar routing (Section 4.3)."""

_BANK_SPAN_MM = 1.9694
"""Horizontal span of one bank column crossed by the port bundles,
calibrated so that 3 ports x 8 banks at 1.6 um pitch = 12.1 mm^2."""


def crossbar_area_mm2(ports: int, banks: int,
                      pitch_um: float = DEFAULT_PITCH_UM,
                      wires_per_port: int = WIRES_PER_PORT) -> float:
    """Area of a ports-by-banks crossbar ICN in mm^2."""
    if ports < 1 or banks < 1:
        raise ValueError("ports and banks must be positive")
    if pitch_um <= 0:
        raise ValueError("pitch must be positive")
    bundle_height_mm = ports * wires_per_port * pitch_um * 1e-3
    return banks * _BANK_SPAN_MM * bundle_height_mm
