"""Cost/performance combination (Section 5, Tables 6 and 7).

Section 5 compares the cluster implementations by combining three
ingredients this module brings together:

1. the **performance surface** of each benchmark from the Section 3
   sweeps: execution time as a function of (processors per cluster,
   SCC size) -- produced here by :mod:`repro.experiments`;
2. the **load-latency correction** of Table 5
   (:mod:`repro.cost.latency`), because the two-processor chip has
   3-cycle loads and the MCM designs 4-cycle loads, which the Section 3
   simulations deliberately ignore;
3. the **area costs** of Section 4 (:mod:`repro.cost.floorplan`) for the
   cost/performance verdicts.

A performance surface is a mapping ``(processors_per_cluster,
scc_bytes) -> execution_time`` in simulated cycles, with SCC sizes in
*paper* bytes (the scale factor between paper and simulated cache sizes
is applied by the caller that built the surface).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from .floorplan import implementation_for
from .latency import latency_factor

__all__ = ["ComparisonCell", "ComparisonTable", "MissingSurfacePointError",
           "NORMALIZATION_CONFIG", "compare_configurations",
           "surface_from_results", "single_chip_table", "mcm_table",
           "cost_performance_gain"]

KB = 1024

Surface = Mapping[Tuple[int, int], float]
"""(processors per cluster, paper SCC bytes) -> simulated cycles."""

NORMALIZATION_CONFIG = (8, 512 * KB)
"""Every comparison is expressed relative to the best Section 3
configuration (eight processors per cluster, 512 KB SCC, uncorrected),
which reads on the paper's tables: its Table 7 entries sit a little
above 1."""

_NORMALIZATION_CONFIG = NORMALIZATION_CONFIG  # pre-optimizer spelling


class MissingSurfacePointError(KeyError):
    """A performance surface lacks a configuration a comparison needs.

    Surfaces used to be built only by the full-grid table pipelines, so
    a bare ``KeyError`` on a raw tuple was survivable; the design-space
    optimizer builds them programmatically from arbitrary candidate
    sets, where "which benchmark, which point, what *is* there" is the
    whole diagnosis.  Subclasses :class:`KeyError` so pre-existing
    ``except KeyError`` callers keep working.
    """

    def __init__(self, benchmark: str, point: Tuple[int, int],
                 role: str = "requested configuration"):
        super().__init__((benchmark, point))
        self.benchmark = benchmark
        self.point = point
        self.role = role

    def __str__(self) -> str:
        procs, scc_bytes = self.point
        return (f"surface for benchmark {self.benchmark!r} has no entry "
                f"for the {self.role} (procs_per_cluster={procs}, "
                f"scc={scc_bytes // KB} KB paper bytes)")


def _surface_time(surface: Surface, benchmark: str,
                  point: Tuple[int, int], role: str) -> float:
    try:
        return surface[point]
    except KeyError:
        raise MissingSurfacePointError(benchmark, point, role) from None


def surface_from_results(results: Mapping[Tuple[int, int], object]
                         ) -> Dict[Tuple[int, int], float]:
    """Execution-time surface from sweep results.

    ``results`` is a ``{(procs_per_cluster, paper_scc_bytes): RunStats}``
    mapping as returned by ``grid_sweep``/``SweepClient.result`` (plain
    cycle counts also pass through) -- the adapter the optimizer uses to
    feed candidate evaluations straight into this module.
    """
    return {point: float(getattr(stats, "execution_time", stats))
            for point, stats in results.items()}


@dataclass(frozen=True)
class ComparisonCell:
    """One benchmark x configuration entry of a comparison table."""

    benchmark: str
    processors_per_cluster: int
    scc_paper_bytes: int
    load_latency: int
    raw_time: float
    latency_factor: float
    normalized_time: float
    """Latency-corrected time relative to the normalization config."""


@dataclass(frozen=True)
class ComparisonTable:
    """A Table 6 / Table 7 style comparison."""

    configurations: Tuple[Tuple[int, int], ...]
    cells: Tuple[ComparisonCell, ...]

    def row(self, benchmark: str) -> List[ComparisonCell]:
        """The cells of one benchmark, in configuration order."""
        by_config = {(c.processors_per_cluster, c.scc_paper_bytes): c
                     for c in self.cells if c.benchmark == benchmark}
        missing = [config for config in self.configurations
                   if config not in by_config]
        if missing:
            raise MissingSurfacePointError(benchmark, missing[0],
                                           role="table configuration")
        return [by_config[config] for config in self.configurations]

    @property
    def benchmarks(self) -> List[str]:
        """Benchmarks in first-appearance order."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.benchmark not in seen:
                seen.append(cell.benchmark)
        return seen

    def mean_speedup(self, slower: Tuple[int, int],
                     faster: Tuple[int, int]) -> float:
        """Average (over benchmarks) of time(slower) / time(faster)."""
        ratios = []
        for benchmark in self.benchmarks:
            cells = {(c.processors_per_cluster, c.scc_paper_bytes): c
                     for c in self.cells if c.benchmark == benchmark}
            for config in (slower, faster):
                if config not in cells:
                    raise MissingSurfacePointError(
                        benchmark, config, role="speedup configuration")
            ratios.append(cells[slower].normalized_time
                          / cells[faster].normalized_time)
        return sum(ratios) / len(ratios)


def compare_configurations(
        surfaces: Mapping[str, Surface],
        configurations: Tuple[Tuple[int, int], ...],
        normalization: Tuple[int, int] = NORMALIZATION_CONFIG
        ) -> ComparisonTable:
    """Build a latency-corrected comparison over ``configurations``.

    ``surfaces`` maps benchmark name to its performance surface; each
    configuration is ``(processors_per_cluster, paper SCC bytes)``.
    Every surface must contain ``normalization`` (by default the paper's
    8-processor/512 KB reference) and every requested configuration;
    anything absent raises :class:`MissingSurfacePointError` naming the
    benchmark and point.
    """
    cells: List[ComparisonCell] = []
    for benchmark, surface in surfaces.items():
        base = _surface_time(surface, benchmark, normalization,
                             role="normalization configuration")
        for procs, scc_bytes in configurations:
            implementation = implementation_for(procs)
            factor = latency_factor(benchmark, implementation.load_latency)
            raw = _surface_time(surface, benchmark, (procs, scc_bytes),
                                role="requested configuration")
            cells.append(ComparisonCell(
                benchmark=benchmark,
                processors_per_cluster=procs,
                scc_paper_bytes=scc_bytes,
                load_latency=implementation.load_latency,
                raw_time=raw,
                latency_factor=factor,
                normalized_time=raw * factor / base,
            ))
    return ComparisonTable(configurations=configurations,
                           cells=tuple(cells))


def single_chip_table(surfaces: Mapping[str, Surface]) -> ComparisonTable:
    """Table 6: one processor + 64 KB cache vs two processors + 32 KB SCC
    (both single-chip cluster implementations)."""
    return compare_configurations(
        surfaces, configurations=((1, 64 * KB), (2, 32 * KB)))


def mcm_table(surfaces: Mapping[str, Surface]) -> ComparisonTable:
    """Table 7: the MCM clusters -- four processors + 64 KB SCC and eight
    processors + 128 KB SCC (both with four-cycle loads)."""
    return compare_configurations(
        surfaces, configurations=((4, 64 * KB), (8, 128 * KB)))


def cost_performance_gain(speedup: float, slower_procs: int = 1,
                          faster_procs: int = 2) -> float:
    """Cost/performance improvement of the faster design.

    The paper's Section 5.1 arithmetic: the two-processor chip is 70%
    faster and 37% larger, so cost/performance improves by
    1.70 / 1.37 - 1 = 24%.
    """
    slower_area = implementation_for(slower_procs).chip_area_mm2
    faster_area = implementation_for(faster_procs).chip_area_mm2
    return speedup / (faster_area / slower_area) - 1.0
