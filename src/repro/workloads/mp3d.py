"""Instrumented MP3D rarefied-flow simulation (SPLASH equivalent).

Section 2.2.1's second parallel benchmark: a particle-based Monte Carlo
simulation of rarefied hypersonic flow around an object in a wind tunnel.
The SPLASH code's defining memory behaviour -- and the reason the paper
uses it -- is its *lack of locality*: particles are statically assigned to
processors but fly freely through the discretised wind tunnel, so the
space-cell accumulators they update are written by every processor in the
machine.  On snoopy machines that write sharing makes invalidation misses
the limiting factor (Section 3.1.2); on the clustered architecture the
invalidation traffic between clusters stays flat as processors are added
to a cluster, because cluster-mates coalesce their updates in the shared
SCC copy.

This module implements the simulation for real (particles move ballistic
paths, reflect off the tunnel walls and the wedge, and collide
probabilistically with partners in their cell) and emits every shared
reference:

* per particle per step: read position/velocity, write position, read and
  write the space-cell accumulator record (the migratory data);
* collisions read-modify-write the *partner particle's* record, which may
  belong to any processor -- the classic MP3D cross-processor traffic;
* global step counters are updated under a lock by processor 0.

Like the paper's runs, particles are dealt round-robin (no locality by
construction) and each step ends at a barrier.
"""

from __future__ import annotations

from typing import Dict, Generator, List

import numpy as np

from ..core.config import SystemConfig
from ..trace.events import Barrier, Compute, LockAcquire, LockRelease, Read, Write
from ..trace.packed import (OP_COMPUTE, OP_READ, OP_READ_SPAN, OP_WRITE,
                            OP_WRITE_SPAN, PackedChunk, decode_events)
from .base import TracedApplication
from .memory import SharedHeap

__all__ = ["MP3D"]

# Record layouts.
_PARTICLE_RECORD = 48   # pos @0 (24 B), vel @24 (24 B)
_PARTICLE_POS = 0
_PARTICLE_VEL = 24
_CELL_RECORD = 32       # density/momentum accumulators + partner slot
_CELL_ACCUM = 0
_CELL_PARTNER = 24      # slot remembering the last particle seen (for
                        # collision pairing), as in the SPLASH code
_TABLE_SIZE = 2048      # read-only collision cross-section table (bytes)

_MOVE_COMPUTE = 60      # ballistic move + boundary handling
_COLLIDE_COMPUTE = 60   # collision mechanics
_ACCUM_COMPUTE = 15     # cell accumulator update

_GLOBAL_LOCK = 0


class MP3D(TracedApplication):
    """MP3D wind-tunnel simulation, instrumented for tracing.

    The paper ran 10,000 particles for 5 steps; the reproduction default
    is scaled down (DESIGN.md's scaling note).  ``grid`` is the wind
    tunnel discretisation ``(nx, ny, nz)``; a wedge occupying the centre
    of the tunnel reflects particles, as in the original benchmark.
    """

    name = "mp3d"

    def __init__(self, n_particles: int = 900, steps: int = 5,
                 grid=(16, 16, 8), collision_probability: float = 0.2,
                 seed: int = 7):
        if n_particles < 1:
            raise ValueError("need at least one particle")
        if steps < 1:
            raise ValueError("need at least one step")
        if any(dim < 2 for dim in grid):
            raise ValueError("grid dimensions must each be >= 2")
        if not 0.0 <= collision_probability <= 1.0:
            raise ValueError("collision_probability must be in [0, 1]")
        self.n_particles = n_particles
        self.steps = steps
        self.grid = tuple(grid)
        self.collision_probability = collision_probability
        self.seed = seed

    def __repr__(self) -> str:
        return (f"MP3D(n_particles={self.n_particles}, steps={self.steps}, "
                f"grid={self.grid}, "
                f"collision_probability={self.collision_probability}, "
                f"seed={self.seed})")

    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        run = _MP3DRun(self, config)
        return {proc: run.process(proc)
                for proc in range(config.total_processors)}


class _MP3DRun:
    """Shared state of one MP3D run."""

    def __init__(self, app: MP3D, config: SystemConfig):
        self.app = app
        self.config = config
        self.n_procs = config.total_processors
        nx, ny, nz = app.grid
        self.n_cells = nx * ny * nz
        rng = np.random.default_rng(app.seed)
        # Particles enter from the left with a strong +x drift (hypersonic
        # free stream) plus thermal scatter.
        self.pos = rng.uniform(0.0, 1.0, size=(app.n_particles, 3))
        self.pos[:, 0] *= 0.5            # start in the left half
        self.vel = rng.normal(scale=0.015, size=(app.n_particles, 3))
        self.vel[:, 0] += 0.03           # free-stream drift
        # Per-particle RNGs would be slow; draw per-step random numbers in
        # bulk, deterministically.
        self._rng = rng
        heap = SharedHeap()
        self.particle_region = heap.alloc_array(
            "particles", app.n_particles, _PARTICLE_RECORD)
        self.cell_region = heap.alloc_array(
            "space", self.n_cells, _CELL_RECORD)
        self.globals_region = heap.alloc("globals", 64)
        # Read-only collision cross-section lookup table (read-shared by
        # every processor; its lines live SHARED in every SCC).
        self.table_region = heap.alloc("xsection", _TABLE_SIZE)
        # Last particle index seen in each cell (collision partner slot).
        self.cell_partner: List[int] = [-1] * self.n_cells
        # Static round-robin particle assignment: no locality, as in the
        # SPLASH code.
        self.assignment = [
            list(range(proc, app.n_particles, self.n_procs))
            for proc in range(self.n_procs)
        ]
        # Pre-drawn collision coin flips, one per particle per step.
        self.collision_draw = rng.uniform(
            size=(app.steps, app.n_particles))

    # -- geometry -----------------------------------------------------------

    def cell_index_of(self, particle: int) -> int:
        nx, ny, nz = self.app.grid
        x = min(int(self.pos[particle, 0] * nx), nx - 1)
        y = min(int(self.pos[particle, 1] * ny), ny - 1)
        z = min(int(self.pos[particle, 2] * nz), nz - 1)
        return (x * ny + y) * nz + z

    def _in_wedge(self, particle: int) -> bool:
        """The wedge model: a ramp in the middle of the tunnel floor."""
        x, y, _ = self.pos[particle]
        return 0.45 <= x <= 0.75 and y <= (x - 0.45) * 1.2

    # -- process generators ---------------------------------------------------

    def process(self, proc: int) -> Generator:
        mine = self.assignment[proc]
        for step in range(self.app.steps):
            yield from self._move_phase(proc, mine, step)
            yield Barrier(0, self.n_procs)
            if proc == 0:
                yield from self._bookkeeping()
            yield Barrier(1, self.n_procs)

    def _flush(self, buf: List[int]) -> Generator:
        """Yield a built-up packed buffer in the form the app is set to."""
        if not buf:
            return
        if self.app.packed:
            yield PackedChunk(buf)
        else:
            yield from decode_events(buf)

    def _move_phase(self, proc: int, mine: List[int],
                    step: int) -> Generator:
        """One step's worth of particle moves, emitted as packed chunks.

        Chunk safety (see repro.trace.packed): the racy state here is
        ``cell_partner`` (read to pick a collision partner, written after)
        and particle velocities (a collision writes the *partner's*
        record, which any processor may own).  Each chunk therefore ends
        exactly where the event-at-a-time generator resumed to touch that
        state: after the move compute (``_advance``), after the
        partner-slot read (``partner = cell_partner[cell]``), after the
        collide compute (``_collide``), and after the collide writes
        (``cell_partner[cell] = particle``, whose trailing partner-slot
        write is carried into the next particle's first chunk).  Within a
        chunk only this particle's own addresses -- functions of its index
        and its own position -- are touched.
        """
        pbase = self.particle_region.base
        cbase = self.cell_region.base
        tbase = self.table_region.base
        cell_partner = self.cell_partner
        draws = self.collision_draw
        p_col = self.app.collision_probability
        buf: List[int] = []
        for particle in mine:
            # Load the particle (position and velocity are contiguous, so
            # one span covers all six fields), look up the read-only
            # cross-section table, and charge the move.
            paddr = pbase + particle * _PARTICLE_RECORD
            table_slot = (particle * 37 + step * 11) % (_TABLE_SIZE // 8)
            buf += (OP_READ_SPAN, paddr + _PARTICLE_POS, 48, 8,
                    OP_READ, tbase + table_slot * 8,
                    OP_READ, tbase + (table_slot * 8 + 256) % _TABLE_SIZE,
                    OP_COMPUTE, _MOVE_COMPUTE)
            yield from self._flush(buf)
            self._advance(particle)
            # Write the moved position; update the space-cell accumulators
            # (globally shared, migratory data -- the source of MP3D's
            # invalidation traffic); read the collision-partner slot.
            cell = self.cell_index_of(particle)
            caddr = cbase + cell * _CELL_RECORD
            buf = [OP_WRITE_SPAN, paddr + _PARTICLE_POS, 24, 8,
                   OP_READ_SPAN, caddr + _CELL_ACCUM, 24, 8,
                   OP_COMPUTE, _ACCUM_COMPUTE,
                   OP_WRITE_SPAN, caddr + _CELL_ACCUM, 24, 8,
                   OP_READ, caddr + _CELL_PARTNER]
            yield from self._flush(buf)
            # Collision: pair with the last particle that visited this
            # cell, whoever owns it.
            partner = cell_partner[cell]
            if (partner >= 0 and partner != particle
                    and draws[step, particle] < p_col):
                vaddr = pbase + partner * _PARTICLE_RECORD + _PARTICLE_VEL
                myvel = paddr + _PARTICLE_VEL
                buf = [OP_READ_SPAN, vaddr, 24, 8,
                       OP_COMPUTE, _COLLIDE_COMPUTE]
                yield from self._flush(buf)
                self._collide(particle, partner)
                buf = [OP_WRITE, vaddr, OP_WRITE, myvel,
                       OP_WRITE, vaddr + 8, OP_WRITE, myvel + 8,
                       OP_WRITE, vaddr + 16, OP_WRITE, myvel + 16]
                yield from self._flush(buf)
            cell_partner[cell] = particle
            buf = [OP_WRITE, caddr + _CELL_PARTNER]
        yield from self._flush(buf)

    def _bookkeeping(self) -> Generator:
        """Per-step global statistics update (lock-protected)."""
        yield LockAcquire(_GLOBAL_LOCK)
        yield Read(self.globals_region.addr(0))
        yield Compute(20)
        yield Write(self.globals_region.addr(0))
        yield LockRelease(_GLOBAL_LOCK)

    # -- physics --------------------------------------------------------------

    def _advance(self, particle: int) -> None:
        """Ballistic move with reflecting walls and the wedge."""
        pos = self.pos[particle]
        vel = self.vel[particle]
        pos += vel
        # Reflect off tunnel walls in y and z; recycle in x (wind tunnel).
        for axis in (1, 2):
            if pos[axis] < 0.0:
                pos[axis] = -pos[axis]
                vel[axis] = -vel[axis]
            elif pos[axis] > 1.0:
                pos[axis] = 2.0 - pos[axis]
                vel[axis] = -vel[axis]
        if pos[0] > 1.0:
            pos[0] -= 1.0          # re-enter at the inlet
        elif pos[0] < 0.0:
            pos[0] += 1.0
        if self._in_wedge(particle):
            vel[0] = -abs(vel[0]) * 0.8   # bounce back off the ramp
            vel[1] = abs(vel[1]) + 0.02

    def _collide(self, particle: int, partner: int) -> None:
        """Hard-sphere-like velocity exchange with mixing."""
        v1 = self.vel[particle].copy()
        v2 = self.vel[partner].copy()
        self.vel[particle] = 0.5 * (v1 + v2) + 0.5 * (v2 - v1)
        self.vel[partner] = 0.5 * (v1 + v2) + 0.5 * (v1 - v2)
