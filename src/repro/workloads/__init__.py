"""Instrumented workloads: the SPLASH applications and the SPEC92-style
multiprogramming mix the paper evaluates (Sections 2.2-2.3)."""

from .barnes_hut import BarnesHut
from .base import TracedApplication
from .cholesky import Cholesky
from .matrices import (SparsePattern, Supernode, bcsstk_like,
                       elimination_tree, supernodes, symbolic_factor)
from .memory import ArrayRegion, HeapExhaustedError, Region, SharedHeap
from .mp3d import MP3D
from .multiprog import MultiprogrammingWorkload
from .spec import SPEC92_PROFILES, SpecApp, SpecProfile, spec92_workload
from .sync import SyncNamespace

__all__ = [
    "BarnesHut", "TracedApplication", "Cholesky",
    "SparsePattern", "Supernode", "bcsstk_like", "elimination_tree",
    "supernodes", "symbolic_factor",
    "ArrayRegion", "HeapExhaustedError", "Region", "SharedHeap",
    "MP3D", "MultiprogrammingWorkload",
    "SPEC92_PROFILES", "SpecApp", "SpecProfile", "spec92_workload",
    "SyncNamespace",
]
