"""Application framework for instrumented workloads.

A workload is anything that can hand the simulation driver one trace-event
generator per processor (:class:`TracedApplication`).  The SPLASH
reimplementations in this package run their *real* algorithms inside those
generators -- the octree is actually built, the particles actually move,
the matrix is actually factored -- and every shared-data touch is emitted
as a :class:`~repro.trace.events.Read`/:class:`~repro.trace.events.Write`
at the address the data would occupy in the simulated shared heap.  That
is the property that makes the reproduced cache behaviour (prefetching,
invalidations, interference) come from the applications rather than from
hand-tuned statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, Iterator, Optional

from ..core.config import SystemConfig
from ..trace.events import Compute, Read, TraceEvent, Write

__all__ = ["TracedApplication", "read_record", "write_record",
           "read_span", "write_span"]


class TracedApplication(ABC):
    """Base class for workloads the simulation driver can run.

    Subclasses implement :meth:`processes`, returning one generator per
    machine-global processor id.  Implementations must be deterministic
    given their constructor arguments (seeded RNGs only) so experiments
    are reproducible; the *interleaving* still varies with the machine
    configuration through timing feedback.
    """

    name: str = "application"

    packed: bool = True
    """Emit :class:`~repro.trace.packed.PackedChunk` runs where the
    workload's chunk-validity analysis allows it.  ``False`` forces the
    one-object-per-event generator path everywhere (the golden-equivalence
    suite flips this to prove both paths produce identical statistics)."""

    deterministic_stream: bool = False
    """Capability flag: ``True`` asserts the per-process event *content*
    (not its interleaving) is independent of the machine configuration, so
    a stream recorded on one configuration replays exactly on any other.
    The SPLASH kernels here race on locks and task queues, which feeds
    timing back into the data each process touches, so none of them can
    claim it for the general case; see :meth:`stream_is_deterministic`."""

    @abstractmethod
    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        """Map each processor id to its trace-event generator."""

    def stream_is_deterministic(self, config: SystemConfig) -> bool:
        """Whether a recording made on ``config`` replays bit-identically
        on any configuration with the same processor layout.

        A single-processor machine has no interleaving at all, so every
        (deterministic-by-construction) workload qualifies; beyond that a
        workload must opt in via :attr:`deterministic_stream`.
        """
        return self.deterministic_stream or config.total_processors == 1

    def trace_signature(self, config: SystemConfig) -> Optional[str]:
        """Key identifying the recorded stream for the trace cache, or
        ``None`` when the workload cannot be keyed (e.g. it was built
        around un-reconstructable objects).  Two configurations with equal
        signatures replay each other's recordings -- so the signature must
        cover the workload identity and every parameter that feeds event
        content, plus the processor layout.
        """
        if type(self).__repr__ is TracedApplication.__repr__:
            # The parameterless default repr cannot distinguish two
            # instances of the same workload; refuse to key the cache.
            return None
        return (f"{type(self).__name__}|{self!r}|c{config.clusters}"
                f"|p{config.processors_per_cluster}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def read_span(base: int, size: int, stride: int = 8) -> Iterator[TraceEvent]:
    """Read ``size`` bytes starting at ``base``, one load per ``stride``.

    Models a streaming read of a data structure (e.g. one column of a
    factor, one particle record).
    """
    for offset in range(0, size, stride):
        yield Read(base + offset)


def write_span(base: int, size: int, stride: int = 8) -> Iterator[TraceEvent]:
    """Store over ``size`` bytes starting at ``base``."""
    for offset in range(0, size, stride):
        yield Write(base + offset)


def read_record(addr: int, size: int, compute: int = 0,
                stride: int = 8) -> Iterator[TraceEvent]:
    """Read a record and optionally charge ``compute`` cycles after it."""
    yield from read_span(addr, size, stride)
    if compute:
        yield Compute(compute)


def write_record(addr: int, size: int, compute: int = 0,
                 stride: int = 8) -> Iterator[TraceEvent]:
    """Write a record and optionally charge ``compute`` cycles after it."""
    yield from write_span(addr, size, stride)
    if compute:
        yield Compute(compute)
