"""Application framework for instrumented workloads.

A workload is anything that can hand the simulation driver one trace-event
generator per processor (:class:`TracedApplication`).  The SPLASH
reimplementations in this package run their *real* algorithms inside those
generators -- the octree is actually built, the particles actually move,
the matrix is actually factored -- and every shared-data touch is emitted
as a :class:`~repro.trace.events.Read`/:class:`~repro.trace.events.Write`
at the address the data would occupy in the simulated shared heap.  That
is the property that makes the reproduced cache behaviour (prefetching,
invalidations, interference) come from the applications rather than from
hand-tuned statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, Iterator

from ..core.config import SystemConfig
from ..trace.events import Compute, Read, TraceEvent, Write

__all__ = ["TracedApplication", "read_record", "write_record",
           "read_span", "write_span"]


class TracedApplication(ABC):
    """Base class for workloads the simulation driver can run.

    Subclasses implement :meth:`processes`, returning one generator per
    machine-global processor id.  Implementations must be deterministic
    given their constructor arguments (seeded RNGs only) so experiments
    are reproducible; the *interleaving* still varies with the machine
    configuration through timing feedback.
    """

    name: str = "application"

    @abstractmethod
    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        """Map each processor id to its trace-event generator."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def read_span(base: int, size: int, stride: int = 8) -> Iterator[TraceEvent]:
    """Read ``size`` bytes starting at ``base``, one load per ``stride``.

    Models a streaming read of a data structure (e.g. one column of a
    factor, one particle record).
    """
    for offset in range(0, size, stride):
        yield Read(base + offset)


def write_span(base: int, size: int, stride: int = 8) -> Iterator[TraceEvent]:
    """Store over ``size`` bytes starting at ``base``."""
    for offset in range(0, size, stride):
        yield Write(base + offset)


def read_record(addr: int, size: int, compute: int = 0,
                stride: int = 8) -> Iterator[TraceEvent]:
    """Read a record and optionally charge ``compute`` cycles after it."""
    yield from read_span(addr, size, stride)
    if compute:
        yield Compute(compute)


def write_record(addr: int, size: int, compute: int = 0,
                 stride: int = 8) -> Iterator[TraceEvent]:
    """Write a record and optionally charge ``compute`` cycles after it."""
    yield from write_span(addr, size, stride)
    if compute:
        yield Compute(compute)
