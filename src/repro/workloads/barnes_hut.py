"""Instrumented Barnes-Hut N-body simulation (SPLASH equivalent).

Section 2.2.1's first parallel benchmark: a hierarchical N-body code that
builds an octree over the bodies each time step and computes forces by
traversing it with an opening criterion.  This module really implements
the algorithm -- bodies move under gravity, the octree is rebuilt from the
new positions every step -- and emits a trace event for every shared-data
reference, so the locality phenomena the paper analyses arise from the
data structures themselves:

* bodies are partitioned among processors in **tree order** (the in-order
  walk of the octree's leaves), so processors with adjacent ids work on
  spatially adjacent bodies and "traverse the same regions of the tree at
  around the same times" (Section 3.1.1) -- the source of the
  intra-cluster prefetching effect;
* the octree is built **in parallel** with hand-over-hand per-cell locks,
  as in the SPLASH code; centres of mass are computed level-parallel,
  deepest level first;
* cells are read-shared during force computation and each body's
  accelerations/positions are written only by its owner, so invalidation
  traffic does not grow with processors per cluster.

Scaled down from the paper's 1024 bodies to keep pure-Python simulation
tractable; the footprint/cache-size ratio is preserved by scaling the SCC
ladder by the matching factor (see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional, Sequence

import numpy as np

from ..core.config import SystemConfig
from ..trace.events import Barrier, Compute, LockAcquire, LockRelease, Read, Write
from ..trace.packed import (OP_COMPUTE, OP_READ, OP_WRITE, PackedChunk,
                            decode_events)
from .base import TracedApplication
from .memory import SharedHeap

__all__ = ["BarnesHut", "Body", "Cell"]

# Record layouts (byte offsets within a record).
_BODY_RECORD = 96      # pos @0 (24 B), vel @32 (24 B), acc @64 (24 B), mass @88
_BODY_POS = 0
_BODY_VEL = 32
_BODY_ACC = 64
_CELL_RECORD = 112     # centre of mass @0 (24 B), mass @24, children @48 (64 B)
_CELL_COM = 0
_CELL_CHILDREN = 48

# Cycle costs for the arithmetic between references.
_INTERACTION_COMPUTE = 22   # one body-cell or body-body interaction
_OPEN_TEST_COMPUTE = 8      # evaluating the opening criterion
_UPDATE_COMPUTE = 16        # leapfrog integration of one body
_INSERT_COMPUTE = 6         # one level of tree descent during insertion
_PARTITION_COMPUTE = 40     # per-body share of the partitioning pass

# Lock-id namespace: cell locks start here (cell index + base).
_CELL_LOCK_BASE = 100


class Body:
    """One simulated body (state lives here; the trace names its record)."""

    __slots__ = ("index", "pos", "vel", "acc", "mass", "cost")

    def __init__(self, index: int, pos, vel, mass: float):
        self.index = index
        self.pos = pos          # length-3 list of floats
        self.vel = vel
        self.acc = [0.0, 0.0, 0.0]
        self.mass = mass
        self.cost = 1           # interactions in the last force phase


class Cell:
    """One octree cell; children are Body, Cell or None."""

    __slots__ = ("index", "centre", "half", "children", "com", "mass",
                 "depth")

    def __init__(self, index: int, centre, half: float, depth: int):
        self.index = index
        self.centre = centre
        self.half = half
        self.depth = depth
        self.children: List[Optional[object]] = [None] * 8
        self.com = [0.0, 0.0, 0.0]
        self.mass = 0.0

    def octant_of(self, pos) -> int:
        """Child slot for a position (one bit per axis)."""
        octant = 0
        for axis in range(3):
            if pos[axis] >= self.centre[axis]:
                octant |= 1 << axis
        return octant

    def child_centre(self, octant: int):
        """Centre of the child cell in ``octant``."""
        quarter = self.half / 2.0
        return [self.centre[axis]
                + (quarter if octant & (1 << axis) else -quarter)
                for axis in range(3)]


class BarnesHut(TracedApplication):
    """Barnes-Hut galaxy simulation, instrumented for tracing.

    ``n_bodies`` and ``steps`` default to the reproduction scale (the
    paper ran 1024 bodies for many steps); ``theta`` is the opening
    criterion, ``softening`` the Plummer softening length.
    """

    name = "barnes-hut"

    def __init__(self, n_bodies: int = 256, steps: int = 2,
                 theta: float = 0.55, dt: float = 0.025,
                 softening: float = 0.05, seed: int = 42):
        if n_bodies < 2:
            raise ValueError("need at least two bodies")
        if steps < 1:
            raise ValueError("need at least one step")
        if not 0.1 <= theta <= 2.0:
            raise ValueError("theta outside a sensible range")
        self.n_bodies = n_bodies
        self.steps = steps
        self.theta = theta
        self.dt = dt
        self.softening = softening
        self.seed = seed

    def __repr__(self) -> str:
        return (f"BarnesHut(n_bodies={self.n_bodies}, steps={self.steps}, "
                f"theta={self.theta}, dt={self.dt}, "
                f"softening={self.softening}, seed={self.seed})")

    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        run = _BarnesHutRun(self, config)
        return {proc: run.process(proc)
                for proc in range(config.total_processors)}


class _BarnesHutRun:
    """Shared state of one simulation run (one per machine configuration)."""

    def __init__(self, app: BarnesHut, config: SystemConfig):
        self.app = app
        self.config = config
        self.n_procs = config.total_processors
        rng = np.random.default_rng(app.seed)
        self.bodies = _plummer_bodies(app.n_bodies, rng)
        heap = SharedHeap()
        self.body_region = heap.alloc_array(
            "bodies", app.n_bodies, _BODY_RECORD)
        self.cell_region = heap.alloc_array(
            "cells", 4 * app.n_bodies, _CELL_RECORD)
        self.root: Optional[Cell] = None
        # Per-processor cell-index pools so parallel insertion needs no
        # global allocation lock (the SPLASH code uses per-process pools
        # the same way).
        pool = self.cell_region.count // self.n_procs
        self._cell_pool_next = [p * pool for p in range(self.n_procs)]
        self._cell_pool_end = [(p + 1) * pool for p in range(self.n_procs)]
        # Partition of bodies (tree order), recomputed after each build.
        # A quiet pre-pass (no trace events) seeds per-body interaction
        # costs so even the first measured step is cost-balanced -- the
        # equivalent of SPLASH's unmeasured warm-up steps before its
        # costzones partitioner reaches steady state.
        self._seed_costs()
        self.assignments: List[List[Body]] = _cluster_partition(
            list(self.bodies), config)
        self.levels: List[List[Cell]] = []

    # -- address helpers ------------------------------------------------

    def body_addr(self, body: Body, field: int) -> int:
        return self.body_region.record(body.index, field)

    def cell_addr(self, cell: Cell, field: int) -> int:
        return self.cell_region.record(cell.index, field)

    @staticmethod
    def cell_lock(cell: Cell) -> int:
        return _CELL_LOCK_BASE + cell.index

    def _flush(self, buf: List[int]) -> Generator:
        """Yield a built-up packed buffer in the form the app is set to.

        Chunk safety (see repro.trace.packed): the summarize, force and
        update phases only read tree/body state that no other process
        mutates between the enclosing barriers, and their own Python-side
        mutations (cell.com, body.acc, body.vel/pos, body.cost) are read
        by other processes only after a later barrier -- so computing a
        whole phase's events up front observes exactly the values the
        event-at-a-time path would.  The *insert* phase races on per-cell
        locks and must keep yielding objects; it never comes through here.
        """
        if not buf:
            return
        if self.app.packed:
            yield PackedChunk(buf)
        else:
            yield from decode_events(buf)

    # -- process generators ----------------------------------------------

    def process(self, proc: int) -> Generator:
        """The event stream of processor ``proc``.

        Per step: processor 0 seeds a fresh root; everyone inserts its
        bodies in parallel under per-cell locks; centres of mass are
        computed level-parallel; processor 0 re-partitions in tree order;
        then the parallel force and integration phases.
        """
        n = self.n_procs
        for _step in range(self.app.steps):
            yield Barrier(0, n)
            if proc == 0:
                self._reset_tree()
                yield Write(self.cell_addr(self.root, _CELL_CHILDREN))
            yield Barrier(1, n)
            yield from self._insert_phase(proc)
            yield Barrier(2, n)
            if proc == 0:
                self._collect_levels()
            yield Barrier(3, n)
            yield from self._summarize_phase(proc)
            if proc == 0:
                self._partition()
            yield Compute(_PARTITION_COMPUTE * len(self.assignments[proc]))
            yield Barrier(4, n)
            yield from self._force_phase(proc)
            yield Barrier(5, n)
            yield from self._update_phase(proc)
            yield Barrier(6, n)

    def _seed_costs(self) -> None:
        """Quietly (no events) build one tree and count interactions per
        body, so the first measured step starts cost-balanced."""
        root = _quiet_build(self.bodies)
        theta2 = self.app.theta ** 2
        eps2 = self.app.softening ** 2
        for body in self.bodies:
            cost = 0
            stack: List[object] = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, Body):
                    if node is not body:
                        cost += 1
                    continue
                dist2 = _distance2(body.pos, node.com) + eps2
                if (2.0 * node.half) ** 2 < dist2 * theta2:
                    cost += 1
                    continue
                for child in node.children:
                    if child is not None:
                        stack.append(child)
            body.cost = max(cost, 1)

    # -- tree construction -------------------------------------------------

    def _reset_tree(self) -> None:
        pool = self.cell_region.count // self.n_procs
        self._cell_pool_next = [p * pool for p in range(self.n_procs)]
        # The root comes out of processor 0's pool.
        centre, half = _bounding_cube(self.bodies)
        self.root = self._new_cell(0, centre, half, depth=0)

    def _new_cell(self, proc: int, centre, half: float, depth: int) -> Cell:
        index = self._cell_pool_next[proc]
        if index >= self._cell_pool_end[proc]:
            raise RuntimeError(f"cell pool of processor {proc} exhausted")
        self._cell_pool_next[proc] = index + 1
        return Cell(index, centre, half, depth)

    def _insert_phase(self, proc: int) -> Generator:
        for body in self.assignments[proc]:
            yield Read(self.body_addr(body, _BODY_POS))
            yield from self._insert(proc, body)

    def _insert(self, proc: int, body: Body) -> Generator:
        """Insert ``body`` with optimistic descent and per-cell locks.

        As in the SPLASH code, the descent reads child slots without
        locking; a lock is taken only on the cell whose slot must be
        mutated, and the slot is re-read under the lock in case another
        processor raced in (in which case the descent resumes from the
        freshly installed subtree).  Cells never move or disappear, so
        the optimistic read is safe.
        """
        cell = self.root
        while True:
            octant = cell.octant_of(body.pos)
            yield Compute(_INSERT_COMPUTE)
            yield Read(self.cell_addr(cell, _CELL_CHILDREN + octant * 8))
            child = cell.children[octant]
            if isinstance(child, Cell):
                cell = child
                continue
            # Slot is empty or holds a body: mutate under the cell lock.
            yield LockAcquire(self.cell_lock(cell))
            yield Read(self.cell_addr(cell, _CELL_CHILDREN + octant * 8))
            child = cell.children[octant]
            if isinstance(child, Cell):
                # Raced: someone installed a subtree here meanwhile.
                yield LockRelease(self.cell_lock(cell))
                cell = child
                continue
            if child is None:
                cell.children[octant] = body
                yield Write(self.cell_addr(cell,
                                           _CELL_CHILDREN + octant * 8))
                yield LockRelease(self.cell_lock(cell))
                return
            # The slot holds a body: split it into a subcell and resume
            # the descent inside the new subcell.
            subcell = self._new_cell(proc, cell.child_centre(octant),
                                     cell.half / 2.0, cell.depth + 1)
            sub_octant = subcell.octant_of(child.pos)
            subcell.children[sub_octant] = child
            yield Read(self.body_addr(child, _BODY_POS))
            yield Write(self.cell_addr(subcell,
                                       _CELL_CHILDREN + sub_octant * 8))
            cell.children[octant] = subcell
            yield Write(self.cell_addr(cell, _CELL_CHILDREN + octant * 8))
            yield LockRelease(self.cell_lock(cell))
            cell = subcell

    def _collect_levels(self) -> None:
        """Group cells by depth for the level-parallel summarize phase."""
        levels: List[List[Cell]] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            while len(levels) <= cell.depth:
                levels.append([])
            levels[cell.depth].append(cell)
            for child in cell.children:
                if isinstance(child, Cell):
                    stack.append(child)
        self.levels = levels

    def _summarize_phase(self, proc: int) -> Generator:
        """Centre-of-mass computation, deepest level first.

        Within a level cells are independent, so each processor takes a
        contiguous block (DFS collection order is roughly spatial order,
        which keeps a cluster's cells spatially close); a barrier
        separates levels because parents read their children's results.
        """
        n = self.n_procs
        for depth in range(len(self.levels) - 1, -1, -1):
            level = self.levels[depth]
            lo = (proc * len(level)) // n
            hi = ((proc + 1) * len(level)) // n
            buf: List[int] = []
            for cell in level[lo:hi]:
                self._summarize_cell(cell, buf)
            yield from self._flush(buf)
            yield Barrier(7, n)

    def _summarize_cell(self, cell: Cell, buf: List[int]) -> None:
        mass = 0.0
        com = [0.0, 0.0, 0.0]
        for child in cell.children:
            if child is None:
                continue
            if isinstance(child, Cell):
                buf.append(OP_READ)
                buf.append(self.cell_addr(child, _CELL_COM))
                child_mass, child_com = child.mass, child.com
            else:
                buf.append(OP_READ)
                buf.append(self.body_addr(child, _BODY_POS))
                child_mass, child_com = child.mass, child.pos
            mass += child_mass
            for axis in range(3):
                com[axis] += child_mass * child_com[axis]
        if mass > 0.0:
            for axis in range(3):
                com[axis] /= mass
        cell.mass = mass
        cell.com = com
        buf.append(OP_WRITE)
        buf.append(self.cell_addr(cell, _CELL_COM))
        buf.append(OP_COMPUTE)
        buf.append(_INTERACTION_COMPUTE)

    # -- partitioning -----------------------------------------------------

    def _partition(self) -> None:
        """Assign contiguous runs of tree-ordered bodies to processors.

        Tree order (the in-order walk of the leaves) puts spatially
        adjacent bodies next to each other, so neighbouring processors --
        and therefore processors in the same cluster -- receive adjacent
        regions of space.  This is the property behind the paper's
        intra-cluster prefetching observation.

        Chunks are weighted by each body's interaction count from the
        previous force phase (SPLASH's costzones strategy), which keeps
        the force phase load-balanced even though central bodies interact
        far more than peripheral ones.
        """
        ordered = _tree_ordered_bodies(self.root)
        self.assignments = _cluster_partition(ordered, self.config)

    # -- force computation -------------------------------------------------

    def _force_phase(self, proc: int) -> Generator:
        buf: List[int] = []
        for body in self.assignments[proc]:
            buf.append(OP_READ)
            buf.append(self.body_addr(body, _BODY_POS))
            self._gravity(body, buf)
            buf.append(OP_WRITE)
            buf.append(self.body_addr(body, _BODY_ACC))
            buf.append(OP_WRITE)
            buf.append(self.body_addr(body, _BODY_ACC + 16))
        yield from self._flush(buf)

    def _gravity(self, body: Body, buf: List[int]) -> None:
        """Traverse the tree accumulating acceleration on ``body``.

        The hottest generator loop in the workload: interaction physics
        and address arithmetic are inlined (no per-node helper calls) and
        each node appends its events with a single tuple extend.
        """
        eps2 = self.app.softening ** 2
        theta2 = self.app.theta ** 2
        interactions = 0
        body_base = self.body_region.base
        cell_base = self.cell_region.base
        bpos = body.pos
        bx = bpos[0]
        by = bpos[1]
        bz = bpos[2]
        ax = ay = az = 0.0
        sqrt = math.sqrt
        stack: List[object] = [self.root]
        while stack:
            node = stack.pop()
            if node.__class__ is Body:
                if node is body:
                    continue
                addr = body_base + node.index * _BODY_RECORD + _BODY_POS
                buf += (OP_READ, addr, OP_READ, addr + 16,
                        OP_COMPUTE, _INTERACTION_COMPUTE)
                src = node.pos
                dx = src[0] - bx
                dy = src[1] - by
                dz = src[2] - bz
                dist2 = dx * dx + dy * dy + dz * dz + eps2
                inv = node.mass / (dist2 * sqrt(dist2))
                ax += dx * inv
                ay += dy * inv
                az += dz * inv
                interactions += 1
                continue
            cell = node
            caddr = cell_base + cell.index * _CELL_RECORD
            com = cell.com
            dx = com[0] - bx
            dy = com[1] - by
            dz = com[2] - bz
            dist2 = dx * dx + dy * dy + dz * dz + eps2
            size = 2.0 * cell.half
            if size * size < dist2 * theta2:
                # Far enough: use the cell's centre-of-mass approximation.
                buf += (OP_READ, caddr + _CELL_COM,
                        OP_READ, caddr + _CELL_COM + 16,
                        OP_COMPUTE, _OPEN_TEST_COMPUTE,
                        OP_COMPUTE, _INTERACTION_COMPUTE)
                inv = cell.mass / (dist2 * sqrt(dist2))
                ax += dx * inv
                ay += dy * inv
                az += dz * inv
                interactions += 1
                continue
            buf += (OP_READ, caddr + _CELL_COM,
                    OP_READ, caddr + _CELL_COM + 16,
                    OP_COMPUTE, _OPEN_TEST_COMPUTE,
                    OP_READ, caddr + _CELL_CHILDREN,
                    OP_READ, caddr + _CELL_CHILDREN + 32)
            for child in cell.children:
                if child is not None:
                    stack.append(child)
        body.acc = [ax, ay, az]
        body.cost = max(interactions, 1)

    # -- integration ---------------------------------------------------------

    def _update_phase(self, proc: int) -> Generator:
        dt = self.app.dt
        buf: List[int] = []
        for body in self.assignments[proc]:
            buf.append(OP_READ)
            buf.append(self.body_addr(body, _BODY_ACC))
            buf.append(OP_READ)
            buf.append(self.body_addr(body, _BODY_VEL))
            for axis in range(3):
                body.vel[axis] += body.acc[axis] * dt
                body.pos[axis] += body.vel[axis] * dt
            buf.append(OP_WRITE)
            buf.append(self.body_addr(body, _BODY_VEL))
            buf.append(OP_WRITE)
            buf.append(self.body_addr(body, _BODY_VEL + 16))
            buf.append(OP_READ)
            buf.append(self.body_addr(body, _BODY_POS))
            buf.append(OP_WRITE)
            buf.append(self.body_addr(body, _BODY_POS))
            buf.append(OP_WRITE)
            buf.append(self.body_addr(body, _BODY_POS + 16))
            buf.append(OP_COMPUTE)
            buf.append(_UPDATE_COMPUTE)
        yield from self._flush(buf)


# ----------------------------------------------------------------------
# Physics and geometry helpers
# ----------------------------------------------------------------------

def _plummer_bodies(count: int, rng: np.random.Generator) -> List[Body]:
    """Sample a Plummer-like sphere of bodies with small random velocities."""
    radii = 1.0 / np.sqrt(rng.uniform(0.1, 1.0, count) ** (-2.0 / 3.0) - 0.9)
    directions = rng.normal(size=(count, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    positions = directions * radii[:, None]
    velocities = rng.normal(scale=0.1, size=(count, 3))
    mass = 1.0 / count
    return [Body(index,
                 [float(x) for x in positions[index]],
                 [float(v) for v in velocities[index]],
                 mass)
            for index in range(count)]


def _bounding_cube(bodies: Sequence[Body]):
    """Centre and half-size of a cube covering every body."""
    low = [min(b.pos[axis] for b in bodies) for axis in range(3)]
    high = [max(b.pos[axis] for b in bodies) for axis in range(3)]
    centre = [(low[axis] + high[axis]) / 2.0 for axis in range(3)]
    half = max(high[axis] - low[axis] for axis in range(3)) / 2.0
    return centre, half * 1.0001 + 1e-9


def _cost_chunks(ordered: List[Body], n_chunks: int) -> List[List[Body]]:
    """Split tree-ordered bodies into contiguous chunks of roughly equal
    total cost (the costzones idea)."""
    total = sum(body.cost for body in ordered)
    target = total / n_chunks
    chunks: List[List[Body]] = [[] for _ in range(n_chunks)]
    accumulated = 0.0
    for body in ordered:
        slot = min(int(accumulated / target), n_chunks - 1)
        chunks[slot].append(body)
        accumulated += body.cost
    return chunks


def _cluster_partition(ordered: List[Body],
                       config: SystemConfig) -> List[List[Body]]:
    """Two-level partition: contiguous cost-balanced chunks per *cluster*,
    then a round-robin deal to the processors within each cluster.

    The deal is what makes cluster-mates work on bodies that are adjacent
    in the tree *at the same time*: processor ``i`` and processor ``i+1``
    of a cluster hold interleaved bodies of the same zone, so they walk
    nearly identical interaction lists in near lock-step.  That is the
    mechanism behind the paper's observation that "one processor
    effectively brings in data to the cache which will be used by the
    remaining processors in the cluster before it is replaced"
    (Section 3.1.1).
    """
    per_cluster = _cost_chunks(ordered, config.clusters)
    assignments: List[List[Body]] = []
    for chunk in per_cluster:
        for port in range(config.processors_per_cluster):
            assignments.append(chunk[port::config.processors_per_cluster])
    return assignments


def _quiet_build(bodies: Sequence[Body]) -> Cell:
    """Build an octree without emitting events (cost-seeding pre-pass)."""
    centre, half = _bounding_cube(bodies)
    root = Cell(-1, centre, half, depth=0)
    for body in bodies:
        cell = root
        while True:
            octant = cell.octant_of(body.pos)
            child = cell.children[octant]
            if child is None:
                cell.children[octant] = body
                break
            if isinstance(child, Body):
                subcell = Cell(-1, cell.child_centre(octant),
                               cell.half / 2.0, cell.depth + 1)
                subcell.children[subcell.octant_of(child.pos)] = child
                cell.children[octant] = subcell
                cell = subcell
                continue
            cell = child
    # Bottom-up centres of mass (post-order).
    stack = [(root, False)]
    while stack:
        cell, expanded = stack.pop()
        if not expanded:
            stack.append((cell, True))
            for child in cell.children:
                if isinstance(child, Cell):
                    stack.append((child, False))
            continue
        mass = 0.0
        com = [0.0, 0.0, 0.0]
        for child in cell.children:
            if child is None:
                continue
            child_mass = child.mass
            child_com = child.com if isinstance(child, Cell) else child.pos
            mass += child_mass
            for axis in range(3):
                com[axis] += child_mass * child_com[axis]
        if mass > 0.0:
            for axis in range(3):
                com[axis] /= mass
        cell.mass = mass
        cell.com = com
    return root


def _tree_ordered_bodies(root: Cell) -> List[Body]:
    """Bodies in the in-order (depth-first, octant-ordered) walk."""
    ordered: List[Body] = []
    stack: List[object] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Body):
            ordered.append(node)
            continue
        for child in reversed(node.children):
            if child is not None:
                stack.append(child)
    return ordered


def _distance2(a, b) -> float:
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2 + (a[2] - b[2]) ** 2)


def _accumulate(acc, pos, source, mass: float, eps2: float) -> None:
    """Add the softened gravitational pull of ``source`` onto ``acc``."""
    dx = source[0] - pos[0]
    dy = source[1] - pos[1]
    dz = source[2] - pos[2]
    dist2 = dx * dx + dy * dy + dz * dz + eps2
    inv = mass / (dist2 * math.sqrt(dist2))
    acc[0] += dx * inv
    acc[1] += dy * inv
    acc[2] += dz * inv
