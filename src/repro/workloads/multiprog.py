"""Round-robin multiprogramming scheduler (Section 2.3.2).

The paper's multiprogramming simulation runs the eight annotated SPEC92
benchmarks as separate processes, scheduled round-robin onto the
processors of a single cluster with a 5-million-cycle quantum.  This
module is that scheduler: the run queue is a shared FIFO; each processor
pops a process, executes one quantum of its reference stream, pays a
context-switch cost, and requeues it until every process has executed its
instruction budget.

The interesting memory behaviour is all emergent: context switches
destroy instruction-cache state, and co-scheduled processes interfere in
the shared SCC -- the degradation the paper isolates in Figures 5 and 6.

The quantum is measured in *instructions* rather than cycles (a pixie
stream knows instruction counts, not stall cycles); the paper's 5M-cycle
quantum on a CPI~1.5 machine corresponds to roughly 3.3M instructions,
which the reproduction scales together with the working sets.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from ..core.config import SystemConfig
from ..trace.events import Compute, TaskDequeue, TaskEnqueue
from ..trace.packed import PackedChunk
from .base import TracedApplication
from .spec import SpecApp, spec92_workload

__all__ = ["MultiprogrammingWorkload"]

_RUN_QUEUE = 7
_CONTEXT_SWITCH_CYCLES = 400
_IDLE_SPIN_CYCLES = 200


class MultiprogrammingWorkload(TracedApplication):
    """Eight SPEC92-like processes, round-robin on one cluster.

    ``instructions_per_app`` is each process's total budget;
    ``quantum_instructions`` the scheduler quantum; ``scale`` shrinks the
    applications' working sets by the ladder scale factor (DESIGN.md).
    Any machine configuration works, but the paper preset is a single
    cluster (:meth:`repro.core.SystemConfig.paper_multiprogramming`).
    """

    name = "multiprogramming"

    def __init__(self, instructions_per_app: int = 150_000,
                 quantum_instructions: int = 50_000,
                 scale: int = 8, seed: int = 1234,
                 apps: Optional[Sequence[SpecApp]] = None):
        if instructions_per_app < 1:
            raise ValueError("instructions_per_app must be positive")
        if quantum_instructions < 1:
            raise ValueError("quantum_instructions must be positive")
        self.instructions_per_app = instructions_per_app
        self.quantum_instructions = quantum_instructions
        self.scale = scale
        self.seed = seed
        self._apps = apps

    def __repr__(self) -> str:
        return (f"MultiprogrammingWorkload("
                f"instructions_per_app={self.instructions_per_app}, "
                f"quantum_instructions={self.quantum_instructions}, "
                f"scale={self.scale}, seed={self.seed})")

    def trace_signature(self, config: SystemConfig):
        if self._apps is not None:
            # Caller-supplied application objects are not reconstructable
            # from the repr; refuse to key the trace cache on them.
            return None
        return super().trace_signature(config)

    def build_apps(self) -> List[SpecApp]:
        """Fresh application instances for one run."""
        if self._apps is not None:
            return list(self._apps)
        return spec92_workload(scale=self.scale, seed=self.seed)

    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        run = _SchedulerRun(self, config)
        return {proc: run.process(proc)
                for proc in range(config.total_processors)}


class _SchedulerRun:
    """Shared scheduler state for one simulation."""

    def __init__(self, workload: MultiprogrammingWorkload,
                 config: SystemConfig):
        self.workload = workload
        self.config = config
        self.apps = workload.build_apps()
        self.remaining = {app.app_id: workload.instructions_per_app
                          for app in self.apps}
        self.unfinished = len(self.apps)

    def process(self, proc: int) -> Generator:
        """One processor's scheduler loop."""
        workload = self.workload
        if proc == 0:
            for app in self.apps:
                yield TaskEnqueue(_RUN_QUEUE, app.app_id)
        while self.unfinished > 0:
            app_id = yield TaskDequeue(_RUN_QUEUE)
            if app_id is None:
                # Fewer runnable processes than processors: idle.
                yield Compute(_IDLE_SPIN_CYCLES)
                continue
            app = self.apps[app_id]
            yield Compute(_CONTEXT_SWITCH_CYCLES)
            quantum = min(workload.quantum_instructions,
                          self.remaining[app_id])
            if workload.packed:
                # The whole quantum as one packed chunk.  Chunk-safe: the
                # stream generator's state is private to the application
                # and the run queue hands an application to exactly one
                # processor at a time, so nothing observes that the RNG
                # draws happen at the chunk boundary rather than
                # event-by-event.  The scheduler loop itself (dequeue,
                # branch on the response, requeue) stays on the
                # event-object path because it is timing-dependent.
                buf: List[int] = []
                app.burst_packed(quantum, buf)
                yield PackedChunk(buf)
            else:
                yield from app.burst(quantum)
            self.remaining[app_id] -= quantum
            if self.remaining[app_id] > 0:
                yield TaskEnqueue(_RUN_QUEUE, app_id)
            else:
                self.unfinished -= 1
