"""Instrumented parallel sparse Cholesky factorization (SPLASH equivalent).

Section 2.2.1's third parallel benchmark: supernodal sparse Cholesky
factorization of a stiffness matrix (the paper uses BCSSTK14; we use the
synthetic equivalent from :mod:`repro.workloads.matrices`).  The SPLASH
code is right-looking and dynamically scheduled: a supernode whose
incoming updates have all arrived is pushed on a global task queue; a
worker pops it, factors it (``cdiv``), then applies its outgoing updates
(``cmod``) to later supernodes under per-supernode locks, decrementing
their dependence counters and enqueueing any that become ready.

The factorization is performed *numerically* (real doubles in the
supernode blocks, checked against a dense Cholesky in the tests), and
every block access is emitted as trace events over the supernode's region
of the shared heap.  The paper's Cholesky characteristics all emerge from
the task structure of the matrix itself: early parallelism from the many
leaf supernodes, then a serial tail near the root of the elimination tree
("limited concurrency, bad load balancing and high synchronization
overhead", Section 3.1.3).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.config import SystemConfig
from ..trace.events import (Barrier, Compute, LockAcquire, LockRelease,
                            Read, TaskDequeue, TaskEnqueue, Write)
from ..trace.packed import (OP_COMPUTE, OP_READ_SPAN, OP_WRITE_SPAN,
                            PackedChunk, decode_events)
from .base import TracedApplication
from .matrices import (SparsePattern, Supernode, bcsstk_like, supernodes,
                       symbolic_factor)
from .memory import SharedHeap

__all__ = ["Cholesky"]

_ENTRY = 8                 # bytes per double
_SUPER_LOCK_BASE = 1000    # lock ids for per-supernode counters
_COLUMN_LOCK_BASE = 100000  # lock ids for per-column update locks
_TASK_QUEUE = 0
_SPIN_COMPUTE = 60         # idle loop when the task queue is empty
_FLOP_CYCLES = 2           # cycles charged per multiply-add pair
_EVENT_STRIDE = 16         # bytes per emitted reference when streaming a
                           # block (two doubles per load/store event keeps
                           # event counts tractable; lines are 16 B, so
                           # per-line behaviour is identical)


class Cholesky(TracedApplication):
    """Task-queue parallel supernodal Cholesky, instrumented for tracing.

    The default matrix is the BCSSTK14-like synthetic stiffness pattern
    at reproduction scale.  Pass a custom ``pattern`` to factor something
    else (the pattern must be symmetric-lower with diagonals, and the
    assembled matrix is made diagonally dominant so it is SPD).
    """

    name = "cholesky"

    def __init__(self, n: int = 416, seed: int = 3,
                 max_supernode_width: int = 4, supernode_relax: int = 2,
                 pattern: Optional[SparsePattern] = None):
        self._custom_pattern = pattern is not None
        if pattern is None:
            pattern = bcsstk_like(n=n, seed=seed)
        self.pattern = pattern
        self.n = n
        self.seed = seed
        self.max_supernode_width = max_supernode_width
        self.supernode_relax = supernode_relax

    def __repr__(self) -> str:
        if self._custom_pattern:
            return f"Cholesky(pattern=<custom n={self.pattern.n}>)"
        return (f"Cholesky(n={self.n}, seed={self.seed}, "
                f"max_supernode_width={self.max_supernode_width}, "
                f"supernode_relax={self.supernode_relax})")

    def trace_signature(self, config: SystemConfig) -> Optional[str]:
        if self._custom_pattern:
            # A caller-supplied pattern cannot be identified by repr.
            return None
        return super().trace_signature(config)

    def processes(self, config: SystemConfig) -> Dict[int, Generator]:
        run = _CholeskyRun(self, config)
        return {proc: run.process(proc)
                for proc in range(config.total_processors)}

    def reference_factor(self) -> np.ndarray:
        """Dense Cholesky factor of the assembled matrix (for tests)."""
        dense = _assemble_dense(self.pattern, self.seed)
        return np.linalg.cholesky(dense)


class _CholeskyRun:
    """Shared state of one factorization run."""

    def __init__(self, app: Cholesky, config: SystemConfig):
        self.app = app
        self.config = config
        self.n_procs = config.total_processors
        factor, parent = symbolic_factor(app.pattern)
        self.factor_pattern = factor
        self.supers: List[Supernode] = supernodes(
            factor, parent, max_width=app.max_supernode_width,
            relax=app.supernode_relax)
        n = factor.n
        self.col_to_super = [0] * n
        for node in self.supers:
            for col in range(node.first, node.last + 1):
                self.col_to_super[col] = node.index
        # Numeric blocks: supernode s stores an h x w dense block whose
        # rows are rows(s); assembled from the original matrix values.
        dense = _assemble_dense(app.pattern, app.seed)
        self.blocks: List[np.ndarray] = []
        self.row_pos: List[Dict[int, int]] = []
        heap = SharedHeap()
        self.regions = []
        for node in self.supers:
            block = np.zeros((node.height, node.width))
            positions = {row: k for k, row in enumerate(node.rows)}
            for local_col in range(node.width):
                col = node.first + local_col
                for row in node.rows:
                    if row >= col:
                        block[positions[row], local_col] = dense[row, col]
            self.blocks.append(block)
            self.row_pos.append(positions)
            self.regions.append(heap.alloc(
                f"super{node.index}",
                max(node.height * node.width, 1) * _ENTRY))
        # Outgoing update lists and incoming dependence counts.
        self.updates: List[List[int]] = [[] for _ in self.supers]
        self.dep_count = [0] * len(self.supers)
        for node in self.supers:
            targets = sorted({self.col_to_super[row]
                              for row in node.rows if row > node.last})
            self.updates[node.index] = targets
            for target in targets:
                self.dep_count[target] += 1
        self.completed = 0
        self.factored: List[bool] = [False] * len(self.supers)

    # -- address helpers ------------------------------------------------

    def _block_span(self, super_index: int, local_col: int,
                    first_local_row: int, n_rows: int) -> Tuple[int, int]:
        """(base address, byte length) of a column segment of a block."""
        node = self.supers[super_index]
        offset = (local_col * node.height + first_local_row) * _ENTRY
        return (self.regions[super_index].addr(offset), n_rows * _ENTRY)

    def _stream(self, super_index: int, local_col: int,
                first_local_row: int, n_rows: int, write: bool) -> Generator:
        base, length = self._block_span(super_index, local_col,
                                        first_local_row, n_rows)
        event = Write if write else Read
        for offset in range(0, length, _EVENT_STRIDE):
            yield event(base + offset)

    def _flush(self, buf: List[int]) -> Generator:
        """Yield a built-up packed buffer in the form the app is set to."""
        if not buf:
            return
        if self.app.packed:
            yield PackedChunk(buf)
        else:
            yield from decode_events(buf)

    # -- process generators ----------------------------------------------

    def process(self, proc: int) -> Generator:
        if proc == 0:
            for node in self.supers:
                if self.dep_count[node.index] == 0:
                    yield TaskEnqueue(_TASK_QUEUE, node.index)
        yield Barrier(0, self.n_procs)
        total = len(self.supers)
        while self.completed < total:
            task = yield TaskDequeue(_TASK_QUEUE)
            if task is None:
                yield Compute(_SPIN_COMPUTE)
                continue
            yield from self._factor_supernode(task)
        yield Barrier(1, self.n_procs)

    # -- numeric factorization --------------------------------------------

    def _factor_supernode(self, s: int) -> Generator:
        """cdiv(s), then cmod(s -> t) for every target t.

        The dependence counter of each target is adjusted under the
        target's supernode lock; the numeric column updates inside
        :meth:`_cmod` take per-column locks (as the SPLASH code does), so
        updates from different sources to different columns of the same
        supernode proceed concurrently.
        """
        yield from self._cdiv(s)
        for target in self.updates[s]:
            yield from self._cmod(s, target)
            yield LockAcquire(_SUPER_LOCK_BASE + target)
            self.dep_count[target] -= 1
            ready = self.dep_count[target] == 0
            yield LockRelease(_SUPER_LOCK_BASE + target)
            if ready:
                yield TaskEnqueue(_TASK_QUEUE, target)
        self.completed += 1

    def _cdiv(self, s: int) -> Generator:
        """Factor supernode ``s``'s diagonal block and scale its rows.

        Chunk safety (see repro.trace.packed): by the time ``s`` was
        dequeued every incoming update had been applied, so no other
        process touches ``blocks[s]`` again -- the numeric factorization
        can run at chunk-build time and the whole read/compute/write
        sequence travels as one chunk.  ``factored[s]`` flips only after
        the chunk drains, exactly where the event-at-a-time generator
        performed the assignment.
        """
        node = self.supers[s]
        block = self.blocks[s]
        w, h = node.width, node.height
        # Read the whole block, factor, write it back.
        buf: List[int] = []
        for local_col in range(w):
            base, length = self._block_span(s, local_col, local_col,
                                            h - local_col)
            buf += (OP_READ_SPAN, base, length, _EVENT_STRIDE)
        lower = np.tril(block[:w, :])
        symmetric = lower + lower.T - np.diag(np.diag(lower))
        chol = np.linalg.cholesky(symmetric)
        block[:w, :] = np.tril(chol)
        if h > w:
            block[w:, :] = _solve_lower_transpose(chol, block[w:, :])
        buf += (OP_COMPUTE, max(w * w * h * _FLOP_CYCLES // 2, 1))
        for local_col in range(w):
            base, length = self._block_span(s, local_col, local_col,
                                            h - local_col)
            buf += (OP_WRITE_SPAN, base, length, _EVENT_STRIDE)
        yield from self._flush(buf)
        self.factored[s] = True

    def _cmod(self, s: int, t: int) -> Generator:
        """Apply supernode ``s``'s outer-product update to supernode ``t``."""
        source = self.supers[s]
        target = self.supers[t]
        block = self.blocks[s]
        w = source.width
        # Global rows of s below its own columns.
        below = [(k, row) for k, row in enumerate(source.rows)
                 if row > source.last]
        hit = [(k, row) for k, row in below
               if target.first <= row <= target.last]
        affected = [(k, row) for k, row in below if row >= target.first]
        if not hit:
            return
        # Read the source rows involved (the L panel of s).  Chunk
        # safety: blocks[s] is quiescent (only this process reads it once
        # s is factored), so the panel reads travel as one chunk; the
        # racy target-block mutations below stay pinned to their lock
        # acquisitions.
        first_k = min(k for k, _ in affected)
        buf: List[int] = []
        for local_col in range(w):
            base, length = self._block_span(s, local_col, first_k,
                                            source.height - first_k)
            buf += (OP_READ_SPAN, base, length, _EVENT_STRIDE)
        yield from self._flush(buf)
        # Compute the outer-product contributions and scatter-subtract.
        panel = block[[k for k, _ in affected], :]      # |R| x w
        pivot = block[[k for k, _ in hit], :]           # |C| x w
        update = panel @ pivot.T                        # |R| x |C|
        tgt_block = self.blocks[t]
        tgt_pos = self.row_pos[t]
        entries = 0
        for c_idx, (_, col_row) in enumerate(hit):
            local_col = col_row - target.first
            # Rows whose structural position exists in the target block;
            # relaxed supernodes can carry source rows that are structural
            # zeros for this column, whose contribution is exactly zero.
            rows_here = []
            for r_idx, (_, row) in enumerate(affected):
                if row < col_row:
                    continue
                if row in tgt_pos:
                    rows_here.append((r_idx, row))
                elif abs(update[r_idx, c_idx]) > 1e-9:
                    raise AssertionError(
                        f"nonzero update to ({row}, {col_row}) outside the "
                        f"target supernode's structure")
            if not rows_here:
                continue
            # Per-column lock (SPLASH's column-level protection).  The
            # scatter-subtract must run after the acquire is granted,
            # exactly as the event-at-a-time path did.
            yield LockAcquire(_COLUMN_LOCK_BASE + col_row)
            for r_idx, row in rows_here:
                tgt_block[tgt_pos[row], local_col] -= update[r_idx, c_idx]
            entries += len(rows_here)
            first_target_row = tgt_pos[rows_here[0][1]]
            # The touched positions are increasing but may have gaps; the
            # emitted span approximates the scatter as a contiguous run
            # capped at the block end.
            count = min(len(rows_here), target.height - first_target_row)
            base, length = self._block_span(t, local_col, first_target_row,
                                            count)
            buf = [OP_READ_SPAN, base, length, _EVENT_STRIDE,
                   OP_COMPUTE, max(len(rows_here) * w * _FLOP_CYCLES, 1),
                   OP_WRITE_SPAN, base, length, _EVENT_STRIDE]
            yield from self._flush(buf)
            yield LockRelease(_COLUMN_LOCK_BASE + col_row)


# ----------------------------------------------------------------------
# Numeric helpers
# ----------------------------------------------------------------------

def _assemble_dense(pattern: SparsePattern, seed: int) -> np.ndarray:
    """Dense SPD matrix with the given lower-triangular pattern."""
    rng = np.random.default_rng(seed)
    n = pattern.n
    dense = np.zeros((n, n))
    for j in range(n):
        for i in pattern.columns[j]:
            if i == j:
                continue
            value = rng.uniform(-1.0, 1.0)
            dense[i, j] = value
            dense[j, i] = value
    # Diagonal dominance makes it SPD regardless of the random values.
    row_sums = np.abs(dense).sum(axis=1)
    np.fill_diagonal(dense, row_sums + 1.0)
    return dense


def _solve_lower_transpose(chol: np.ndarray,
                           panel: np.ndarray) -> np.ndarray:
    """Solve X @ chol.T = panel for X (forward substitution per row)."""
    return np.linalg.solve(chol, panel.T).T
