"""ANL-macro style synchronization naming.

The SPLASH applications synchronize with the Argonne National Laboratory
macros (LOCKDEC/BARDEC/GSDEC...).  In this reproduction, locks, barriers
and task queues are identified by small integers that the interleaver
resolves; :class:`SyncNamespace` hands out those identifiers and remembers
their names so traces stay debuggable.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SyncNamespace"]


class SyncNamespace:
    """Allocator for lock, barrier and task-queue identifiers."""

    def __init__(self) -> None:
        self._locks: Dict[str, int] = {}
        self._barriers: Dict[str, int] = {}
        self._queues: Dict[str, int] = {}

    def lock(self, name: str) -> int:
        """Id of the lock called ``name`` (allocated on first use)."""
        return self._get(self._locks, name)

    def barrier(self, name: str) -> int:
        """Id of the barrier called ``name`` (allocated on first use)."""
        return self._get(self._barriers, name)

    def queue(self, name: str) -> int:
        """Id of the task queue called ``name`` (allocated on first use)."""
        return self._get(self._queues, name)

    def lock_name(self, lock_id: int) -> str:
        """Reverse lookup for debugging."""
        return self._reverse(self._locks, lock_id)

    @staticmethod
    def _get(table: Dict[str, int], name: str) -> int:
        if name not in table:
            table[name] = len(table)
        return table[name]

    @staticmethod
    def _reverse(table: Dict[str, int], wanted: int) -> str:
        for name, ident in table.items():
            if ident == wanted:
                return name
        raise KeyError(wanted)
