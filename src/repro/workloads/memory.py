"""Simulated shared address space for instrumented applications.

The SPLASH codes allocate their shared data with the ANL macro ``G_MALLOC``
from a single shared heap.  Instrumented reimplementations need the same
thing: stable byte addresses for every piece of shared data so the trace
events they emit exercise the cache hierarchy the way the original
programs' data layouts did.

:class:`SharedHeap` is a bump allocator over a flat address space;
:class:`Region` and :class:`ArrayRegion` hand out addresses for scalars and
arrays of fixed-size records.  Nothing here stores data -- applications
keep their actual state in ordinary Python objects and use these regions
purely to name memory in the trace.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["SharedHeap", "Region", "ArrayRegion", "HeapExhaustedError"]


class HeapExhaustedError(MemoryError):
    """The simulated heap ran out of address space."""


class Region:
    """A contiguous allocation of ``size`` bytes at ``base``."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def addr(self, offset: int = 0) -> int:
        """Byte address at ``offset`` into the region (bounds checked)."""
        if not 0 <= offset < self.size:
            raise IndexError(
                f"offset {offset} outside region {self.name!r} "
                f"of {self.size} bytes")
        return self.base + offset

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside the region."""
        return self.base <= addr < self.end

    def __repr__(self) -> str:
        return (f"Region({self.name!r}, base={self.base:#x}, "
                f"size={self.size})")


class ArrayRegion(Region):
    """An array of ``count`` records of ``record_size`` bytes each."""

    __slots__ = ("count", "record_size")

    def __init__(self, name: str, base: int, count: int, record_size: int):
        super().__init__(name, base, count * record_size)
        self.count = count
        self.record_size = record_size

    def record(self, index: int, field_offset: int = 0) -> int:
        """Address of field ``field_offset`` of record ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(
                f"record {index} outside array {self.name!r} "
                f"of {self.count} records")
        if not 0 <= field_offset < self.record_size:
            raise IndexError(
                f"field offset {field_offset} outside {self.record_size}-"
                f"byte records of {self.name!r}")
        return self.base + index * self.record_size + field_offset


class SharedHeap:
    """Bump allocator over a simulated shared address space.

    Allocations are aligned to ``alignment`` bytes (default: one 16-byte
    cache line, so distinct allocations never falsely share a line unless
    an application asks for smaller alignment explicitly).
    """

    def __init__(self, base: int = 0x1000_0000,
                 limit: int = 0x8000_0000, alignment: int = 16):
        if alignment < 1 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two")
        if limit <= base:
            raise ValueError("limit must exceed base")
        self._base = base
        self._limit = limit
        self._next = base
        self._alignment = alignment
        self._regions: Dict[str, Region] = {}

    def alloc(self, name: str, size: int,
              alignment: Optional[int] = None) -> Region:
        """Allocate ``size`` bytes; names must be unique per heap."""
        base = self._place(name, size, alignment)
        region = Region(name, base, size)
        self._regions[name] = region
        return region

    def alloc_array(self, name: str, count: int, record_size: int,
                    alignment: Optional[int] = None) -> ArrayRegion:
        """Allocate an array of ``count`` x ``record_size`` bytes."""
        if count < 1 or record_size < 1:
            raise ValueError("count and record_size must be positive")
        base = self._place(name, count * record_size, alignment)
        region = ArrayRegion(name, base, count, record_size)
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        """Look up a previous allocation by name."""
        return self._regions[name]

    @property
    def bytes_allocated(self) -> int:
        """Total address space consumed so far (including padding)."""
        return self._next - self._base

    def _place(self, name: str, size: int,
               alignment: Optional[int]) -> int:
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size < 1:
            raise ValueError("size must be positive")
        align = self._alignment if alignment is None else alignment
        if align < 1 or align & (align - 1):
            raise ValueError("alignment must be a power of two")
        base = (self._next + align - 1) & ~(align - 1)
        if base + size > self._limit:
            raise HeapExhaustedError(
                f"cannot allocate {size} bytes for {name!r}")
        self._next = base + size
        return base
