"""SPEC92-like synthetic reference generators (pixie-trace equivalents).

The paper's multiprogramming workload (Section 2.3, Table 2) interleaves
pixie-annotated SPEC92 binaries: sc, espresso, eqntott, xlisp, compress,
gcc, spice and wave5.  The binaries and pixie are not available, so each
application is modelled as a deterministic synthetic reference stream with
that benchmark's published memory personality: code working-set size,
data working-set size, access skew (how concentrated references are on
hot lines), write fraction, and memory-reference density.

The generator machinery is shared (:class:`SpecApp`):

* instruction fetches walk loop bodies sequentially and jump between
  functions, covering a code working set of the configured size;
* data references split between a small hot stack and a heap whose lines
  are sampled from a Zipf-like popularity distribution over the data
  working set -- the classic single-process locality model, which yields
  the right miss-rate-vs-cache-size knee for each application;
* everything is drawn from a per-app seeded RNG in pre-computed batches,
  so streams are reproducible and cheap.

Working-set sizes below are the *paper-scale* figures (bytes); the
multiprogramming workload divides them by the experiment's ladder scale so
the footprint-to-cache ratio of Figure 5 is preserved (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..trace.events import Compute, Ifetch, Read, TraceEvent, Write
from ..trace.packed import OP_IFETCH, OP_READ, OP_WRITE

__all__ = ["SpecProfile", "SpecApp", "SPEC92_PROFILES", "spec92_workload"]

_BASIC_BLOCK = 8        # instructions fetched per Ifetch event
_BATCH = 2048           # random draws generated at a time
KB = 1024


@dataclass(frozen=True)
class SpecProfile:
    """Memory personality of one benchmark (paper-scale sizes, bytes)."""

    name: str
    code_bytes: int
    """Code working set covered by instruction fetches."""

    data_bytes: int
    """Total heap footprint (hot set plus scanned arrays)."""

    hot_bytes: int
    """Primary (hot) working set repeatedly revisited by heap references."""

    scan_fraction: float
    """Fraction of data references that stream sequentially through the
    large cold arrays (compulsory misses at any cache size)."""

    write_fraction: float
    """Fraction of data references that are stores."""

    refs_per_instruction: float
    """Data references per instruction executed."""

    stack_fraction: float
    """Fraction of data references that hit the (tiny, hot) stack."""

    locality: float = 0.85
    """Probability that a hot-set reference re-touches one of the most
    recently used lines (the LRU-stack temporal-locality mass); the rest
    sample the hot set uniformly."""


#: Table 2's eight applications.  Sizes and skews are drawn from the
#: published SPEC92 characterization literature: compress and wave5 stream
#: through large arrays with little reuse (low skew, big sets); xlisp and
#: espresso have small hot working sets; gcc is code-limited.
SPEC92_PROFILES: Tuple[SpecProfile, ...] = (
    SpecProfile("sc", code_bytes=64 * KB, data_bytes=192 * KB,
                hot_bytes=10 * KB, scan_fraction=0.04,
                write_fraction=0.25, refs_per_instruction=0.33,
                stack_fraction=0.35),
    SpecProfile("espresso", code_bytes=96 * KB, data_bytes=160 * KB,
                hot_bytes=6 * KB, scan_fraction=0.02,
                write_fraction=0.15, refs_per_instruction=0.30,
                stack_fraction=0.30),
    SpecProfile("eqntott", code_bytes=32 * KB, data_bytes=448 * KB,
                hot_bytes=14 * KB, scan_fraction=0.06,
                write_fraction=0.10, refs_per_instruction=0.35,
                stack_fraction=0.20),
    SpecProfile("xlisp", code_bytes=48 * KB, data_bytes=96 * KB,
                hot_bytes=4 * KB, scan_fraction=0.02,
                write_fraction=0.30, refs_per_instruction=0.40,
                stack_fraction=0.40),
    SpecProfile("compress", code_bytes=16 * KB, data_bytes=512 * KB,
                hot_bytes=4 * KB, scan_fraction=0.18,
                write_fraction=0.30, refs_per_instruction=0.30,
                stack_fraction=0.15),
    SpecProfile("gcc", code_bytes=256 * KB, data_bytes=256 * KB,
                hot_bytes=12 * KB, scan_fraction=0.03,
                write_fraction=0.20, refs_per_instruction=0.33,
                stack_fraction=0.35),
    SpecProfile("spice", code_bytes=128 * KB, data_bytes=384 * KB,
                hot_bytes=16 * KB, scan_fraction=0.05,
                write_fraction=0.15, refs_per_instruction=0.38,
                stack_fraction=0.20),
    SpecProfile("wave5", code_bytes=64 * KB, data_bytes=448 * KB,
                hot_bytes=12 * KB, scan_fraction=0.12,
                write_fraction=0.25, refs_per_instruction=0.40,
                stack_fraction=0.15),
)


_STACK_BYTES = 2 * KB   # per-process hot stack (paper scale; also scaled)
_ADDRESS_SPACE = 1 << 26  # 64 MB per process


class SpecApp:
    """Resumable synthetic reference stream for one process.

    ``burst(n)`` yields the events of the next ``n`` instructions; the
    stream picks up where it left off regardless of which processor runs
    the quantum, like a real process under a scheduler.
    """

    def __init__(self, app_id: int, profile: SpecProfile, scale: int = 1,
                 seed: int = 1234):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.app_id = app_id
        self.profile = profile
        self.scale = scale
        # Address-space layout: each process gets its own 64 MB space,
        # with its segments staggered by a per-process offset so that
        # different processes' hot regions do not land on identical cache
        # indices (as real virtual-to-physical mappings would not).
        base = app_id * _ADDRESS_SPACE
        stagger = app_id * 557 * 16
        self.code_base = base + stagger
        self.code_bytes = max(profile.code_bytes // scale, 256)
        self.stack_base = base + (_ADDRESS_SPACE // 2) + stagger
        self.stack_bytes = max(_STACK_BYTES // scale, 64)
        self.heap_base = base + (_ADDRESS_SPACE // 4) + stagger
        self.hot_bytes = max(profile.hot_bytes // scale, 128)
        # Recently-used hot lines (the dense head of the LRU stack).
        self._recent = [0] * 48
        self._recent_fill = 1
        self.scan_base = base + (3 * _ADDRESS_SPACE // 8) + stagger
        self.scan_bytes = max((profile.data_bytes - profile.hot_bytes)
                              // scale, 1024)
        self._scan_cursor = 0
        self._rng = np.random.default_rng(seed * 1000003 + app_id)
        self.instructions_executed = 0
        self._code_cursor = 0
        self._loop_remaining = 0
        self._loop_start = 0
        self._loop_length = 0
        self._refill()

    def _refill(self) -> None:
        self._uniform = self._rng.uniform(size=_BATCH)
        self._uniform_index = 0

    def _draw(self) -> float:
        if self._uniform_index >= _BATCH:
            self._refill()
        value = self._uniform[self._uniform_index]
        self._uniform_index += 1
        return float(value)

    # -- address generation -------------------------------------------------

    def _hot_addr(self) -> int:
        """Reference into the primary working set with an LRU-stack-like
        temporal profile: most references re-touch recently used lines,
        the rest sample the hot set uniformly (and become recent)."""
        if self._draw() < self.profile.locality:
            slot = int(self._draw() * self._recent_fill)
            offset = self._recent[slot]
        else:
            offset = int(self._draw() * self.hot_bytes) & ~15
            if self._recent_fill < len(self._recent):
                self._recent[self._recent_fill] = offset
                self._recent_fill += 1
            else:
                self._recent[int(self._draw() * len(self._recent))] = offset
        return self.heap_base + offset + (self._uniform_index % 2) * 8

    def _scan_addr(self) -> int:
        """Sequential walk through the cold arrays (streaming reuse-free
        references; one compulsory miss per line at any cache size)."""
        addr = self.scan_base + self._scan_cursor
        self._scan_cursor = (self._scan_cursor + 16) % self.scan_bytes
        return addr

    def _stack_addr(self) -> int:
        offset = int(self._draw() * self.stack_bytes) & ~7
        return self.stack_base + offset

    def _next_code_addr(self) -> int:
        """Walk loop bodies; occasionally branch to a new function."""
        block_bytes = _BASIC_BLOCK * 4
        if self._loop_remaining > 0:
            self._code_cursor += block_bytes
            if self._code_cursor >= self._loop_start + self._loop_length:
                self._code_cursor = self._loop_start
                self._loop_remaining -= 1
        else:
            # New loop at a random spot in the code segment.
            draw = self._draw()
            self._loop_start = (int(draw * self.code_bytes)
                                // block_bytes * block_bytes)
            self._loop_length = block_bytes * (2 + int(self._draw() * 14))
            self._loop_remaining = 2 + int(self._draw() * 30)
            self._code_cursor = self._loop_start
        return self.code_base + (self._code_cursor % self.code_bytes)

    # -- the stream ----------------------------------------------------------

    def burst(self, n_instructions: int) -> Iterator[TraceEvent]:
        """Events for the next ``n_instructions`` instructions."""
        profile = self.profile
        remaining = n_instructions
        while remaining > 0:
            block = min(_BASIC_BLOCK, remaining)
            yield Ifetch(self._next_code_addr(), block)
            remaining -= block
            self.instructions_executed += block
            # Data references carried by this block.
            expected = profile.refs_per_instruction * block
            count = int(expected)
            if self._draw() < expected - count:
                count += 1
            for _ in range(count):
                locality = self._draw()
                if locality < profile.stack_fraction:
                    addr = self._stack_addr()
                elif locality < profile.stack_fraction + profile.scan_fraction:
                    addr = self._scan_addr()
                else:
                    addr = self._hot_addr()
                if self._draw() < profile.write_fraction:
                    yield Write(addr)
                else:
                    yield Read(addr)

    def burst_packed(self, n_instructions: int, buf: List[int]) -> None:
        """Append the next ``n_instructions`` instructions to ``buf`` in
        the packed encoding -- the allocation-free twin of :meth:`burst`.

        Draw-for-draw identical to the generator: the RNG and every cursor
        end up exactly where ``burst`` would leave them, so packed and
        event-object runs replay the same stream.  Building the quantum
        eagerly is chunk-safe (:mod:`repro.trace.packed`) because all of
        this state is private to the process -- the run queue hands an
        application to exactly one processor at a time.
        """
        profile = self.profile
        stack_fraction = profile.stack_fraction
        scan_cut = stack_fraction + profile.scan_fraction
        write_fraction = profile.write_fraction
        refs_per_instruction = profile.refs_per_instruction
        draw = self._draw
        append = buf.append
        remaining = n_instructions
        while remaining > 0:
            block = min(_BASIC_BLOCK, remaining)
            buf += (OP_IFETCH, self._next_code_addr(), block)
            remaining -= block
            self.instructions_executed += block
            expected = refs_per_instruction * block
            count = int(expected)
            if draw() < expected - count:
                count += 1
            for _ in range(count):
                locality = draw()
                if locality < stack_fraction:
                    addr = self._stack_addr()
                elif locality < scan_cut:
                    addr = self._scan_addr()
                else:
                    addr = self._hot_addr()
                append(OP_WRITE if draw() < write_fraction else OP_READ)
                append(addr)


def spec92_workload(scale: int = 1, seed: int = 1234) -> List[SpecApp]:
    """The paper's eight-application multiprogramming mix."""
    return [SpecApp(app_id, profile, scale=scale, seed=seed)
            for app_id, profile in enumerate(SPEC92_PROFILES)]
