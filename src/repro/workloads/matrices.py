"""Sparse symmetric matrices and symbolic Cholesky analysis.

The paper factors BCSSTK14, a structural-engineering stiffness matrix from
the Harwell-Boeing collection (n=1806, ~32k lower-triangular nonzeros).
The collection is not redistributable here, so :func:`bcsstk_like`
generates a synthetic stiffness-style pattern with the properties that
drive the paper's Cholesky results: a strong band (finite elements couple
nearby degrees of freedom) with clustered long-range connections (elements
spanning substructures), which yields an elimination tree that is bushy at
the leaves and path-like near the root -- i.e. plenty of early
parallelism, a serial tail, and uneven supernode sizes (the paper's
"limited concurrency, bad load balancing and high synchronization
overhead", Section 3.1.3).

The symbolic machinery is the textbook kit:

* :func:`elimination_tree` -- Liu's algorithm with path compression;
* :func:`symbolic_factor` -- column counts/structures of the factor L;
* :func:`supernodes` -- relaxed supernodes (runs of parent-linked
  columns merged while few extra rows appear), width-capped so the task
  queue has work to distribute; ``relax=0`` gives fundamental
  supernodes.

Everything operates on a :class:`SparsePattern`: column-major lists of row
indices of the strict lower triangle plus the diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["SparsePattern", "bcsstk_like", "elimination_tree",
           "symbolic_factor", "supernodes", "Supernode"]


@dataclass(frozen=True)
class SparsePattern:
    """Sparsity structure of a symmetric matrix (lower triangle).

    ``columns[j]`` holds the sorted row indices ``i >= j`` with a
    structural nonzero at (i, j); the diagonal is always present.
    """

    n: int
    columns: Tuple[Tuple[int, ...], ...]

    def __post_init__(self):
        if self.n != len(self.columns):
            raise ValueError("need exactly one column list per column")
        for j, rows in enumerate(self.columns):
            if not rows or rows[0] != j:
                raise ValueError(f"column {j} must start with its diagonal")
            if list(rows) != sorted(set(rows)):
                raise ValueError(f"column {j} rows must be sorted, unique")
            if rows[-1] >= self.n:
                raise ValueError(f"column {j} has a row out of range")

    @property
    def nnz(self) -> int:
        """Stored (lower-triangle) nonzeros, diagonal included."""
        return sum(len(rows) for rows in self.columns)


def bcsstk_like(n: int = 416, leaf: int = 24, band: int = 10,
                separator_fraction: float = 0.14,
                seed: int = 3) -> SparsePattern:
    """Generate a stiffness-matrix-style pattern in dissection order.

    Structural matrices like BCSSTK14 are factored after a fill-reducing
    reordering, which gives the elimination tree the shape that drives the
    paper's Cholesky results: bushy at the leaves (independent
    substructures factor in parallel) with progressively fewer, larger
    separator supernodes toward the root (the serial tail).  We build that
    shape directly: the variable set is recursively bisected; each half is
    eliminated before the separator that couples them.  Leaf domains carry
    an element band; separator variables couple to random boundary
    variables of both halves and to each other.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if leaf < 2:
        raise ValueError("leaf must be >= 2")
    if band < 1:
        raise ValueError("band must be >= 1")
    if not 0.0 < separator_fraction < 0.5:
        raise ValueError("separator_fraction must be in (0, 0.5)")
    rng = np.random.default_rng(seed)
    edges: set = set()
    order: List[int] = []

    def dissect(ids: List[int]) -> List[int]:
        """Return the elimination order of ``ids``; add their edges."""
        if len(ids) <= leaf:
            for idx, u in enumerate(ids):
                for v in ids[idx + 1:idx + 1 + band]:
                    if rng.uniform() < 0.8:
                        edges.add((u, v))
            return list(ids)
        sep_count = max(2, int(len(ids) * separator_fraction))
        interior = ids[:-sep_count]
        separator = ids[-sep_count:]
        half = len(interior) // 2
        left, right = interior[:half], interior[half:]
        ordered = dissect(left) + dissect(right)
        # Separator variables form a band among themselves and couple to
        # boundary variables of both halves.
        for idx, u in enumerate(separator):
            for v in separator[idx + 1:idx + 1 + band]:
                edges.add((u, v))
        for side in (left, right):
            boundary = side[-min(3 * band, len(side)):]
            for u in separator:
                picks = rng.choice(len(boundary),
                                   size=min(3, len(boundary)),
                                   replace=False)
                for pick in picks:
                    edges.add((u, boundary[pick]))
        return ordered + list(separator)

    order = dissect(list(range(n)))
    position = {var: pos for pos, var in enumerate(order)}
    columns: List[set] = [{j} for j in range(n)]
    for u, v in edges:
        a, b = position[u], position[v]
        low, high = (a, b) if a < b else (b, a)
        columns[low].add(high)
    return SparsePattern(
        n=n,
        columns=tuple(tuple(sorted(col)) for col in columns))


def elimination_tree(pattern: SparsePattern) -> List[int]:
    """Parent of each column in the elimination tree (-1 for roots).

    Liu's algorithm with path compression: O(nnz * alpha).
    """
    n = pattern.n
    parent = [-1] * n
    ancestor = [-1] * n
    # The algorithm must see entries in increasing *row* order, so build
    # the row-wise adjacency of the lower triangle first.
    rows: List[List[int]] = [[] for _ in range(n)]
    for j in range(n):
        for i in pattern.columns[j]:
            if i > j:
                rows[i].append(j)
    for i in range(n):
        for k in rows[i]:
            # Walk from k up the current tree, compressing, until we
            # fall off or meet i.
            node = k
            while ancestor[node] != -1 and ancestor[node] != i:
                next_node = ancestor[node]
                ancestor[node] = i
                node = next_node
            if ancestor[node] == -1:
                ancestor[node] = i
                parent[node] = i
    return parent


def symbolic_factor(
        pattern: SparsePattern) -> Tuple[SparsePattern, List[int]]:
    """Column structures of the Cholesky factor L, plus the etree.

    Left-to-right merge: ``struct(L_j)`` is the union of ``struct(A_j)``
    with ``struct(L_c) \\ {c}`` over the etree children ``c`` of ``j``.
    Returns ``(L_pattern, parent)``.
    """
    n = pattern.n
    parent = [-1] * n
    children: List[List[int]] = [[] for _ in range(n)]
    struct: List[Tuple[int, ...]] = [()] * n
    for j in range(n):
        rows = set(pattern.columns[j])
        for child in children[j]:
            rows.update(i for i in struct[child] if i > j)
        rows.add(j)
        ordered = tuple(sorted(rows))
        struct[j] = ordered
        if len(ordered) > 1:
            parent[j] = ordered[1]   # first off-diagonal row
            children[ordered[1]].append(j)
    return SparsePattern(n=n, columns=tuple(struct)), parent


@dataclass(frozen=True)
class Supernode:
    """A run of columns factored as one dense trapezoidal block.

    ``first``/``last`` are the inclusive column range; ``rows`` is the
    sorted union of the member columns' structures (relaxed supernodes
    store a few structural zeros in exchange for wider blocks, exactly as
    production supernodal codes do).  The first ``width`` rows are always
    the supernode's own columns.
    """

    index: int
    first: int
    last: int
    rows: Tuple[int, ...]

    @property
    def width(self) -> int:
        """Number of columns in the supernode."""
        return self.last - self.first + 1

    @property
    def height(self) -> int:
        """Number of rows in the supernode's block."""
        return len(self.rows)


def supernodes(factor: SparsePattern, parent: Sequence[int],
               max_width: int = 16, relax: int = 6) -> List[Supernode]:
    """Partition columns into relaxed supernodes.

    Column ``j+1`` joins ``j``'s run when it is ``j``'s etree parent, the
    run is under ``max_width`` columns (wide supernodes are split so the
    task queue has work to hand out, as the SPLASH code does with its
    panel decomposition), and merging adds at most ``relax`` rows that
    ``j``'s structure did not already have (``relax=0`` gives fundamental
    supernodes).
    """
    nodes: List[Supernode] = []
    n = factor.n
    j = 0
    while j < n:
        first = j
        rows = set(factor.columns[j])
        while (j + 1 < n
               and parent[j] == j + 1
               and j - first + 1 < max_width):
            extra = set(factor.columns[j + 1]) - rows
            if len(extra) > relax:
                break
            j += 1
            rows |= extra
        nodes.append(Supernode(index=len(nodes), first=first, last=j,
                               rows=tuple(sorted(rows))))
        j += 1
    return nodes
