"""Sweep fabric: the design-space grid as a distributed service.

A :class:`~repro.experiments.spec.SweepSpec` submitted to the fabric is
sharded by a :mod:`broker <repro.fabric.broker>` into leased work
units, executed by :mod:`workers <repro.fabric.worker>` that wrap the
ordinary :class:`~repro.experiments.session.SweepSession` staged
resolution, and settled through a content-addressed :mod:`store
<repro.fabric.store>` keyed by the *existing* ``point_cache_key`` /
trace-signature scheme -- so the fabric, local caches and session
journals interoperate byte for byte.  The :mod:`service
<repro.fabric.service>` module puts an asyncio HTTP front end on the
broker and :mod:`client <repro.fabric.client>` gives callers one stable
API (:class:`SweepClient`) over both the in-memory and the HTTP
transport.

Quick start (no sockets)::

    from repro.fabric import LocalFabric
    with LocalFabric(workers=2) as fabric:
        handle = fabric.client.submit(spec)
        sweep = fabric.client.result(handle)

or as a service: ``python -m repro serve`` then
``python -m repro submit --benchmark multiprogramming --url ...``.
"""

from .broker import Broker, DEFAULT_LEASE_TTL, SweepJob, WorkUnit
from .client import (HttpTransport, JobHandle, LocalFabric,
                     LocalTransport, SweepClient)
from .service import FabricService, start_in_thread
from .store import ArtifactStore, MemoryResultCache, MemoryTraceCache
from .wire import (FabricError, parse_point_label, point_label,
                   sweep_from_wire, sweep_to_wire)
from .worker import Worker

__all__ = [
    "ArtifactStore", "Broker", "DEFAULT_LEASE_TTL", "FabricError",
    "FabricService", "HttpTransport", "JobHandle", "LocalFabric",
    "LocalTransport", "MemoryResultCache", "MemoryTraceCache",
    "SweepClient", "SweepJob", "WorkUnit", "Worker",
    "parse_point_label", "point_label", "start_in_thread",
    "sweep_from_wire", "sweep_to_wire",
]
