"""Wire-level helpers shared by the fabric's broker, workers, service,
and client.

Everything that crosses a transport boundary is plain JSON: specs go as
:meth:`repro.experiments.spec.SweepSpec.to_wire` payloads, grid points
as ``"<procs>/<paper_bytes>"`` labels (the same label format the
session journal uses), and results as
:meth:`repro.experiments.runner.RunStats.as_dict` objects.  Keeping the
vocabulary here means the in-memory transport and the HTTP transport
cannot drift apart: both serialize through exactly these functions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..experiments.runner import RunStats
from ..experiments.spec import GridPoint

__all__ = ["FabricError", "point_label", "parse_point_label",
           "sweep_to_wire", "sweep_from_wire"]


class FabricError(RuntimeError):
    """A fabric request that could not be honoured (unknown job, bad
    spec, unsupported sweep kind...).  Raised identically by the local
    and the HTTP transport so callers never branch on the wire."""


def point_label(point: GridPoint) -> str:
    """``(procs, paper_bytes)`` -> ``"procs/paper_bytes"``."""
    return f"{point[0]}/{point[1]}"


def parse_point_label(label: str) -> GridPoint:
    """Inverse of :func:`point_label`."""
    try:
        procs_text, bytes_text = label.split("/")
        return (int(procs_text), int(bytes_text))
    except ValueError:
        raise FabricError(f"malformed point label {label!r}; "
                          f"expected '<procs>/<paper_bytes>'") from None


def sweep_to_wire(sweep: Dict[GridPoint, RunStats]) -> Dict[str, dict]:
    """``{point: RunStats}`` -> JSON-safe ``{label: stats dict}``."""
    return {point_label(point): stats.as_dict()
            for point, stats in sweep.items()}


def sweep_from_wire(
        payload: Optional[Dict[str, dict]]) -> Dict[GridPoint, RunStats]:
    """Inverse of :func:`sweep_to_wire`."""
    if not payload:
        return {}
    return {parse_point_label(label): RunStats.from_dict(stats)
            for label, stats in payload.items()}
