"""Content-addressed shared artifact store.

The fabric's data plane.  Workers publish every resolved point and
every recorded tape here; the broker reads points back out to settle
work units and to serve *warm* submissions without dispatching any work
at all.

The store deliberately invents **no new key scheme**: results are
addressed by the existing
:func:`repro.experiments.spec.point_cache_key` format (via
``SweepSpec.point_key``) and tapes by the workload's
``trace_signature``, stored through the very same
:class:`~repro.experiments.runner.ResultCache` and
:class:`~repro.trace.record.TraceCache` classes local sweeps use.
``ArtifactStore(".repro_cache")`` therefore *is* the default local
cache, byte for byte: a sweep run locally warms the fabric, a sweep run
through the fabric warms every local session, and journals keep
resolving against the same entries.  Both caches already write through
per-PID temporaries and ``os.replace``, so many workers (or many hosts
over a shared filesystem) can race on a key safely.

Publishing is idempotent: :meth:`ArtifactStore.publish` writes only
when the key is absent, so a duplicate completion -- e.g. a straggler
whose lease expired finishing after its re-leased twin -- never
rewrites an artifact.
"""

from __future__ import annotations

import os
from array import array
from pathlib import Path
from typing import Dict, Optional

from ..experiments.runner import ResultCache, RunStats
from ..trace.record import TraceCache

__all__ = ["ArtifactStore", "MemoryResultCache", "MemoryTraceCache"]


class MemoryResultCache:
    """Dict-backed stand-in for :class:`ResultCache` (same get/put
    surface) so a single-process fabric is testable without disk."""

    def __init__(self) -> None:
        self._entries: Dict[str, RunStats] = {}
        self.puts = 0

    def get(self, key: str) -> Optional[RunStats]:
        return self._entries.get(key)

    def put(self, key: str, stats: RunStats) -> None:
        self.puts += 1
        self._entries[key] = stats


class MemoryTraceCache:
    """Dict-backed stand-in for :class:`TraceCache`."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[int, array]] = {}

    def get(self, signature: str) -> Optional[Dict[int, array]]:
        streams = self._entries.get(signature)
        if streams is None:
            return None
        return {proc: array("q", data) for proc, data in streams.items()}

    def put(self, signature: str, streams: Dict[int, array]) -> None:
        self._entries[signature] = {proc: array("q", data)
                                    for proc, data in streams.items()}


class ArtifactStore:
    """Results + tapes under one root, in the local cache layout.

    ``directory`` is laid out exactly like ``.repro_cache``: result
    JSON files at the top level, recordings under ``traces/``.  Pass
    the node's actual ``.repro_cache`` (the ``serve`` CLI default) to
    share warmth with local sweeps, or any shared mount to share it
    across hosts.
    """

    def __init__(self, directory: Optional[Path] = None,
                 results=None, traces=None):
        if directory is not None:
            directory = Path(directory)
            self.directory: Optional[Path] = directory
            self.results = ResultCache(directory)
            self.traces = TraceCache(directory / "traces")
        else:
            if results is None or traces is None:
                raise ValueError("ArtifactStore needs a directory or "
                                 "explicit results= and traces= caches")
            self.directory = getattr(results, "directory", None)
            self.results = results
            self.traces = traces

    @classmethod
    def in_memory(cls) -> "ArtifactStore":
        """A process-local store (tests, ephemeral fabrics)."""
        return cls(results=MemoryResultCache(), traces=MemoryTraceCache())

    @classmethod
    def default(cls) -> "ArtifactStore":
        """The local cache layout (``REPRO_CACHE_DIR`` honoured), i.e.
        the same entries ``repro.experiments.runner.default_cache`` and
        ``default_trace_cache`` read and write."""
        return cls(Path(os.environ.get("REPRO_CACHE_DIR",
                                       ".repro_cache")))

    # ------------------------------------------------------------------
    # Results (content-addressed by the existing point_cache_key scheme)
    # ------------------------------------------------------------------

    def get_stats(self, key: str) -> Optional[RunStats]:
        return self.results.get(key)

    def publish(self, key: str, stats: RunStats) -> bool:
        """Store ``stats`` under ``key`` unless the key is already
        populated; returns ``True`` only when a write happened.

        The key is content-derived (the full parameterisation of the
        point), so an existing entry is the same result by construction
        -- a duplicate completion is dropped, not rewritten.
        """
        if self.results.get(key) is not None:
            return False
        self.results.put(key, stats)
        return True

    # ------------------------------------------------------------------
    # Tapes (keyed by trace signature)
    # ------------------------------------------------------------------

    def get_streams(self, signature: str) -> Optional[Dict[int, array]]:
        return self.traces.get(signature)

    def put_streams(self, signature: str,
                    streams: Dict[int, array]) -> None:
        self.traces.put(signature, streams)
