"""The fabric's control plane: jobs, work units, and leases.

A submitted :class:`~repro.experiments.spec.SweepSpec` becomes a *job*.
The broker first settles every grid point it can straight from the
:class:`~repro.fabric.store.ArtifactStore` (a fully warm reproduction
never creates any work at all), then shards the remainder into *work
units* -- one per grid row by default, because a row shares its
recorded tape and fused ladder -- and hands them to workers on
time-limited *leases*.

Lease state machine (per unit)::

    pending --lease()--> leased --complete()/all points settled--> done
       ^                   |
       |        deadline passes without a heartbeat
       +--- re-queued (work stealing; attempt += 1) ---+
                           |
          attempts exhausted: remaining points quarantined

Workers renew every lease they hold with :meth:`Broker.heartbeat`; a
worker that dies simply stops heartbeating and its units are re-leased
to whoever polls next.  Completions are settled through the
content-addressed store, so a straggler completing a unit that was
already re-leased and finished is resolved idempotently: the store
refuses the double-write and the points stay settled exactly once.

The broker is synchronous and thread-safe (one re-entrant lock, one
condition); the asyncio service calls into it from executor threads and
the in-memory transport calls it directly.  Progress is both counted in
a :class:`~repro.instrument.registry.MetricsRegistry` (the ``/metrics``
payload) and appended to a per-job event log that
:meth:`events_since` long-polls -- the NDJSON progress stream is just
that log replayed.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..experiments.runner import RunStats
from ..experiments.spec import GridPoint, SweepSpec
from ..instrument.registry import MetricsRegistry
from .store import ArtifactStore
from .wire import FabricError, point_label, sweep_to_wire

__all__ = ["Broker", "SweepJob", "WorkUnit", "DEFAULT_LEASE_TTL"]

DEFAULT_LEASE_TTL = 30.0
"""Seconds a lease stays valid without a heartbeat."""


class WorkUnit:
    """One shard of a job's grid: a row (or row chunk) of points."""

    __slots__ = ("unit_id", "job_id", "procs", "ladder", "attempts",
                 "state", "worker", "deadline")

    def __init__(self, unit_id: str, job_id: str, procs: int,
                 ladder: Tuple[int, ...]):
        self.unit_id = unit_id
        self.job_id = job_id
        self.procs = procs
        self.ladder = ladder
        self.attempts = 0           # times leased
        self.state = "pending"      # pending | leased | done
        self.worker: Optional[str] = None
        self.deadline = 0.0

    @property
    def points(self) -> List[GridPoint]:
        return [(self.procs, paper_bytes) for paper_bytes in self.ladder]

    def to_wire(self, spec_wire: dict, lease_ttl: float) -> dict:
        return {"unit": self.unit_id, "job": self.job_id,
                "attempt": self.attempts, "procs": self.procs,
                "ladder": list(self.ladder), "spec": spec_wire,
                "lease_ttl": lease_ttl}


class SweepJob:
    """Broker-side state of one submitted spec."""

    def __init__(self, job_id: str, spec: SweepSpec):
        self.job_id = job_id
        self.spec = spec
        self.spec_wire = spec.to_wire()
        self.configs = spec.configs()
        self.total = len(self.configs)
        self.results: Dict[GridPoint, RunStats] = {}
        self.quarantined: Dict[GridPoint, str] = {}
        self.events: List[dict] = []
        self.store_hits = 0
        self.finished = False

    @property
    def settled(self) -> int:
        return len(self.results) + len(self.quarantined)

    @property
    def done(self) -> bool:
        return self.settled >= self.total

    def status_payload(self) -> dict:
        return {
            "job": self.job_id,
            "signature": self.spec.signature(),
            "state": "done" if self.done else "running",
            "total": self.total,
            "done": len(self.results),
            "store_hits": self.store_hits,
            "quarantined": {point_label(point): reason
                            for point, reason in
                            sorted(self.quarantined.items())},
        }

    def result_payload(self) -> dict:
        return {
            "job": self.job_id,
            "points": sweep_to_wire(self.results),
            "quarantined": {point_label(point): reason
                            for point, reason in
                            sorted(self.quarantined.items())},
        }


class Broker:
    """Shard specs into leased work units and collect their results."""

    def __init__(self, store: Optional[ArtifactStore] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_unit_attempts: int = 3,
                 unit_points: int = 0,
                 clock: Callable[[], float] = time.monotonic):
        self.store = store if store is not None else ArtifactStore.default()
        self.lease_ttl = float(lease_ttl)
        self.max_unit_attempts = int(max_unit_attempts)
        self.unit_points = int(unit_points)
        """Points per unit; 0 = one unit per grid row (the default --
        a row shares its tape and fused ladder)."""
        self._clock = clock
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self.registry = MetricsRegistry()
        self.jobs: Dict[str, SweepJob] = {}
        self._units: Dict[str, WorkUnit] = {}
        self._queue: deque = deque()        # pending unit ids
        self._workers: Dict[str, float] = {}  # worker id -> last seen
        self._job_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    def submit(self, spec: SweepSpec) -> dict:
        """Register a job; returns its descriptor.

        Store-warm points settle immediately (zero work units for a
        fully warm spec); the remainder is sharded and queued.
        """
        if spec.kind == "miss-surface":
            raise FabricError("miss-surface sweeps are row analyses with "
                              "no point grid; run them locally with "
                              "run_sweep(spec)")
        with self._lock:
            job_id = f"j{next(self._job_seq):04d}-{spec.signature()[:8]}"
            job = SweepJob(job_id, spec)
            self.jobs[job_id] = job
            self._count("jobs.submitted")
            self._emit(job, {"event": "submitted", "job": job_id,
                             "total": job.total})
            missing: Dict[int, List[int]] = {}
            for point, config in job.configs.items():
                cached = self.store.get_stats(spec.point_key(config))
                if cached is not None:
                    job.store_hits += 1
                    self._settle(job, point, cached, via="store")
                else:
                    missing.setdefault(point[0], []).append(point[1])
            unit_seq = itertools.count(1)
            pending_units = 0
            for procs in sorted(missing):
                row = sorted(missing[procs])
                size = self.unit_points if self.unit_points > 0 else len(row)
                for start in range(0, len(row), size):
                    unit = WorkUnit(f"{job_id}/u{next(unit_seq)}", job_id,
                                    procs, tuple(row[start:start + size]))
                    self._units[unit.unit_id] = unit
                    self._queue.append(unit.unit_id)
                    pending_units += 1
            self._count("units.created", pending_units)
            self._finish_if_done(job)
            self._wake.notify_all()
            payload = job.status_payload()
            payload["pending_units"] = pending_units
            return payload

    def status(self, job_id: str) -> dict:
        with self._lock:
            self._reap()
            return self._job(job_id).status_payload()

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> Optional[dict]:
        """The job's full result payload, or ``None`` while it is still
        running after ``timeout`` seconds (``None`` = wait forever)."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            job = self._job(job_id)
            while not job.done:
                self._reap()
                budget = 0.2
                if deadline is not None:
                    budget = min(budget, deadline - time.monotonic())
                    if budget <= 0:
                        return None
                self._wake.wait(budget)
            return job.result_payload()

    def events_since(self, job_id: str, index: int,
                     timeout: float = 10.0) -> Tuple[List[dict], int]:
        """Long-poll the job's event log starting at ``index``."""
        deadline = time.monotonic() + timeout
        with self._lock:
            job = self._job(job_id)
            while len(job.events) <= index and not job.finished:
                self._reap()
                budget = min(0.2, deadline - time.monotonic())
                if budget <= 0:
                    break
                self._wake.wait(budget)
            events = job.events[index:]
            return events, index + len(events)

    def metrics(self) -> dict:
        with self._lock:
            running = sum(1 for job in self.jobs.values() if not job.done)
            return {
                "counters": dict(self.registry.counters),
                "jobs": {"total": len(self.jobs), "running": running},
                "units": {"pending": len(self._queue),
                          "leased": sum(1 for u in self._units.values()
                                        if u.state == "leased")},
                "workers": {worker: round(self._clock() - seen, 3)
                            for worker, seen in sorted(
                                self._workers.items())},
            }

    # ------------------------------------------------------------------
    # Worker API
    # ------------------------------------------------------------------

    def lease(self, worker_id: str) -> Optional[dict]:
        """Hand the next pending unit to ``worker_id`` (or ``None``)."""
        with self._lock:
            self._touch(worker_id)
            self._reap()
            while self._queue:
                unit = self._units.get(self._queue.popleft())
                if unit is None or unit.state != "pending":
                    continue
                job = self.jobs[unit.job_id]
                # Work stealing may re-lease a unit whose points partly
                # settled already; the worker's cache stage will skip
                # those, so the lease always goes out whole.
                unit.state = "leased"
                unit.worker = worker_id
                unit.attempts += 1
                unit.deadline = self._clock() + self.lease_ttl
                self._count("units.leased")
                self._emit(job, {"event": "unit", "unit": unit.unit_id,
                                 "status": "leased", "worker": worker_id,
                                 "attempt": unit.attempts})
                return unit.to_wire(job.spec_wire, self.lease_ttl)
            return None

    def heartbeat(self, worker_id: str) -> dict:
        """Renew every lease ``worker_id`` holds."""
        with self._lock:
            self._touch(worker_id)
            renewed = 0
            now = self._clock()
            for unit in self._units.values():
                if unit.state == "leased" and unit.worker == worker_id:
                    unit.deadline = now + self.lease_ttl
                    renewed += 1
            self._count("heartbeats")
            return {"worker": worker_id, "renewed": renewed}

    def progress(self, worker_id: str, unit_id: str, label: str,
                 status: str) -> dict:
        """Per-point progress from a worker; doubles as a heartbeat.

        The stats travel through the store (the worker published them
        before reporting), so the control message carries only the
        label and how the point was resolved.
        """
        with self._lock:
            self.heartbeat(worker_id)
            unit = self._units.get(unit_id)
            if unit is None:
                raise FabricError(f"unknown work unit {unit_id!r}")
            job = self.jobs[unit.job_id]
            point = self._parse_point(job, label)
            if status == "quarantined":
                # Settling happens at unit completion (retries may still
                # clear the point), but the report must not be swallowed:
                # stream it so progress watchers see the poisoned point
                # the moment the worker gives up an attempt on it.
                self._emit(job, {"event": "point", "point": label,
                                 "procs": point[0], "scc": point[1],
                                 "status": status, "worker": worker_id,
                                 "done": job.settled,
                                 "total": job.total})
            elif point not in job.results:
                stats = self.store.get_stats(
                    job.spec.point_key(job.configs[point]))
                if stats is not None:
                    self._settle(job, point, stats, via=status,
                                 worker=worker_id)
                    self._finish_unit_if_settled(unit)
                    self._finish_if_done(job)
                else:
                    # Not published yet -- stream the progress anyway;
                    # the point settles at completion (or re-lease).
                    self._emit(job, {"event": "point", "point": label,
                                     "procs": point[0], "scc": point[1],
                                     "status": status, "worker": worker_id,
                                     "done": job.settled,
                                     "total": job.total})
            self._wake.notify_all()
            return {"ok": True}

    def complete(self, worker_id: str, unit_id: str,
                 results: Optional[Dict[str, dict]] = None,
                 quarantined: Optional[Dict[str, str]] = None) -> dict:
        """Settle a unit.  Idempotent: a duplicate completion (the unit
        was re-leased and already finished elsewhere) settles nothing
        and double-writes nothing -- the store refuses overwrites and
        already-settled points are skipped."""
        with self._lock:
            self._touch(worker_id)
            unit = self._units.get(unit_id)
            if unit is None:
                raise FabricError(f"unknown work unit {unit_id!r}")
            job = self.jobs[unit.job_id]
            fresh = 0
            for label, payload in (results or {}).items():
                point = self._parse_point(job, label)
                if point in job.results:
                    continue
                stats = RunStats.from_dict(payload)
                job.quarantined.pop(point, None)
                self.store.publish(job.spec.point_key(job.configs[point]),
                                   stats)
                self._settle(job, point, stats, via="done",
                             worker=worker_id)
                fresh += 1
            for label, reason in (quarantined or {}).items():
                point = self._parse_point(job, label)
                if point in job.results or point in job.quarantined:
                    continue
                self._quarantine(job, point, reason)
            stale = unit.state == "done"
            if not stale:
                missing = [point for point in unit.points
                           if point not in job.results
                           and point not in job.quarantined]
                if missing:
                    # Partial completion: the rest of the unit goes back
                    # to the queue (or quarantine if the budget is gone).
                    self._requeue_or_quarantine(
                        unit, job, f"incomplete completion by "
                                   f"{worker_id} left {len(missing)} "
                                   f"point(s)")
                else:
                    self._finish_unit(unit, job)
            self._count("completions.stale" if stale and not fresh
                        else "completions")
            self._finish_if_done(job)
            self._wake.notify_all()
            return {"unit": unit_id, "stale": stale, "settled": fresh}

    def fail(self, worker_id: str, unit_id: str, reason: str) -> dict:
        """A worker could not execute its unit at all."""
        with self._lock:
            self._touch(worker_id)
            unit = self._units.get(unit_id)
            if unit is None:
                raise FabricError(f"unknown work unit {unit_id!r}")
            if unit.state == "leased" and unit.worker == worker_id:
                job = self.jobs[unit.job_id]
                self._count("units.failed")
                self._requeue_or_quarantine(unit, job, reason)
                self._finish_if_done(job)
                self._wake.notify_all()
            return {"unit": unit_id, "state": unit.state}

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------

    def _job(self, job_id: str) -> SweepJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise FabricError(f"unknown job {job_id!r}")
        return job

    @staticmethod
    def _parse_point(job: SweepJob, label: str) -> GridPoint:
        from .wire import parse_point_label
        point = parse_point_label(label)
        if point not in job.configs:
            raise FabricError(f"point {label!r} is not in job "
                              f"{job.job_id}'s grid")
        return point

    def _count(self, name: str, amount: float = 1) -> None:
        self.registry.count(f"fabric.{name}", amount)

    def _touch(self, worker_id: str) -> None:
        self._workers[worker_id] = self._clock()

    def _emit(self, job: SweepJob, event: dict) -> None:
        job.events.append(event)
        self._wake.notify_all()

    def _settle(self, job: SweepJob, point: GridPoint, stats: RunStats,
                via: str, worker: Optional[str] = None) -> None:
        job.results[point] = stats
        job.quarantined.pop(point, None)
        self._count(f"points.{via}" if via in ("store",)
                    else "points.resolved")
        event = {"event": "point", "point": point_label(point),
                 "procs": point[0], "scc": point[1], "status": via,
                 "done": job.settled, "total": job.total}
        if worker is not None:
            event["worker"] = worker
        self._emit(job, event)

    def _quarantine(self, job: SweepJob, point: GridPoint,
                    reason: str) -> None:
        job.quarantined[point] = reason
        self._count("points.quarantined")
        self._emit(job, {"event": "point", "point": point_label(point),
                         "procs": point[0], "scc": point[1],
                         "status": "quarantined", "reason": reason,
                         "done": job.settled, "total": job.total})

    def _finish_unit(self, unit: WorkUnit, job: SweepJob) -> None:
        unit.state = "done"
        unit.worker = None
        self._count("units.completed")
        self._emit(job, {"event": "unit", "unit": unit.unit_id,
                         "status": "completed"})

    def _finish_unit_if_settled(self, unit: WorkUnit) -> None:
        if unit.state == "done":
            return
        job = self.jobs[unit.job_id]
        if all(point in job.results or point in job.quarantined
               for point in unit.points):
            self._finish_unit(unit, job)

    def _requeue_or_quarantine(self, unit: WorkUnit, job: SweepJob,
                               reason: str) -> None:
        unit.worker = None
        if unit.attempts >= self.max_unit_attempts:
            unit.state = "done"
            for point in unit.points:
                if (point not in job.results
                        and point not in job.quarantined):
                    self._quarantine(
                        job, point,
                        f"{reason} (after {unit.attempts} lease "
                        f"attempt(s))")
            return
        unit.state = "pending"
        self._queue.append(unit.unit_id)
        self._emit(job, {"event": "unit", "unit": unit.unit_id,
                         "status": "requeued", "reason": reason,
                         "attempt": unit.attempts})

    def _reap(self) -> None:
        """Expire leases whose deadline passed; re-queue their units so
        any live worker can steal the work."""
        now = self._clock()
        for unit in list(self._units.values()):
            if unit.state == "leased" and unit.deadline <= now:
                job = self.jobs[unit.job_id]
                worker = unit.worker
                self._count("units.expired")
                self._emit(job, {"event": "unit", "unit": unit.unit_id,
                                 "status": "expired", "worker": worker})
                self._finish_unit_if_settled(unit)
                if unit.state != "done":
                    self._requeue_or_quarantine(
                        unit, job, f"lease expired on {worker}")
                self._finish_if_done(job)

    def _finish_if_done(self, job: SweepJob) -> None:
        if job.finished or not job.done:
            return
        job.finished = True
        self._count("jobs.completed")
        self._emit(job, {"event": "done", "job": job.job_id,
                         "ok": not job.quarantined,
                         "total": job.total,
                         "store_hits": job.store_hits,
                         "quarantined": {point_label(p): r for p, r in
                                         sorted(job.quarantined.items())}})
