"""The stable client surface of the sweep fabric.

:class:`SweepClient` is the only API examples and tests should need:
``submit(spec) -> handle``, ``iter_progress(handle)``,
``result(handle)``.  It speaks through a *transport* -- either
:class:`LocalTransport` (direct calls into an in-process
:class:`~repro.fabric.broker.Broker`; no sockets) or
:class:`HttpTransport` (urllib against a ``python -m repro serve``
instance) -- and behaves identically over both: the same payload
shapes cross both boundaries (see :mod:`repro.fabric.wire`) and both
raise :class:`~repro.fabric.wire.FabricError` for fabric-level
failures.

:class:`LocalFabric` bundles a broker, an in-memory (or directory)
store and a pool of worker threads into one context manager, so a whole
fabric round-trip fits in a test without any process or socket setup::

    with LocalFabric(workers=2) as fabric:
        handle = fabric.client.submit(spec)
        sweep = fabric.client.result(handle)   # {(procs, scc): RunStats}
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from ..experiments.runner import RunStats
from ..experiments.session import QuarantinedPointError
from ..experiments.spec import GridPoint, SweepSpec
from .broker import Broker, DEFAULT_LEASE_TTL
from .store import ArtifactStore
from .wire import FabricError, parse_point_label, sweep_from_wire
from .worker import Worker

__all__ = ["SweepClient", "JobHandle", "LocalTransport", "HttpTransport",
           "LocalFabric"]


@dataclass(frozen=True)
class JobHandle:
    """An accepted submission.  ``store_hits == total`` means the whole
    grid was served warm and no work units were created at all."""

    job: str
    signature: str
    total: int
    store_hits: int
    pending_units: int

    @classmethod
    def from_payload(cls, payload: dict) -> "JobHandle":
        return cls(job=payload["job"], signature=payload["signature"],
                   total=payload["total"],
                   store_hits=payload.get("store_hits", 0),
                   pending_units=payload.get("pending_units", 0))


class LocalTransport:
    """Direct calls into an in-process broker."""

    def __init__(self, broker: Broker):
        self.broker = broker

    def submit(self, spec_wire: dict) -> dict:
        return self.broker.submit(SweepSpec.from_wire(spec_wire))

    def status(self, job_id: str) -> dict:
        return self.broker.status(job_id)

    def events(self, job_id: str, since: int,
               timeout: float) -> dict:
        events, nxt = self.broker.events_since(job_id, since, timeout)
        return {"events": events, "next": nxt}

    def result(self, job_id: str,
               timeout: Optional[float]) -> Optional[dict]:
        return self.broker.result(job_id, timeout)


class HttpTransport:
    """The same surface over a ``repro serve`` endpoint via urllib."""

    def __init__(self, base_url: str, poll_timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.poll_timeout = poll_timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 timeout: Optional[float] = None) -> dict:
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"}
            if data is not None else {})
        http_timeout = (timeout if timeout is not None
                        else self.poll_timeout) + 30.0
        try:
            with urllib.request.urlopen(request,
                                        timeout=http_timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except Exception:  # noqa: BLE001 - body was not JSON
                message = str(exc)
            raise FabricError(message) from None
        except urllib.error.URLError as exc:
            raise FabricError(f"fabric service unreachable at "
                              f"{self.base_url}: {exc.reason}") from None

    # -- transport surface ---------------------------------------------

    def submit(self, spec_wire: dict) -> dict:
        return self._request("POST", "/jobs", {"spec": spec_wire})

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int, timeout: float) -> dict:
        return self._request(
            "GET", f"/jobs/{job_id}/events?since={since}"
                   f"&timeout={timeout}", timeout=timeout)

    def result(self, job_id: str,
               timeout: Optional[float]) -> Optional[dict]:
        # Mirror LocalTransport/Broker.result semantics exactly:
        # timeout=None blocks until the job finishes (as a sequence of
        # bounded long-polls, so no single HTTP request waits forever),
        # a finite timeout returns None once it lapses with the job
        # still running.
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            wait = self.poll_timeout
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            payload = self._request(
                "GET", f"/jobs/{job_id}/result?timeout={wait}",
                timeout=wait)
            if not payload.get("pending"):
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                return None


class SweepClient:
    """Submit specs to a fabric and collect their results."""

    def __init__(self, transport: Union[LocalTransport, HttpTransport]):
        self.transport = transport

    @classmethod
    def local(cls, broker: Broker) -> "SweepClient":
        return cls(LocalTransport(broker))

    @classmethod
    def connect(cls, url: str) -> "SweepClient":
        return cls(HttpTransport(url))

    # ------------------------------------------------------------------

    def submit(self, spec: SweepSpec) -> JobHandle:
        """Register ``spec`` with the fabric; returns immediately."""
        payload = self.transport.submit(spec.to_wire())
        return JobHandle.from_payload(payload)

    def status(self, handle: Union[JobHandle, str]) -> dict:
        return self.transport.status(self._job_id(handle))

    def iter_progress(self, handle: Union[JobHandle, str],
                      poll_timeout: float = 10.0) -> Iterator[dict]:
        """Yield the job's event stream (``submitted``, per-``point``,
        ``unit`` lifecycle, final ``done``) until the job finishes.

        Termination does not *depend* on spotting a ``done`` event: if
        an event page comes back drained, the job's state is consulted
        directly, so a stream whose terminal event was lost (or a job
        that finished -- e.g. quarantined its last point -- before the
        first poll with a truncated log) ends instead of long-polling
        forever.
        """
        job_id = self._job_id(handle)
        index = 0
        while True:
            page = self.transport.events(job_id, index, poll_timeout)
            for event in page["events"]:
                yield event
                if event.get("event") == "done":
                    return
            index = page["next"]
            if not page["events"]:
                # Drained without a terminal event: the long poll timed
                # out.  Double-check the job state rather than trusting
                # the event log to eventually deliver "done".
                if self.transport.status(job_id).get("state") == "done":
                    return

    def result(self, handle: Union[JobHandle, str],
               timeout: Optional[float] = None
               ) -> Dict[GridPoint, RunStats]:
        """Block until the job finishes and return its grid, exactly as
        :func:`~repro.experiments.session.run_sweep` would: a
        ``{(procs, paper_bytes): RunStats}`` mapping, or
        :class:`QuarantinedPointError` if any point was quarantined."""
        payload = self.transport.result(self._job_id(handle), timeout)
        if payload is None:
            raise FabricError(
                f"job {self._job_id(handle)} still running after "
                f"{timeout}s")
        quarantined = payload.get("quarantined") or {}
        if quarantined:
            raise QuarantinedPointError(
                {parse_point_label(label): reason
                 for label, reason in quarantined.items()})
        return sweep_from_wire(payload.get("points"))

    @staticmethod
    def _job_id(handle: Union[JobHandle, str]) -> str:
        return handle.job if isinstance(handle, JobHandle) else handle


class LocalFabric:
    """Broker + store + worker threads in one process.

    The single-process fabric: transports, leases, heartbeats, the
    store -- everything real except sockets.  ``store=None`` keeps all
    artifacts in memory; pass ``ArtifactStore(path)`` (or
    ``ArtifactStore.default()``) for a durable fabric.
    """

    def __init__(self, store: Optional[ArtifactStore] = None,
                 workers: int = 1,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_unit_attempts: int = 3,
                 clock=None):
        broker_kwargs = {"lease_ttl": lease_ttl,
                         "max_unit_attempts": max_unit_attempts}
        if clock is not None:
            broker_kwargs["clock"] = clock
        self.store = store if store is not None else ArtifactStore.in_memory()
        self.broker = Broker(self.store, **broker_kwargs)
        self.client = SweepClient.local(self.broker)
        self._stop = threading.Event()
        self._threads = []
        for index in range(workers):
            worker = Worker(self.broker, worker_id=f"local-{index + 1}")
            thread = threading.Thread(
                target=worker.run, kwargs={"stop": self._stop},
                name=worker.worker_id, daemon=True)
            thread.start()
            self._threads.append(thread)

    def close(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "LocalFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
