"""The fabric's execution plane: lease units, run them, publish.

A :class:`Worker` polls the broker for work units, rebuilds each unit's
row as a single-row :class:`~repro.experiments.spec.SweepSpec`, and
resolves it with the very same :class:`~repro.experiments.session.
SweepSession` staged pipeline a local sweep uses -- journal-less, with
the shared :class:`~repro.fabric.store.ArtifactStore` as its result and
trace cache.  Durability therefore comes from write-through: every
point the session resolves (cached, analytical, replayed or simulated)
lands in the content-addressed store *before* the worker reports it, so
a worker killed mid-unit loses at most the in-flight point and the
broker re-leases the remainder to a survivor whose cache stage skips
everything already published.

Fault injection (``REPRO_FAULT_INJECT``) flows through untouched: the
worker's compute path wraps the session's default
:func:`~repro.experiments.session._point_task`, which honours it.

Heartbeats: every progress report renews the worker's leases, and a
background pump keeps renewing during long simulations between points.
A worker that dies simply goes silent; its lease expires and the unit
is stolen.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
from typing import Callable, Optional

from ..experiments.session import SweepSession, _point_task
from ..experiments.spec import SweepSpec
from .store import ArtifactStore
from .wire import FabricError, point_label, sweep_to_wire

__all__ = ["Worker"]

_WORKER_SEQ = itertools.count(1)


class Worker:
    """One execution loop against a broker.

    ``broker`` is anything with the broker's worker-facing surface
    (``lease``/``heartbeat``/``progress``/``complete``/``fail``) --
    the in-process :class:`~repro.fabric.broker.Broker` itself, or a
    transport proxy.  ``store`` defaults to the broker's own store
    (single-process fabrics); give remote workers their node's view of
    the shared store.
    """

    def __init__(self, broker, store: Optional[ArtifactStore] = None,
                 worker_id: Optional[str] = None,
                 compute: Optional[Callable] = None,
                 heartbeat_interval: Optional[float] = None):
        self.broker = broker
        self.store = (store if store is not None
                      else getattr(broker, "store", None))
        if self.store is None:
            raise FabricError("worker needs an artifact store (none on "
                              "the broker handle either)")
        self.worker_id = (worker_id if worker_id is not None
                          else f"w{next(_WORKER_SEQ)}-{os.getpid()}")
        self._compute = compute or _point_task
        self._heartbeat_interval = heartbeat_interval
        self.units_done = 0

    # ------------------------------------------------------------------

    def run(self, stop: Optional[threading.Event] = None,
            max_units: Optional[int] = None,
            idle_wait: float = 0.05) -> int:
        """Lease-and-execute until ``stop`` is set, ``max_units`` have
        run, or (with neither given) the queue drains.  Returns the
        number of units executed."""
        executed = 0
        while stop is None or not stop.is_set():
            if max_units is not None and executed >= max_units:
                break
            if not self.run_once():
                if stop is None and max_units is None:
                    break           # drain mode: queue is empty
                if stop is not None and stop.wait(idle_wait):
                    break
            else:
                executed += 1
        return executed

    def run_once(self) -> bool:
        """Lease one unit and execute it; ``False`` when the broker had
        no pending work."""
        lease = self.broker.lease(self.worker_id)
        if lease is None:
            return False
        try:
            self._execute(lease)
        except Exception as exc:  # noqa: BLE001 - report, keep looping
            self.broker.fail(self.worker_id, lease["unit"],
                             f"{type(exc).__name__}: {exc}")
        else:
            self.units_done += 1
        return True

    # ------------------------------------------------------------------

    def _execute(self, lease: dict) -> None:
        unit_id = lease["unit"]
        spec = SweepSpec.from_wire(lease["spec"])
        # The unit is one grid row (or a chunk of one): rebuild it as a
        # standalone spec so the session keeps its fused-ladder and
        # record-once fast paths.  Execution knobs are forced local:
        # workers run serially (the fabric is the pool) and journal-less
        # (the store is the durability layer).
        row_spec = dataclasses.replace(
            spec, procs=(int(lease["procs"]),),
            ladder=tuple(int(b) for b in lease["ladder"]),
            jobs=None, point_timeout=None)
        configs = row_spec.configs()

        def publishing_compute(benchmark, profile, config, instrument,
                               point, backend):
            stats = self._compute(benchmark, profile, config,
                                  instrument, point, backend)
            # Make stage-3 results durable *per point* (the session
            # itself only write-through-caches them after the whole
            # stage) so a later crash loses nothing already computed.
            self.store.publish(row_spec.point_key(config), stats)
            return stats

        def report(point, status, done, total, counters):
            self.broker.progress(self.worker_id, unit_id,
                                 point_label(point), status)

        pump = _HeartbeatPump(self.broker, self.worker_id,
                              self._heartbeat_interval
                              or max(0.5, lease["lease_ttl"] / 3.0))
        pump.start()
        try:
            session = SweepSession(row_spec, cache=self.store.results,
                                   trace_cache=self.store.traces,
                                   progress=report,
                                   compute=publishing_compute)
            result = session.run()
        finally:
            pump.stop()
        self.broker.complete(
            self.worker_id, unit_id,
            results=sweep_to_wire(result.sweep),
            quarantined={point_label(point): reason
                         for point, reason in result.quarantined.items()})


class _HeartbeatPump(threading.Thread):
    """Renews a worker's leases while a unit executes."""

    def __init__(self, broker, worker_id: str, interval: float):
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self.broker = broker
        self.worker_id = worker_id
        self.interval = interval
        # Not ``_stop``: threading.Thread uses that name internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self.broker.heartbeat(self.worker_id)
            except Exception:  # noqa: BLE001 - broker gone; unit will fail
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=1.0)
