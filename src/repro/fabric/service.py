"""Stdlib-only asyncio HTTP front end for the sweep fabric.

One small, dependency-free server (``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 exchange -- no ``http.server`` threads, no
frameworks) exposing the broker:

====================================  ==================================
``GET  /healthz``                     liveness + job/unit gauges
``GET  /metrics``                     broker ``MetricsRegistry`` counters
``POST /jobs``                        submit ``{"spec": <to_wire>}``;
                                      returns the job descriptor (a warm
                                      grid is already ``state: done``)
``GET  /jobs/<id>``                   job status
``GET  /jobs/<id>/events``            long-poll the event log
                                      (``?since=N&timeout=T``)
``GET  /jobs/<id>/result``            full results (``?timeout=T``;
                                      ``{"pending": true}`` if not done)
``GET  /jobs/<id>/stream``            NDJSON event stream until ``done``
``POST /sweep``                       submit *and* stream NDJSON
                                      progress on one connection
====================================  ==================================

Every broker call is synchronous (one lock), so the handlers push them
onto the default executor and the event loop itself never blocks --
long-polls and NDJSON streams from many clients interleave freely.
Streams carry no ``Content-Length``; ``Connection: close`` delimits
them, which plain ``urllib`` / ``curl`` consume happily.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..experiments.spec import SweepSpec
from .broker import Broker
from .wire import FabricError

__all__ = ["FabricService", "start_in_thread"]

MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_POLL_SECONDS = 60.0
_JSON_HEADERS = "Content-Type: application/json\r\n"


class FabricService:
    """HTTP facade over one :class:`~repro.fabric.broker.Broker`."""

    def __init__(self, broker: Broker, host: str = "127.0.0.1",
                 port: int = 0):
        self.broker = broker
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(writer, *request)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            raise FabricError("malformed request line") from None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > MAX_BODY_BYTES:
            raise FabricError(f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    @staticmethod
    async def _send_json(writer: asyncio.StreamWriter, status: int,
                         payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n{_JSON_HEADERS}"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii") + body)
        await writer.drain()

    async def _call(self, fn: Callable, *args):
        """Run a blocking broker call off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        target: str, body: bytes) -> None:
        split = urlsplit(target)
        path = [part for part in split.path.split("/") if part]
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        try:
            await self._route(writer, method, path, query, body)
        except FabricError as exc:
            status = 404 if "unknown job" in str(exc) else 400
            await self._send_json(writer, status, {"error": str(exc)})
        except (ValueError, KeyError, TypeError) as exc:
            await self._send_json(
                writer, 400, {"error": f"{type(exc).__name__}: {exc}"})

    async def _route(self, writer, method: str, path, query,
                     body: bytes) -> None:
        if path == ["healthz"] and method == "GET":
            metrics = await self._call(self.broker.metrics)
            await self._send_json(writer, 200, {
                "ok": True, "jobs": metrics["jobs"],
                "units": metrics["units"],
                "workers": sorted(metrics["workers"])})
        elif path == ["metrics"] and method == "GET":
            await self._send_json(
                writer, 200, await self._call(self.broker.metrics))
        elif path == ["jobs"] and method == "POST":
            handle = await self._call(self.broker.submit,
                                      self._parse_spec(body))
            await self._send_json(writer, 200, handle)
        elif path == ["sweep"] and method == "POST":
            handle = await self._call(self.broker.submit,
                                      self._parse_spec(body))
            await self._stream_events(writer, handle["job"], 0,
                                      head=handle)
        elif len(path) == 2 and path[0] == "jobs" and method == "GET":
            await self._send_json(
                writer, 200, await self._call(self.broker.status,
                                              path[1]))
        elif (len(path) == 3 and path[0] == "jobs"
                and path[2] == "events" and method == "GET"):
            since = int(query.get("since", 0))
            timeout = self._poll_budget(query)
            events, nxt = await self._call(self.broker.events_since,
                                           path[1], since, timeout)
            await self._send_json(writer, 200,
                                  {"events": events, "next": nxt})
        elif (len(path) == 3 and path[0] == "jobs"
                and path[2] == "result" and method == "GET"):
            timeout = self._poll_budget(query)
            payload = await self._call(self.broker.result, path[1],
                                       timeout)
            if payload is None:
                status = await self._call(self.broker.status, path[1])
                status["pending"] = True
                await self._send_json(writer, 200, status)
            else:
                await self._send_json(writer, 200, payload)
        elif (len(path) == 3 and path[0] == "jobs"
                and path[2] == "stream" and method == "GET"):
            await self._stream_events(writer, path[1],
                                      int(query.get("since", 0)))
        else:
            await self._send_json(
                writer, 405 if path else 404,
                {"error": f"no route for {method} /{'/'.join(path)}"})

    @staticmethod
    def _parse_spec(body: bytes) -> SweepSpec:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise FabricError("request body is not JSON") from None
        if not isinstance(payload, dict) or "spec" not in payload:
            raise FabricError('expected a {"spec": {...}} body')
        return SweepSpec.from_wire(payload["spec"])

    @staticmethod
    def _poll_budget(query) -> float:
        return max(0.0, min(float(query.get("timeout", 10.0)),
                            MAX_POLL_SECONDS))

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job_id: str, since: int,
                             head: Optional[dict] = None) -> None:
        """NDJSON: one event per line, connection close delimits."""
        # Validate the job before committing to a streaming response so
        # an unknown id still gets a clean JSON error.
        await self._call(self.broker.status, job_id)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        if head is not None:
            writer.write((json.dumps(head, sort_keys=True) + "\n")
                         .encode("utf-8"))
            await writer.drain()
        index = since
        while True:
            events, index = await self._call(
                self.broker.events_since, job_id, index, 1.0)
            for event in events:
                writer.write((json.dumps(event, sort_keys=True) + "\n")
                             .encode("utf-8"))
            if events:
                await writer.drain()
            if any(event.get("event") == "done" for event in events):
                return


def start_in_thread(broker: Broker, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, Callable[[], None]]:
    """Run a :class:`FabricService` on a daemon thread; returns its URL
    and a stop callable.  The test/CI entry point -- the ``serve`` CLI
    uses :meth:`FabricService.serve_forever` on the main thread."""
    service = FabricService(broker, host, port)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list = []

    async def _main() -> None:
        try:
            await service.start()
        except Exception as exc:  # noqa: BLE001 - surface to caller
            failure.append(exc)
            return
        finally:
            started.set()
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            await service.stop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="fabric-service",
                              daemon=True)
    thread.start()
    started.wait(timeout=10.0)
    if failure:
        raise failure[0]

    def stop() -> None:
        def _cancel() -> None:
            for task in asyncio.all_tasks(loop):
                task.cancel()
        if loop.is_running():
            loop.call_soon_threadsafe(_cancel)
        thread.join(timeout=5.0)

    return service.url, stop
