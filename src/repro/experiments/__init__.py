"""Reproduction harness: one pipeline per table and figure of the paper
(see DESIGN.md's per-experiment index)."""

from .multiprog import (degradation_factor, figure5_curves,
                        figure6_speedups, render_figure5, render_figure6,
                        smallest_to_largest_improvement)
from .parallel import (PAPER_CHOLESKY_SPEEDUPS, PAPER_MP3D_SPEEDUPS,
                       PAPER_TABLE3, PAPER_TABLE4, invalidation_series,
                       normalized_execution_times, read_miss_rate_table,
                       render_figure, render_miss_rates, render_speedups,
                       self_relative_speedup, speedup_table)
from .report import format_size, render_ascii_chart, render_table
from .runner import (CACHE_VERSION, PAPER_LADDER, PROCS_SWEPT, PROFILES,
                     ExperimentProfile, ResultCache, RunStats,
                     active_profile, default_cache, miss_surface_sweep,
                     multiprogramming_sweep, parallel_sweep, run_point)
from .session import (QuarantinedPointError, SessionJournal,
                      SessionResult, SweepSession, default_session_dir,
                      grid_sweep, prune_stale_journals, run_sweep)
from .spec import KNOWN_BENCHMARKS, SweepSpec, point_cache_key
from .svgfig import render_svg_chart, save_svg_chart
from .tables import (PAPER_TABLE6, PAPER_TABLE7, render_section4_costs,
                     render_table5, render_table6, render_table7,
                     surfaces_from_sweeps)

__all__ = [
    "degradation_factor", "figure5_curves", "figure6_speedups",
    "render_figure5", "render_figure6", "smallest_to_largest_improvement",
    "PAPER_CHOLESKY_SPEEDUPS", "PAPER_MP3D_SPEEDUPS", "PAPER_TABLE3",
    "PAPER_TABLE4", "invalidation_series", "normalized_execution_times",
    "read_miss_rate_table", "render_figure", "render_miss_rates",
    "render_speedups", "self_relative_speedup", "speedup_table",
    "format_size", "render_ascii_chart", "render_table",
    "render_svg_chart", "save_svg_chart",
    "CACHE_VERSION", "PAPER_LADDER", "PROCS_SWEPT", "PROFILES",
    "ExperimentProfile", "ResultCache", "RunStats", "active_profile",
    "default_cache", "miss_surface_sweep", "multiprogramming_sweep",
    "parallel_sweep", "run_point",
    "KNOWN_BENCHMARKS", "SweepSpec", "point_cache_key",
    "QuarantinedPointError", "SessionJournal", "SessionResult",
    "SweepSession", "default_session_dir", "grid_sweep",
    "prune_stale_journals", "run_sweep",
    "PAPER_TABLE6", "PAPER_TABLE7", "render_section4_costs",
    "render_table5", "render_table6", "render_table7",
    "surfaces_from_sweeps",
]
