"""Fixed-width table and ASCII chart renderers for experiment output.

Every bench prints the same rows/series the paper reports; these helpers
keep the formatting consistent and dependency-free.  The figures are
line charts in the paper, so :func:`render_ascii_chart` draws the same
series on a character grid (log-scaled y, categorical x) under each
figure's table.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_ascii_chart", "format_size",
           "format_ratio"]


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` as a fixed-width text table with a title."""
    materialized: List[List[str]] = [[_cell(value) for value in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title]
    lines.append("  ".join(header.ljust(widths[i])
                           for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(value.rjust(widths[i]) if i else
                               value.ljust(widths[i])
                               for i, value in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_ascii_chart(title: str,
                       series: Dict[str, List[Tuple[int, float]]],
                       x_labels: Sequence[str],
                       height: int = 14, log_y: bool = True) -> str:
    """Draw one or more series on a character grid.

    ``series`` maps a single-character marker to points ``(x_index,
    value)``; ``x_labels`` names the categorical x positions.  Values
    spanning decades read best with ``log_y`` (the default, matching
    the paper's figures).
    """
    if not series:
        raise ValueError("need at least one series")
    points = [(marker, x, value)
              for marker, pts in series.items() for x, value in pts]
    if not points:
        raise ValueError("series contain no points")
    values = [value for _, _, value in points]
    if log_y and min(values) <= 0:
        raise ValueError("log-scaled chart needs positive values")
    scale = math.log10 if log_y else (lambda v: v)
    low = min(scale(v) for v in values)
    high = max(scale(v) for v in values)
    span = (high - low) or 1.0
    columns = len(x_labels)
    step = 6
    width = (columns - 1) * step + 1
    grid = [[" "] * width for _ in range(height)]
    for marker, x, value in points:
        if not 0 <= x < columns:
            raise ValueError(f"x index {x} outside the labels")
        row = int(round((high - scale(value)) / span * (height - 1)))
        grid[row][x * step] = marker[0]
    lines = [title]
    top = f"{10 ** high:.2f}" if log_y else f"{high:.2f}"
    bottom = f"{10 ** low:.2f}" if log_y else f"{low:.2f}"
    margin = max(len(top), len(bottom)) + 1
    for index, row in enumerate(grid):
        label = top if index == 0 else (bottom if index == height - 1
                                        else "")
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    axis = [" "] * (width + step)
    for column, text in enumerate(x_labels):
        position = column * step
        for offset, char in enumerate(text[:step - 1]):
            axis[position + offset] = char
    lines.append(" " * margin + "  " + "".join(axis).rstrip())
    return "\n".join(lines)


def format_size(size_bytes: int) -> str:
    """Human cache size: ``4 KB`` style."""
    if size_bytes >= 1024 and size_bytes % 1024 == 0:
        return f"{size_bytes // 1024} KB"
    return f"{size_bytes} B"


def format_ratio(value: float) -> str:
    """Two-decimal ratio."""
    return f"{value:.2f}"
