"""Section 3.2 experiment pipelines: Figures 5 and 6.

Figure 5 plots the multiprogramming workload's normalized execution time
against SCC size for each cluster width; Figure 6 re-normalizes each
point to the one-processor case at the same SCC size, isolating the
degradation caused by interference in the shared cache.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.config import KB
from .report import format_size, render_ascii_chart, render_table
from .runner import PAPER_LADDER, PROCS_SWEPT, Sweep

__all__ = ["figure5_curves", "figure6_speedups", "degradation_factor",
           "smallest_to_largest_improvement", "render_figure5",
           "render_figure6"]


def figure5_curves(sweep: Sweep) -> Dict[int, List[Tuple[int, float]]]:
    """Normalized execution time (1.0 = 8 procs @ 512 KB) per curve."""
    base = sweep[(8, 512 * KB)].execution_time
    curves: Dict[int, List[Tuple[int, float]]] = {}
    for procs in PROCS_SWEPT:
        curves[procs] = [
            (size, sweep[(procs, size)].execution_time / base)
            for size in PAPER_LADDER if (procs, size) in sweep
        ]
    return curves


def figure6_speedups(sweep: Sweep) -> Dict[int, Tuple[float, ...]]:
    """Self-relative speedups per SCC size (Figure 6's series)."""
    table: Dict[int, Tuple[float, ...]] = {}
    for size in PAPER_LADDER:
        if (1, size) not in sweep:
            continue
        base = sweep[(1, size)].execution_time
        table[size] = tuple(
            base / sweep[(procs, size)].execution_time
            for procs in PROCS_SWEPT if (procs, size) in sweep)
    return table


def degradation_factor(sweep: Sweep, size: int, procs: int = 8) -> float:
    """Ideal-to-actual ratio at one configuration: ``procs`` divided by
    the self-relative speedup.  1.0 means interference-free."""
    speedup = (sweep[(1, size)].execution_time
               / sweep[(procs, size)].execution_time)
    return procs / speedup


def smallest_to_largest_improvement(sweep: Sweep, procs: int = 8) -> float:
    """Execution-time improvement of ``procs``/cluster going from the
    smallest (4 KB) to the largest (512 KB) SCC -- the paper quotes a
    factor of 4.1 for eight processors."""
    return (sweep[(procs, 4 * KB)].execution_time
            / sweep[(procs, 512 * KB)].execution_time)


def render_figure5(sweep: Sweep) -> str:
    """Figure 5: normalized execution time vs SCC size."""
    curves = figure5_curves(sweep)
    rows = []
    for size in PAPER_LADDER:
        row: List[object] = [format_size(size)]
        for procs in PROCS_SWEPT:
            value = dict(curves[procs]).get(size)
            row.append(f"{value:.2f}" if value is not None else "-")
        rows.append(row)
    headers = ["SCC size"] + [f"{p} proc/cl" for p in PROCS_SWEPT]
    table = render_table(
        "multiprogramming: normalized execution time "
        "(1.0 = 8 procs/cluster @ 512 KB)", headers, rows)
    positions = {size: i for i, size in enumerate(PAPER_LADDER)}
    chart = render_ascii_chart(
        "(log-y; markers = procs/cluster)",
        {str(procs): [(positions[size], value)
                      for size, value in curves[procs]]
         for procs in PROCS_SWEPT},
        [format_size(size).replace(" ", "") for size in PAPER_LADDER])
    return table + "\n\n" + chart


def render_figure6(sweep: Sweep) -> str:
    """Figure 6: self-relative speedup vs processors per cluster."""
    table = figure6_speedups(sweep)
    rows = []
    for size, values in table.items():
        row: List[object] = [format_size(size)]
        row.extend(f"{value:.2f}" for value in values)
        rows.append(row)
    headers = ["SCC size"] + [f"{p} proc/cl" for p in PROCS_SWEPT]
    return render_table(
        "multiprogramming: self-relative speedups (Figure 6)",
        headers, rows)
