"""SVG line charts for the paper's figures (dependency-free).

The ASCII charts embedded in the text reports are handy in a terminal;
this module renders the same series as proper SVG line charts, which the
figure benches save alongside their reports under ``results/``.  The
generator is deliberately small and hand-rolled: a titled plot area,
log- or linear-scaled y axis with gridlines, categorical x positions,
one polyline-with-markers per series, and a legend.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

__all__ = ["render_svg_chart", "save_svg_chart"]

_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd",
            "#ff7f0e", "#8c564b")

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 140
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 48


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_svg_chart(title: str,
                     series: Dict[str, List[Tuple[int, float]]],
                     x_labels: Sequence[str],
                     y_label: str = "",
                     width: int = 640, height: int = 400,
                     log_y: bool = True) -> str:
    """Render series as an SVG document string.

    ``series`` maps a legend label to points ``(x_index, value)`` over
    the categorical ``x_labels`` positions.
    """
    if not series or not any(series.values()):
        raise ValueError("need at least one non-empty series")
    values = [value for points in series.values() for _, value in points]
    if log_y and min(values) <= 0:
        raise ValueError("log-scaled chart needs positive values")
    scale = math.log10 if log_y else (lambda v: float(v))
    low = min(scale(v) for v in values)
    high = max(scale(v) for v in values)
    if high == low:
        high = low + 1.0
    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
    columns = len(x_labels)

    def x_pos(index: int) -> float:
        if not 0 <= index < columns:
            raise ValueError(f"x index {index} outside the labels")
        if columns == 1:
            return _MARGIN_LEFT + plot_w / 2
        return _MARGIN_LEFT + plot_w * index / (columns - 1)

    def y_pos(value: float) -> float:
        return (_MARGIN_TOP
                + plot_h * (high - scale(value)) / (high - low))

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">')
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    parts.append(f'<text x="{width / 2}" y="20" text-anchor="middle" '
                 f'font-size="14">{_escape(title)}</text>')

    # Gridlines and y tick labels (4 divisions).
    for tick in range(5):
        fraction = tick / 4
        y = _MARGIN_TOP + plot_h * fraction
        level = high - (high - low) * fraction
        value = 10 ** level if log_y else level
        parts.append(f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
                     f'x2="{_MARGIN_LEFT + plot_w}" y2="{y:.1f}" '
                     f'stroke="#dddddd"/>')
        parts.append(f'<text x="{_MARGIN_LEFT - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{value:.2f}</text>')
    if y_label:
        parts.append(f'<text x="14" y="{_MARGIN_TOP + plot_h / 2:.1f}" '
                     f'text-anchor="middle" transform="rotate(-90 14 '
                     f'{_MARGIN_TOP + plot_h / 2:.1f})">'
                     f'{_escape(y_label)}</text>')

    # X axis labels.
    for index, label in enumerate(x_labels):
        parts.append(f'<text x="{x_pos(index):.1f}" '
                     f'y="{height - _MARGIN_BOTTOM + 20}" '
                     f'text-anchor="middle">{_escape(label)}</text>')

    # Series.
    for rank, (label, points) in enumerate(series.items()):
        color = _PALETTE[rank % len(_PALETTE)]
        coords = " ".join(f"{x_pos(x):.1f},{y_pos(v):.1f}"
                          for x, v in points)
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, v in points:
            parts.append(f'<circle cx="{x_pos(x):.1f}" '
                         f'cy="{y_pos(v):.1f}" r="3" fill="{color}"/>')
        legend_y = _MARGIN_TOP + 18 * rank
        legend_x = width - _MARGIN_RIGHT + 16
        parts.append(f'<line x1="{legend_x}" y1="{legend_y}" '
                     f'x2="{legend_x + 22}" y2="{legend_y}" '
                     f'stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{legend_x + 28}" y="{legend_y + 4}">'
                     f'{_escape(label)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg_chart(path: Union[str, Path], title: str,
                   series: Dict[str, List[Tuple[int, float]]],
                   x_labels: Sequence[str], **kwargs) -> Path:
    """Render and write a chart; returns the written path."""
    path = Path(path)
    path.write_text(render_svg_chart(title, series, x_labels, **kwargs))
    return path
