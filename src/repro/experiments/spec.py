"""Declarative sweep specifications and experiment profiles.

:class:`SweepSpec` is the single description of a design-space sweep:
which workload, which processor counts, which SCC ladder, and how to
run it (instrumentation, trace/fused policy, worker processes, retry
budget).  The legacy entry points in :mod:`repro.experiments.runner`
and the checkpointed :class:`~repro.experiments.session.SweepSession`
both consume one of these instead of threading an ever-growing
keyword list through every layer.

This module also owns the experiment profiles (workload sizings) and
the canonical per-point result-cache key, so a spec can answer both
"which simulations make up this sweep" (:meth:`SweepSpec.configs`) and
"under which keys do their results live" (:meth:`SweepSpec.point_key`,
:meth:`SweepSpec.signature`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.config import KB, SystemConfig
from ..workloads.barnes_hut import BarnesHut
from ..workloads.cholesky import Cholesky
from ..workloads.mp3d import MP3D
from ..workloads.multiprog import MultiprogrammingWorkload

__all__ = ["ExperimentProfile", "PROFILES", "active_profile",
           "PAPER_LADDER", "PROCS_SWEPT", "KNOWN_BENCHMARKS",
           "SWEEP_KINDS", "FIDELITIES", "VARIANT_KNOBS",
           "point_cache_key", "SweepSpec", "GridPoint", "WIRE_VERSION"]

WIRE_VERSION = 1
"""Version tag of the :meth:`SweepSpec.to_wire` JSON payload (the
fabric's submit body).  Bump only on incompatible wire changes."""

PAPER_LADDER: Tuple[int, ...] = tuple(
    kb * KB for kb in (4, 8, 16, 32, 64, 128, 256, 512))
"""The paper's SCC sweep, in paper bytes."""

PROCS_SWEPT: Tuple[int, ...] = (1, 2, 4, 8)

KNOWN_BENCHMARKS: Tuple[str, ...] = ("barnes-hut", "mp3d", "cholesky",
                                     "multiprogramming")

SWEEP_KINDS: Tuple[str, ...] = ("parallel", "multiprogramming",
                                "miss-surface")

FIDELITIES: Tuple[str, ...] = ("analytical", "fused", "full")
"""Resolution tiers for a sweep: ``analytical`` prices every point from
one recorded tape per row via :mod:`repro.model` (no simulation),
``fused`` (the default) allows the exact trace/fused-replay engines,
``full`` forces per-point simulation."""

CACHE_VERSION = 4
"""Bump to invalidate cached results after simulator changes.
(v4: cached payloads gained the ``instrument`` observability summary.)"""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ExperimentProfile:
    """Workload sizing for one reproduction quality level."""

    name: str
    ladder_scale: int
    barnes_bodies: int
    barnes_steps: int
    mp3d_particles: int
    mp3d_steps: int
    cholesky_n: int
    multiprog_instructions: int
    multiprog_quantum: int

    def scaled_ladder(self) -> Tuple[int, ...]:
        """Simulated SCC sizes standing in for the paper ladder."""
        return tuple(size // self.ladder_scale for size in PAPER_LADDER)

    # -- workload factories (fresh application object per call) ---------

    def barnes_hut(self) -> BarnesHut:
        return BarnesHut(n_bodies=self.barnes_bodies,
                         steps=self.barnes_steps)

    def mp3d(self) -> MP3D:
        return MP3D(n_particles=self.mp3d_particles, steps=self.mp3d_steps)

    def cholesky(self) -> Cholesky:
        return Cholesky(n=self.cholesky_n)

    def multiprogramming(self) -> MultiprogrammingWorkload:
        return MultiprogrammingWorkload(
            instructions_per_app=self.multiprog_instructions,
            quantum_instructions=self.multiprog_quantum,
            scale=self.ladder_scale)

    def workload(self, benchmark: str):
        """Factory dispatch by benchmark name."""
        factories: Dict[str, Callable] = {
            "barnes-hut": self.barnes_hut,
            "mp3d": self.mp3d,
            "cholesky": self.cholesky,
            "multiprogramming": self.multiprogramming,
        }
        try:
            return factories[benchmark]()
        except KeyError:
            raise ValueError(f"unknown benchmark {benchmark!r}") from None


PROFILES: Dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick", ladder_scale=8,
        barnes_bodies=192, barnes_steps=2,
        mp3d_particles=600, mp3d_steps=3,
        cholesky_n=288,
        multiprog_instructions=60_000, multiprog_quantum=20_000),
    "paper": ExperimentProfile(
        name="paper", ladder_scale=8,
        barnes_bodies=512, barnes_steps=2,
        mp3d_particles=900, mp3d_steps=5,
        cholesky_n=416,
        multiprog_instructions=150_000, multiprog_quantum=50_000),
}


def active_profile() -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default: ``paper``)."""
    name = os.environ.get("REPRO_PROFILE", "paper")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"REPRO_PROFILE={name!r}; "
                         f"known profiles: {sorted(PROFILES)}") from None


VARIANT_KNOBS: Tuple[str, ...] = ("associativity", "banks_per_processor",
                                  "protocol", "write_buffer_depth")
"""The :class:`~repro.core.config.SystemConfig` knobs a sweep may vary
away from the paper presets (via :attr:`SweepSpec.variants`).  The
design-space optimizer searches over these."""

_VARIANT_KEY_TAGS: Tuple[Tuple[str, str], ...] = (
    ("associativity", "assoc"), ("banks_per_processor", "banks"),
    ("protocol", "protocol"), ("write_buffer_depth", "wbuf"))
"""Cache-key component per variant knob, in canonical order."""


def _variant_key_suffix(config: SystemConfig) -> str:
    """Cache-key components for knobs set away from the paper presets.

    Empty for every preset-built grid (all existing caches keep their
    exact keys); a candidate exploring e.g. two-way associativity gets
    a distinct ``|assoc=2`` entry so it can never shadow -- or be
    served -- the direct-mapped result.
    """
    defaults = SystemConfig()
    return "".join(
        f"|{tag}={getattr(config, knob)}"
        for knob, tag in _VARIANT_KEY_TAGS
        if getattr(config, knob) != getattr(defaults, knob))


def point_cache_key(benchmark: str, profile: ExperimentProfile,
                    config: SystemConfig, instrument: bool = True) -> str:
    """The result-cache key of one grid point.

    The format is stable across releases (it predates
    :class:`SweepSpec`) so warm caches survive the API redesign.
    Non-preset variant knobs (associativity, banks, protocol, write
    buffers) append their own components; preset-built grids -- every
    sweep that existed before the optimizer -- keep byte-identical keys.
    """
    key = (f"{benchmark}|{profile}|clusters={config.clusters}"
           f"|procs={config.processors_per_cluster}"
           f"|scc={config.scc_size}|icache={config.icache_size}"
           f"|model_icache={config.model_icache}"
           f"{_variant_key_suffix(config)}")
    if not instrument:
        # Digest-less payloads get their own entries so a benchmark run
        # never shadows the default instrumented payload (and the default
        # key format is unchanged from earlier cache generations).
        key += "|instrument=False"
    return key


GridPoint = Tuple[int, int]
"""(processors per cluster, paper SCC bytes)."""


@dataclass(frozen=True)
class SweepSpec:
    """Complete, validated description of one design-space sweep.

    The identity half (``kind``, ``benchmark``, ``profile``, ``ladder``,
    ``procs``, ``instrument``) determines the results bit-for-bit and is
    digested by :meth:`signature`; the execution half (``jobs``,
    ``fused``, ``max_attempts``, ``point_timeout``, ``retry_backoff``)
    only controls *how* those results are obtained, so changing it never
    invalidates a session journal or the result cache.
    """

    kind: str
    """``"parallel"`` (Section 3.1), ``"multiprogramming"``
    (Section 3.2) or ``"miss-surface"`` (per-process content-only
    ladder analysis)."""

    benchmark: str
    profile: ExperimentProfile

    ladder: Tuple[int, ...] = PAPER_LADDER
    """SCC sizes in *paper* bytes; each simulation runs the paper size
    divided by the profile's ladder scale."""

    procs: Tuple[int, ...] = PROCS_SWEPT
    """Processors per cluster (miss-surface sweeps use exactly one)."""

    instrument: bool = True
    """Attach the summary-only observability digest to every point."""

    fused: bool = True
    """Allow the one-pass multi-configuration ladder engine."""

    fidelity: str = "fused"
    """Resolution tier (see :data:`FIDELITIES`).  ``analytical`` is part
    of the spec's *identity* -- its results are model outputs, cached
    under distinct keys, and never interchangeable with simulated ones
    -- while ``fused`` vs ``full`` only changes how the same exact
    results are obtained."""

    variants: Tuple[Tuple[str, object], ...] = ()
    """Config knobs applied on top of the paper presets for *every*
    grid point, as sorted ``(knob, value)`` pairs restricted to
    :data:`VARIANT_KNOBS` -- how the design-space optimizer prices
    candidates beyond the (procs, SCC) plane.  Part of the spec's
    identity: variants change the simulated machine, so they appear in
    :meth:`describe` (when non-empty; preset sweeps keep their existing
    signatures) and in every :meth:`point_key` via the knob's cache-key
    component."""

    strict_parallel: bool = False
    """Analytical sweeps only: refuse the surrogate for multi-processor
    *parallel* rows (where its error is known to be large, MAE ~ 0.09)
    and resolve them through the exact trace/fused tiers instead.  The
    optimizer sets this so tier-one triage never ranks candidates on
    known-bad predictions.  Affects which rows are predictions, so it
    is identity when set (refused rows use their exact, full-fidelity
    point keys)."""

    backend: Optional[str] = None
    """Packed-replay engine for simulated points (``auto``/``python``/
    ``numpy``/``native``; see :mod:`repro.trace.engine`).  Execution
    knob only: every backend produces bit-identical statistics, so it is
    deliberately absent from :meth:`describe`, :meth:`signature` and
    :meth:`point_key` -- switching engines never invalidates a journal
    or the result cache.  ``None`` defers to ``$REPRO_ENGINE``."""

    jobs: Optional[int] = None
    """Worker processes for uncached points (``None``/1 = serial)."""

    max_attempts: int = 3
    """Simulation attempts per point before it is quarantined."""

    point_timeout: Optional[float] = None
    """Wall-clock seconds one attempt may take (``None`` = unlimited).
    Enforcing a timeout requires worker processes, so a serial sweep
    with a timeout runs its points on a single-worker pool."""

    retry_backoff: float = 0.5
    """Seconds slept before retry ``n`` (scaled by the attempt number)."""

    def __post_init__(self) -> None:
        # Coerce sequences so specs hash and pickle regardless of how
        # the caller spelled the grid.
        object.__setattr__(self, "ladder", tuple(self.ladder))
        object.__setattr__(self, "procs", tuple(self.procs))
        _require(self.kind in SWEEP_KINDS,
                 f"kind must be one of {SWEEP_KINDS}")
        _require(self.benchmark in KNOWN_BENCHMARKS,
                 f"benchmark must be one of {KNOWN_BENCHMARKS}")
        _require(isinstance(self.profile, ExperimentProfile),
                 "profile must be an ExperimentProfile")
        if self.kind == "multiprogramming":
            _require(self.benchmark == "multiprogramming",
                     "multiprogramming sweeps run the multiprogramming "
                     "workload")
        _require(len(self.ladder) >= 1, "ladder must name at least one "
                                        "SCC size")
        _require(all(isinstance(size, int) and size >= 1
                     for size in self.ladder),
                 "ladder entries must be positive paper byte counts")
        _require(len(self.procs) >= 1,
                 "procs must name at least one processor count")
        _require(all(isinstance(count, int) and count >= 1
                     for count in self.procs),
                 "procs entries must be positive processor counts")
        if self.kind == "miss-surface":
            _require(len(self.procs) == 1,
                     "miss-surface sweeps analyse exactly one row; "
                     "pass procs=(n,)")
        _require(self.fidelity in FIDELITIES,
                 f"fidelity must be one of {FIDELITIES}")
        if self.fidelity == "analytical":
            _require(not self.instrument,
                     "analytical results carry no observability digest; "
                     "pass instrument=False")
            _require(self.kind != "miss-surface",
                     "miss-surface sweeps are already content-only "
                     "analyses; fidelity does not apply")
        _require(not self.strict_parallel or self.fidelity == "analytical",
                 "strict_parallel gates the analytical surrogate; it has "
                 "no meaning for exact fidelities")
        # Variants: canonicalize to sorted pairs with preset-valued
        # entries dropped, so equal machines always spell equal specs.
        defaults = SystemConfig()
        cleaned = {}
        for pair in self.variants:
            knob, value = pair
            _require(knob in VARIANT_KNOBS,
                     f"variant knob must be one of {VARIANT_KNOBS}, "
                     f"not {knob!r}")
            _require(knob not in cleaned or cleaned[knob] == value,
                     f"variant knob {knob!r} given twice")
            if value != getattr(defaults, knob):
                cleaned[knob] = value
        object.__setattr__(self, "variants",
                           tuple(sorted(cleaned.items())))
        if self.backend is not None:
            from ..trace.engine import BACKEND_CHOICES
            _require(self.backend in BACKEND_CHOICES,
                     f"backend must be one of {BACKEND_CHOICES}")
        _require(self.jobs is None or self.jobs >= 1,
                 "jobs must be None or >= 1")
        _require(self.max_attempts >= 1, "max_attempts must be >= 1")
        _require(self.point_timeout is None or self.point_timeout > 0,
                 "point_timeout must be None or > 0")
        _require(self.retry_backoff >= 0, "retry_backoff must be >= 0")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def parallel(cls, benchmark: str,
                 profile: Optional[ExperimentProfile] = None,
                 ladder: Optional[Tuple[int, ...]] = None,
                 procs: Tuple[int, ...] = PROCS_SWEPT,
                 **knobs) -> "SweepSpec":
        """The Section 3.1 grid for one parallel benchmark."""
        return cls(kind="parallel", benchmark=benchmark,
                   profile=profile or active_profile(),
                   ladder=ladder or PAPER_LADDER, procs=procs, **knobs)

    @classmethod
    def multiprogramming(cls,
                         profile: Optional[ExperimentProfile] = None,
                         ladder: Optional[Tuple[int, ...]] = None,
                         procs: Tuple[int, ...] = PROCS_SWEPT,
                         **knobs) -> "SweepSpec":
        """The Section 3.2 grid (single cluster, icache modelled)."""
        return cls(kind="multiprogramming", benchmark="multiprogramming",
                   profile=profile or active_profile(),
                   ladder=ladder or PAPER_LADDER, procs=procs, **knobs)

    @classmethod
    def miss_surface(cls, benchmark: str,
                     profile: Optional[ExperimentProfile] = None,
                     procs_per_cluster: int = 4,
                     ladder: Optional[Tuple[int, ...]] = None,
                     **knobs) -> "SweepSpec":
        """Per-process miss surface of one parallel-grid row."""
        return cls(kind="miss-surface", benchmark=benchmark,
                   profile=profile or active_profile(),
                   ladder=ladder or PAPER_LADDER,
                   procs=(procs_per_cluster,), **knobs)

    @classmethod
    def from_cli_args(cls, args, **overrides) -> "SweepSpec":
        """The single CLI-namespace -> spec path.

        Every subcommand that turns parsed arguments into a sweep
        (``sweep``, ``model``, ``bench``, ``submit``) goes through here:
        attributes missing from the namespace fall back to the spec
        defaults, and keyword ``overrides`` pin whatever the subcommand
        fixes itself (e.g. ``model`` passes ``fidelity="analytical"``,
        ``bench`` pins its scenario grid).  An override wins over the
        namespace unconditionally.
        """

        def pick(name, default=None):
            if name in overrides:
                return overrides.pop(name)
            return getattr(args, name, default)

        benchmark = pick("benchmark")
        if benchmark is None:
            raise ValueError("from_cli_args needs a benchmark (positional "
                             "argument or benchmark= override)")
        profile = pick("profile")
        if isinstance(profile, str):
            profile = PROFILES[profile]
        if profile is None:
            profile = active_profile()
        fidelity = pick("fidelity") or "fused"
        instrument = overrides.pop(
            "instrument", not getattr(args, "no_instrument", False))
        fused = overrides.pop(
            "fused", not getattr(args, "no_fused", False))
        ladder = pick("ladder")
        procs = pick("procs")
        knobs = dict(
            profile=profile,
            ladder=tuple(ladder) if ladder else None,
            procs=tuple(procs) if procs else PROCS_SWEPT,
            instrument=instrument and fidelity != "analytical",
            fused=fused and fidelity != "full",
            fidelity=fidelity,
            backend=pick("backend"),
            jobs=pick("jobs"),
            max_attempts=pick("retries", 2) + 1,
            point_timeout=pick("timeout"),
            retry_backoff=pick("backoff", 0.5),
        )
        if overrides:
            raise TypeError(f"unknown from_cli_args override(s): "
                            f"{sorted(overrides)}")
        if benchmark == "multiprogramming":
            return cls.multiprogramming(**knobs)
        return cls.parallel(benchmark, **knobs)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def configs(self) -> Dict[GridPoint, SystemConfig]:
        """Every grid point's machine configuration, keyed by
        (processors per cluster, paper SCC bytes)."""
        if self.kind == "miss-surface":
            raise ValueError(
                "miss-surface sweeps are row analyses, not point grids; "
                "run them through run_sweep()")
        scale = self.profile.ladder_scale
        overrides = dict(self.variants)
        if self.kind == "multiprogramming":
            icache = max(16 * KB // scale, 512)
            return {
                (count, paper_bytes):
                    SystemConfig.paper_multiprogramming(
                        count, paper_bytes // scale).with_updates(
                            icache_size=icache, **overrides)
                for paper_bytes in self.ladder
                for count in self.procs
            }
        return {
            (count, paper_bytes): SystemConfig.paper_parallel(
                count, paper_bytes // scale).with_updates(**overrides)
            for paper_bytes in self.ladder
            for count in self.procs
        }

    def point_key(self, config: SystemConfig) -> str:
        """The result-cache key of one of this sweep's points.

        Analytical points get a distinct, model-versioned key suffix:
        their payloads are predictions, so they must never be served
        for (or shadow) a full-fidelity request, and a model change
        must invalidate them without touching simulated entries.
        """
        key = point_cache_key(self.benchmark, self.profile, config,
                              self.instrument)
        if self.fidelity == "analytical" \
                and not self.analytical_refused(config):
            from ..model.profile import MODEL_VERSION
            key += f"|fidelity=analytical|model=v{MODEL_VERSION}"
        return key

    def analytical_refused(self, config: SystemConfig) -> bool:
        """Whether ``strict_parallel`` routes this point to the exact
        tiers: multi-processor *parallel* rows are where the surrogate
        is known-bad (interleaving-aware merge still missing).  Refused
        points resolve exactly, so they keep their exact point keys --
        a strict sweep can be warmed by (and warms) ordinary fused
        sweeps, and never serves a stale prediction."""
        return (self.strict_parallel and config.clusters > 1
                and config.processors_per_cluster > 1)

    def describe(self) -> Dict[str, object]:
        """JSON-safe identity payload (the fields that determine the
        results bit-for-bit; execution knobs are deliberately absent).

        ``fidelity`` appears only for analytical sweeps: fused and full
        produce bit-identical results, so they share a signature (and
        existing journals stay valid)."""
        payload = {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "profile": asdict(self.profile),
            "ladder": list(self.ladder),
            "procs": list(self.procs),
            "instrument": self.instrument,
        }
        if self.fidelity == "analytical":
            payload["fidelity"] = "analytical"
            if self.strict_parallel:
                payload["strict_parallel"] = True
        if self.variants:
            payload["variants"] = [list(pair) for pair in self.variants]
        return payload

    def signature(self) -> str:
        """Stable digest of :meth:`describe`; keys the session journal
        (and anything else that needs one name for the whole sweep)."""
        payload = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(
            f"s{CACHE_VERSION}:{payload}".encode()).hexdigest()[:24]

    # ------------------------------------------------------------------
    # Wire format (the fabric's submit payload)
    # ------------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        """Complete JSON-safe payload: identity *and* execution knobs.

        Unlike :meth:`describe` (which deliberately omits execution
        knobs so signatures stay stable) this is a full round-trip --
        ``SweepSpec.from_wire(spec.to_wire())`` reconstructs an equal
        spec, which is what ``repro.fabric`` ships between client,
        broker, and workers.
        """
        return {
            "version": WIRE_VERSION,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "profile": asdict(self.profile),
            "ladder": list(self.ladder),
            "procs": list(self.procs),
            "instrument": self.instrument,
            "fused": self.fused,
            "fidelity": self.fidelity,
            "variants": [list(pair) for pair in self.variants],
            "strict_parallel": self.strict_parallel,
            "backend": self.backend,
            "jobs": self.jobs,
            "max_attempts": self.max_attempts,
            "point_timeout": self.point_timeout,
            "retry_backoff": self.retry_backoff,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "SweepSpec":
        """Rebuild (and re-validate) a spec from :meth:`to_wire`."""
        if not isinstance(payload, dict):
            raise ValueError("wire spec must be a JSON object")
        version = payload.get("version")
        if version != WIRE_VERSION:
            raise ValueError(f"unsupported spec wire version {version!r} "
                             f"(this build speaks {WIRE_VERSION})")
        try:
            profile = ExperimentProfile(**payload["profile"])
            return cls(
                kind=payload["kind"],
                benchmark=payload["benchmark"],
                profile=profile,
                ladder=tuple(payload["ladder"]),
                procs=tuple(payload["procs"]),
                instrument=bool(payload["instrument"]),
                fused=bool(payload["fused"]),
                fidelity=payload["fidelity"],
                variants=tuple((str(knob), value) for knob, value
                               in payload.get("variants") or ()),
                strict_parallel=bool(payload.get("strict_parallel",
                                                 False)),
                backend=payload.get("backend"),
                jobs=payload.get("jobs"),
                max_attempts=int(payload.get("max_attempts", 3)),
                point_timeout=payload.get("point_timeout"),
                retry_backoff=float(payload.get("retry_backoff", 0.5)),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed spec wire payload: {exc}") from None
