"""Section 3.1 experiment pipelines: Figures 2-4 and Tables 3-4.

Each function takes a sweep from :func:`repro.experiments.runner.parallel_sweep`
and produces both the data (for assertions) and a printable report that
mirrors the paper's presentation.  The paper's own numbers are included
as constants so every bench prints paper-vs-measured.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.config import KB
from .report import format_size, render_ascii_chart, render_table
from .runner import PAPER_LADDER, PROCS_SWEPT, Sweep

__all__ = [
    "normalized_execution_times", "speedup_table", "read_miss_rate_table",
    "invalidation_series", "self_relative_speedup",
    "render_figure", "render_speedups", "render_miss_rates",
    "PAPER_TABLE3", "PAPER_TABLE4", "PAPER_MP3D_SPEEDUPS",
    "PAPER_CHOLESKY_SPEEDUPS",
]

#: Table 3 -- Barnes-Hut speedups relative to one processor per cluster.
PAPER_TABLE3: Dict[int, Tuple[float, float, float, float]] = {
    4 * KB: (1.0, 1.9, 3.0, 4.5),
    8 * KB: (1.0, 2.1, 2.9, 4.8),
    16 * KB: (1.0, 2.2, 2.8, 4.6),
    32 * KB: (1.0, 2.8, 3.8, 6.1),
    64 * KB: (1.0, 3.0, 5.3, 7.9),
    128 * KB: (1.0, 3.1, 6.5, 10.3),
    256 * KB: (1.0, 3.2, 6.8, 11.8),
    512 * KB: (1.0, 3.2, 7.7, 12.5),
}

#: Table 4 -- Barnes-Hut read miss rates (percent).
PAPER_TABLE4: Dict[int, Tuple[float, float, float, float]] = {
    8 * KB: (7.96, 7.82, 8.53, 10.33),
    64 * KB: (4.55, 1.45, 0.86, 1.26),
    256 * KB: (4.10, 0.92, 0.17, 0.26),
}

#: Section 3.1.2 -- MP3D 8-procs-per-cluster self-relative speedups.
PAPER_MP3D_SPEEDUPS = {4 * KB: 3.8, 512 * KB: 7.2}

#: Section 3.1.3 -- Cholesky 8-procs-per-cluster self-relative speedups.
PAPER_CHOLESKY_SPEEDUPS = {4 * KB: 3.0, 512 * KB: 3.5}


def normalized_execution_times(
        sweep: Sweep,
        base_config: Tuple[int, int] = (8, 512 * KB)
) -> Dict[int, List[Tuple[int, float]]]:
    """Figure 2/3/4 curves: per processors-per-cluster, the series of
    (paper SCC bytes, execution time normalized to ``base_config``)."""
    base = sweep[base_config].execution_time
    curves: Dict[int, List[Tuple[int, float]]] = {}
    for procs in PROCS_SWEPT:
        curves[procs] = [
            (size, sweep[(procs, size)].execution_time / base)
            for size in PAPER_LADDER if (procs, size) in sweep
        ]
    return curves


def speedup_table(sweep: Sweep) -> Dict[int, Tuple[float, ...]]:
    """Table 3 layout: per SCC size, speedups relative to 1 proc/cluster."""
    table: Dict[int, Tuple[float, ...]] = {}
    for size in PAPER_LADDER:
        if (1, size) not in sweep:
            continue
        base = sweep[(1, size)].execution_time
        table[size] = tuple(
            base / sweep[(procs, size)].execution_time
            for procs in PROCS_SWEPT if (procs, size) in sweep)
    return table


def read_miss_rate_table(
        sweep: Sweep,
        sizes: Sequence[int] = (8 * KB, 64 * KB, 256 * KB)
) -> Dict[int, Tuple[float, ...]]:
    """Table 4 layout: read miss rates (percent) per size x procs."""
    table: Dict[int, Tuple[float, ...]] = {}
    for size in sizes:
        table[size] = tuple(
            100.0 * sweep[(procs, size)].read_miss_rate
            for procs in PROCS_SWEPT if (procs, size) in sweep)
    return table


def invalidation_series(sweep: Sweep,
                        size: int) -> Tuple[int, ...]:
    """Invalidations performed vs processors per cluster, at one size --
    the quantity Sections 3.1.1-3.1.3 observe to be flat."""
    return tuple(sweep[(procs, size)].invalidations
                 for procs in PROCS_SWEPT if (procs, size) in sweep)


def self_relative_speedup(sweep: Sweep, size: int,
                          procs: int = 8) -> float:
    """Speedup of ``procs``/cluster over 1/cluster at one SCC size."""
    return (sweep[(1, size)].execution_time
            / sweep[(procs, size)].execution_time)


# ----------------------------------------------------------------------
# Renderers (what the benches print)
# ----------------------------------------------------------------------

def render_figure(benchmark: str, sweep: Sweep) -> str:
    """Figure 2/3/4: normalized execution time vs SCC size."""
    curves = normalized_execution_times(sweep)
    rows = []
    for size in PAPER_LADDER:
        row: List[object] = [format_size(size)]
        for procs in PROCS_SWEPT:
            value = dict(curves[procs]).get(size)
            row.append(f"{value:.2f}" if value is not None else "-")
        rows.append(row)
    headers = ["SCC size"] + [f"{p} proc/cl" for p in PROCS_SWEPT]
    table = render_table(
        f"{benchmark}: normalized execution time "
        f"(1.0 = 8 procs/cluster @ 512 KB)", headers, rows)
    positions = {size: i for i, size in enumerate(PAPER_LADDER)}
    chart = render_ascii_chart(
        "(log-y; markers = procs/cluster)",
        {str(procs): [(positions[size], value)
                      for size, value in curves[procs]]
         for procs in PROCS_SWEPT},
        [format_size(size).replace(" ", "") for size in PAPER_LADDER])
    return table + "\n\n" + chart


def render_speedups(benchmark: str, sweep: Sweep,
                    paper: Dict[int, Tuple[float, ...]] = None) -> str:
    """Table 3 style speedups, with the paper's values when known."""
    table = speedup_table(sweep)
    rows = []
    for size, values in table.items():
        row: List[object] = [format_size(size)]
        row.extend(f"{value:.1f}" for value in values)
        if paper and size in paper:
            row.append(" / ".join(f"{v:.1f}" for v in paper[size]))
        elif paper:
            row.append("-")
        rows.append(row)
    headers = (["SCC size"] + [f"{p} proc/cl" for p in PROCS_SWEPT]
               + (["paper (1/2/4/8)"] if paper else []))
    return render_table(
        f"{benchmark}: speedups relative to one processor per cluster",
        headers, rows)


def render_miss_rates(benchmark: str, sweep: Sweep,
                      paper: Dict[int, Tuple[float, ...]] = None) -> str:
    """Table 4 style read miss rates."""
    sizes = tuple(paper) if paper else (8 * KB, 64 * KB, 256 * KB)
    table = read_miss_rate_table(sweep, sizes)
    rows = []
    for size, values in table.items():
        row: List[object] = [format_size(size)]
        row.extend(f"{value:.2f}%" for value in values)
        if paper and size in paper:
            row.append(" / ".join(f"{v:.2f}" for v in paper[size]))
        rows.append(row)
    headers = (["SCC size"] + [f"{p} proc/cl" for p in PROCS_SWEPT]
               + (["paper (1/2/4/8)"] if paper else []))
    return render_table(
        f"{benchmark}: read miss rates", headers, rows)
