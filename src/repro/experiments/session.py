"""Checkpointed, fault-tolerant sweep orchestration.

:func:`run_sweep` is the one entry point every sweep goes through: it
takes a declarative :class:`~repro.experiments.spec.SweepSpec` and
resolves the grid through (in order) the session journal, the result
cache, the trace/fused replay engines, and finally real simulation --
serially or on the persistent worker pool.

:class:`SweepSession` is the stateful half.  It persists a *journal*
(one JSON file per spec signature, written atomically like the result
and trace caches) recording each point's status and result, so a sweep
that crashes or is killed resumes from the last completed point instead
of restarting from zero.  Per-point execution is supervised: a point
that raises is retried with backoff up to ``spec.max_attempts`` times,
a point that exceeds ``spec.point_timeout`` has its worker killed and
is retried the same way, and a point that exhausts its attempts is
*quarantined* -- reported in the result instead of sinking the rest of
the grid.  Progress (done/cached/replayed/retried/quarantined counts)
is accounted in a :class:`~repro.instrument.registry.MetricsRegistry`
so CLIs and dashboards read live state through the same observability
surface as everything else.

Fault injection for tests and drills: set ``REPRO_FAULT_INJECT`` to
``"<procs>:<paper_bytes>:<mode>"`` (mode ``raise`` or ``hang``) and the
matching grid point misbehaves accordingly in whichever process
computes it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core.config import SystemConfig
from ..instrument.registry import MetricsRegistry
from ..trace.record import TraceCache
from .runner import (ResultCache, RunStats, Sweep, _compute_point_pooled,
                     _resolve_via_traces, _shutdown_pool, _worker_pool,
                     default_cache)
from .spec import GridPoint, SweepSpec, point_cache_key

__all__ = ["SweepSession", "SessionResult", "SessionJournal",
           "run_sweep", "grid_sweep", "QuarantinedPointError",
           "default_session_dir", "prune_stale_journals",
           "FAULT_INJECT_ENV"]

_LOG = logging.getLogger(__name__)

JOURNAL_VERSION = 1

FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

_DEFAULT_CACHE = object()
"""Sentinel: 'use :func:`~repro.experiments.runner.default_cache`'
(pass ``cache=None`` explicitly to disable result caching)."""


def default_session_dir() -> Path:
    """Journal directory (override with ``REPRO_SESSION_DIR``)."""
    return Path(os.environ.get(
        "REPRO_SESSION_DIR", os.path.join(".repro_cache", "sessions")))


STALE_TMP_AGE_S = 3600.0
"""Orphaned per-PID ``*.tmp`` journal temporaries older than this are
debris from a killed writer, not a write in progress."""


def prune_stale_journals(directory: Optional[Path],
                         keep_signature: Optional[str] = None,
                         tmp_age: float = STALE_TMP_AGE_S) -> List[Path]:
    """Garbage-collect the session directory; returns the paths removed.

    Two kinds of debris accumulate without this: per-PID
    ``<sig>.json.<pid>.tmp`` temporaries orphaned by a writer killed
    between ``write_text`` and ``os.replace`` (removed once older than
    ``tmp_age`` seconds), and journals of *finished* sweeps -- every
    grid point recorded ``done`` -- which no live run will ever resume.
    In-progress and quarantine-bearing journals are kept (they are
    exactly what ``--resume`` needs), as is the journal matching
    ``keep_signature`` (the opening session's own), and corrupt files
    are left for :meth:`SessionJournal.load` to report.
    """
    if directory is None:
        return []
    directory = Path(directory)
    if not directory.is_dir():
        return []
    removed: List[Path] = []
    now = time.time()
    for tmp in directory.glob("*.json.*.tmp"):
        try:
            if now - tmp.stat().st_mtime >= tmp_age:
                tmp.unlink()
                removed.append(tmp)
        except OSError:
            continue
    for path in directory.glob("*.json"):
        if keep_signature is not None and path.stem == keep_signature:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            continue
        points = payload.get("points")
        spec_desc = payload.get("spec")
        if (payload.get("version") != JOURNAL_VERSION
                or not isinstance(points, dict)
                or not isinstance(spec_desc, dict)):
            continue
        try:
            grid_size = (len(spec_desc["ladder"])
                         * len(spec_desc["procs"]))
        except (KeyError, TypeError):
            continue
        finished = (len(points) >= grid_size
                    and all(isinstance(entry, dict)
                            and entry.get("status") == "done"
                            for entry in points.values()))
        if finished:
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                continue
    if removed:
        _LOG.info("pruned %d stale session file(s) from %s",
                  len(removed), directory)
    return removed


class QuarantinedPointError(RuntimeError):
    """Raised by :func:`run_sweep` after the grid has been resolved as
    far as possible but one or more points were quarantined."""

    def __init__(self, quarantined: Dict[GridPoint, str]):
        self.quarantined = dict(quarantined)
        detail = "; ".join(
            f"procs={procs} scc={paper_bytes}B: {reason}"
            for (procs, paper_bytes), reason in sorted(quarantined.items()))
        super().__init__(
            f"{len(quarantined)} sweep point(s) quarantined: {detail}")


def _stats_digest(stats: RunStats) -> str:
    """Content digest journaled next to each result (cheap tamper/skew
    check when healing the result cache on resume)."""
    payload = json.dumps(stats.as_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _point_label(point: GridPoint) -> str:
    return f"{point[0]}/{point[1]}"


def _maybe_inject_fault(point: GridPoint) -> None:
    """Honour ``REPRO_FAULT_INJECT`` for the matching grid point."""
    spec = os.environ.get(FAULT_INJECT_ENV)
    if not spec:
        return
    try:
        procs_text, bytes_text, mode = spec.split(":")
        target = (int(procs_text), int(bytes_text))
    except ValueError:
        raise ValueError(
            f"{FAULT_INJECT_ENV}={spec!r}; expected "
            f"'<procs>:<paper_bytes>:<raise|hang>'") from None
    if point != target:
        return
    if mode == "raise":
        raise RuntimeError(
            f"injected fault at point procs={point[0]} scc={point[1]}B")
    if mode == "hang":
        time.sleep(3600)
        return
    raise ValueError(f"{FAULT_INJECT_ENV} mode must be 'raise' or "
                     f"'hang', not {mode!r}")


def _point_task(benchmark, profile, config, instrument,
                point: GridPoint, backend=None) -> RunStats:
    """One supervised point simulation (module-level so the worker pool
    can pickle it; fault injection reads the inherited environment)."""
    _maybe_inject_fault(point)
    return _compute_point_pooled(benchmark, profile, config, instrument,
                                 backend)


class SessionJournal:
    """Crash-safe per-sweep record of point outcomes.

    One JSON file per spec signature.  Every update rewrites the file
    through a per-PID temporary and ``os.replace`` -- the same atomic
    discipline as :class:`~repro.experiments.runner.ResultCache` -- so
    a SIGKILL at any instant leaves either the previous or the next
    consistent journal, never a torn one.  Each ``done`` entry carries
    the full :class:`RunStats` payload, making resume independent of
    the result cache surviving the crash.
    """

    def __init__(self, spec: SweepSpec,
                 directory: Optional[Path] = None):
        self.spec = spec
        self.directory = Path(directory) if directory is not None else None
        self.points: Dict[str, dict] = {}

    @property
    def path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{self.spec.signature()}.json"

    def load(self) -> bool:
        """Adopt the on-disk state; ``True`` if a usable journal for
        this spec existed (corrupt or mismatched files start fresh)."""
        path = self.path
        if path is None:
            return False
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, OSError):
            return False
        except (json.JSONDecodeError, ValueError) as exc:
            _LOG.warning("discarding corrupt sweep journal %s (%s)",
                         path, exc)
            self._unlink()
            return False
        if (payload.get("version") != JOURNAL_VERSION
                or payload.get("signature") != self.spec.signature()
                or not isinstance(payload.get("points"), dict)):
            _LOG.warning("sweep journal %s does not match this spec; "
                         "starting fresh", path)
            return False
        self.points = payload["points"]
        return True

    def reset(self) -> None:
        self.points = {}
        self._unlink()

    def record(self, point: GridPoint, status: str, *,
               stats: Optional[RunStats] = None,
               attempts: int = 1, reason: Optional[str] = None) -> None:
        entry: Dict[str, object] = {"status": status,
                                    "attempts": attempts}
        if stats is not None:
            entry["stats"] = stats.as_dict()
            entry["digest"] = _stats_digest(stats)
        if reason is not None:
            entry["reason"] = reason
        self.points[_point_label(point)] = entry
        self._flush()

    def entry(self, point: GridPoint) -> Optional[dict]:
        return self.points.get(_point_label(point))

    def _flush(self) -> None:
        path = self.path
        if path is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": JOURNAL_VERSION,
            "signature": self.spec.signature(),
            "spec": self.spec.describe(),
            "points": self.points,
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def _unlink(self) -> None:
        path = self.path
        if path is None:
            return
        try:
            path.unlink()
        except (FileNotFoundError, OSError):
            pass


@dataclass
class SessionResult:
    """Everything a :class:`SweepSession` run produced."""

    spec: SweepSpec
    sweep: Sweep
    quarantined: Dict[GridPoint, str] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def summary(self) -> str:
        """One-line progress digest (the CLI's closing line), reporting
        how many points each resolution tier settled."""
        get = self.counters.get
        return (f"points: {int(get('total', 0))} total -- "
                f"{int(get('computed', 0))} computed, "
                f"{int(get('replayed', 0))} replayed, "
                f"{int(get('analytical', 0))} analytical, "
                f"{int(get('cached', 0))} cached, "
                f"{int(get('journaled', 0))} journaled, "
                f"{int(get('retried', 0))} retries, "
                f"{int(get('quarantined', 0))} quarantined")


class SweepSession:
    """Drive one :class:`SweepSpec` to completion, fault-tolerantly.

    Resolution order per point: journal (on resume) -> result cache ->
    analytical surrogate (``fidelity="analytical"``) -> trace/fused
    replay (skipped by ``fidelity="full"``) -> supervised simulation.
    Every completion is
    journaled immediately, so killing the process at any moment loses
    at most the points currently in flight.
    """

    def __init__(self, spec: SweepSpec,
                 cache=_DEFAULT_CACHE,
                 trace_cache: Optional[TraceCache] = None,
                 session_dir: Optional[Path] = None,
                 resume: bool = False,
                 progress: Optional[Callable] = None,
                 compute: Optional[Callable] = None):
        if spec.kind == "miss-surface":
            raise ValueError("miss-surface sweeps have no point grid; "
                             "use run_sweep(spec)")
        self.spec = spec
        self.cache: Optional[ResultCache] = (
            default_cache() if cache is _DEFAULT_CACHE else cache)
        self.trace_cache = trace_cache
        self.journal = SessionJournal(spec, session_dir)
        self.resume = resume
        self.progress = progress
        self.registry = MetricsRegistry()
        self._compute = compute or _point_task
        self._configs = spec.configs()
        self._total = len(self._configs)
        self._done = 0

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: float = 1) -> None:
        self.registry.count(f"session.points.{name}", amount)

    @property
    def counters(self) -> Dict[str, float]:
        return self.registry.counter_group("session.points")

    def _settle(self, point: GridPoint, status: str,
                stats: Optional[RunStats], attempts: int = 1,
                reason: Optional[str] = None) -> None:
        """Journal one point outcome and surface it as progress."""
        self._done += 1
        self._count(status)
        if status == "quarantined":
            self.journal.record(point, "quarantined", attempts=attempts,
                                reason=reason)
        else:
            # Journal every success as "done"; `status` keeps the finer
            # how-it-was-resolved split for counters and progress.
            self.journal.record(point, "done", stats=stats,
                                attempts=attempts)
        if self.progress is not None:
            self.progress(point, status, self._done, self._total,
                          self.counters)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> SessionResult:
        spec = self.spec
        self._count("total", self._total)
        sweep: Sweep = {}
        quarantined: Dict[GridPoint, str] = {}

        if self.resume:
            self.journal.load()
        else:
            self.journal.reset()
        prune_stale_journals(self.journal.directory,
                             keep_signature=spec.signature())

        # Stage 0: the journal (resumed sessions only).  Quarantined
        # entries are given a fresh chance -- the operator explicitly
        # asked to resume, so transient poison gets re-tried.
        pending: List[GridPoint] = []
        for point in self._configs:
            entry = self.journal.entry(point)
            if (entry is not None and entry.get("status") == "done"
                    and isinstance(entry.get("stats"), dict)):
                try:
                    stats = RunStats.from_dict(entry["stats"])
                except TypeError:
                    pending.append(point)
                    continue
                sweep[point] = stats
                self._heal_cache(point, stats)
                self._settle(point, "journaled", stats,
                             attempts=int(entry.get("attempts", 1)))
            else:
                pending.append(point)

        # Stage 1: the per-point result cache.
        missing: List[GridPoint] = []
        for point in pending:
            cached = (self.cache.get(spec.point_key(self._configs[point]))
                      if self.cache is not None else None)
            if cached is not None:
                sweep[point] = cached
                self._settle(point, "cached", cached)
            else:
                missing.append(point)

        # Stage 1.5: the analytical surrogate (fidelity="analytical"):
        # one row profile prices every rung; rows the model cannot
        # profile fall through to the exact tiers below.
        if missing and spec.fidelity == "analytical":
            missing = self._resolve_analytically(missing, sweep)

        # Stage 2: record-once/replay-everywhere and the fused ladder
        # (fidelity="full" insists on per-point simulation instead).
        if missing and spec.fidelity != "full":
            before = set(sweep)
            missing = _resolve_via_traces(
                spec.benchmark, spec.profile, self._configs, missing,
                sweep, self.cache, spec.instrument, self.trace_cache,
                spec.fused, spec.backend)
            for point in sorted(set(sweep) - before):
                self._settle(point, "replayed", sweep[point])

        # Stage 3: supervised simulation of whatever is left.
        if missing:
            computed, quarantined = self._run_points(missing)
            for point, stats in computed.items():
                if self.cache is not None:
                    self.cache.put(spec.point_key(self._configs[point]),
                                   stats)
                sweep[point] = stats

        return SessionResult(spec=spec, sweep=sweep,
                             quarantined=quarantined,
                             counters=self.counters)

    def _resolve_analytically(self, missing: List[GridPoint],
                              sweep) -> List[GridPoint]:
        """Stage 1.5: price whole rows from one recorded tape each.

        Per row (processor count): find or build the
        :class:`~repro.model.profile.RowProfile` -- the profile cache
        first (a warm sweep never touches the tape, let alone the
        simulator), then the trace cache, then one recording simulation
        of the row's smallest rung -- and predict every missing point
        from it with :func:`~repro.model.predictor.predict_point`.
        Rows without a recordable packed stream are returned for the
        exact tiers.  Predictions are cached and journaled like any
        other resolution, but under the spec's analytical point keys,
        so they can never be served for a full-fidelity request.
        """
        from ..model.predictor import predict_point
        from ..model.profile import ProfileCache, build_row_profile
        from ..trace.record import StreamRecorder
        from .runner import _simulate
        spec = self.spec
        by_row: Dict[int, List[GridPoint]] = {}
        for point in missing:
            by_row.setdefault(point[0], []).append(point)
        trace_dir = getattr(self.trace_cache, "directory", None)
        profile_cache = (ProfileCache(Path(trace_dir) / "profiles")
                         if trace_dir is not None else None)
        remainder: List[GridPoint] = []
        for procs, row_points in sorted(by_row.items()):
            row_points = sorted(row_points)
            config0 = self._configs[(procs, min(spec.ladder))]
            if spec.analytical_refused(config0):
                # strict_parallel: the surrogate is known-bad on
                # multi-processor parallel rows; hand the whole row to
                # the exact tiers below instead of predicting it.
                remainder.extend(row_points)
                continue
            tracked = tuple(sorted({
                self._configs[(procs, paper_bytes)].scc_lines
                for paper_bytes in spec.ladder}))
            workload = spec.profile.workload(spec.benchmark)
            signature = workload.trace_signature(config0)
            if signature is None:
                remainder.extend(row_points)
                continue
            if workload.stream_is_deterministic(config0):
                # Same tape a fused/full sweep records: share its key.
                tape_key = signature
            else:
                # Interleave depends on the machine; the tape is still
                # deterministic *given* the recording configuration.
                tape_key = f"model|scc={config0.scc_size}|{signature}"
            profile_key = (
                f"{tape_key}|line={config0.line_size}"
                f"|clusters={config0.clusters}"
                f"|procs={config0.processors_per_cluster}"
                f"|icache={config0.icache_size}"
                f"/{config0.icache_line_size}"
                f"|model_icache={config0.model_icache}"
                f"|tracked={','.join(str(count) for count in tracked)}")
            row_profile = (profile_cache.get(profile_key)
                           if profile_cache is not None else None)
            if row_profile is None:
                streams = (self.trace_cache.get(tape_key)
                           if self.trace_cache is not None else None)
                if streams is None:
                    recorder = StreamRecorder(workload)
                    stats0 = _simulate(recorder, config0, False,
                                       spec.backend)
                    streams = recorder.streams
                    if streams is None:
                        remainder.extend(row_points)
                        continue
                    if self.trace_cache is not None:
                        self.trace_cache.put(tape_key, streams)
                    if self.cache is not None:
                        # The recording pass was a real simulation of
                        # the smallest rung; bank it under its
                        # *full-fidelity* key (it is exact, not a
                        # prediction; the analytical entry for that
                        # rung is still the model's own output).
                        self.cache.put(
                            point_cache_key(spec.benchmark, spec.profile,
                                            config0, False),
                            stats0)
                row_profile = build_row_profile(streams, config0, tracked)
                if profile_cache is not None:
                    profile_cache.put(profile_key, row_profile)
            for point in row_points:
                stats = predict_point(row_profile, self._configs[point],
                                      benchmark=spec.benchmark,
                                      strict_parallel=spec.strict_parallel)
                if self.cache is not None:
                    self.cache.put(spec.point_key(self._configs[point]),
                                   stats)
                sweep[point] = stats
                self._settle(point, "analytical", stats)
        return remainder

    def _heal_cache(self, point: GridPoint, stats: RunStats) -> None:
        """Re-seed the result cache from the journal if the crash took
        the cache entry with it (or the cache lives elsewhere now)."""
        if self.cache is None:
            return
        key = self.spec.point_key(self._configs[point])
        if self.cache.get(key) is None:
            self.cache.put(key, stats)

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------

    def _run_points(self, points: List[GridPoint]):
        spec = self.spec
        use_pool = ((spec.jobs or 1) > 1
                    or spec.point_timeout is not None)
        if use_pool:
            return self._run_pooled(points, max(1, spec.jobs or 1))
        return self._run_serial(points)

    def _record_failure(self, point: GridPoint, attempts: int,
                        exc: BaseException,
                        quarantined: Dict[GridPoint, str]) -> bool:
        """Account one failed attempt; ``True`` if the point may retry."""
        if attempts < self.spec.max_attempts:
            self._count("retried")
            _LOG.warning("sweep point procs=%d scc=%dB failed "
                         "(attempt %d/%d): %s; retrying",
                         point[0], point[1], attempts,
                         self.spec.max_attempts, exc)
            return True
        reason = (f"{type(exc).__name__}: {exc} "
                  f"(after {attempts} attempts)")
        quarantined[point] = reason
        _LOG.error("quarantining sweep point procs=%d scc=%dB: %s",
                   point[0], point[1], reason)
        self._settle(point, "quarantined", None, attempts=attempts,
                     reason=reason)
        return False

    def _run_serial(self, points: List[GridPoint]):
        spec = self.spec
        computed: Dict[GridPoint, RunStats] = {}
        quarantined: Dict[GridPoint, str] = {}
        for point in points:
            attempts = 0
            while True:
                attempts += 1
                try:
                    stats = self._compute(spec.benchmark, spec.profile,
                                          self._configs[point],
                                          spec.instrument, point,
                                          spec.backend)
                except Exception as exc:
                    if self._record_failure(point, attempts, exc,
                                            quarantined):
                        time.sleep(spec.retry_backoff * attempts)
                        continue
                    break
                computed[point] = stats
                self._settle(point, "computed", stats, attempts=attempts)
                break
        return computed, quarantined

    def _run_pooled(self, points: List[GridPoint], jobs: int):
        """Submit each point as its own future so hung or crashed
        workers only cost their own point.  A timeout kills the whole
        pool (a hung worker cannot be cancelled), charges the expired
        points an attempt, and resubmits the innocent in-flight points
        without penalty."""
        spec = self.spec
        computed: Dict[GridPoint, RunStats] = {}
        quarantined: Dict[GridPoint, str] = {}
        attempts: Dict[GridPoint, int] = {p: 0 for p in points}
        ready_at: Dict[GridPoint, float] = {p: 0.0 for p in points}
        queue = deque(points)
        inflight: Dict[object, GridPoint] = {}
        deadlines: Dict[object, float] = {}
        pool = _worker_pool(jobs)

        def submit_ready() -> None:
            now = time.monotonic()
            for _ in range(len(queue)):
                point = queue.popleft()
                if ready_at[point] > now:
                    queue.append(point)
                    continue
                attempts[point] += 1
                future = pool.submit(
                    self._compute, spec.benchmark, spec.profile,
                    self._configs[point], spec.instrument, point,
                    spec.backend)
                inflight[future] = point
                if spec.point_timeout is not None:
                    deadlines[future] = now + spec.point_timeout

        def handle_failure(point: GridPoint, exc: BaseException) -> None:
            if self._record_failure(point, attempts[point], exc,
                                    quarantined):
                ready_at[point] = (time.monotonic()
                                   + spec.retry_backoff * attempts[point])
                queue.append(point)

        while queue or inflight:
            submit_ready()
            if not inflight:
                # Everything runnable is backing off; sleep it out.
                wake = min(ready_at[point] for point in queue)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue
            timeout = 0.05 if queue else None
            if deadlines:
                next_deadline = min(deadlines.values())
                budget = max(0.0, next_deadline - time.monotonic())
                timeout = budget if timeout is None else min(timeout,
                                                             budget)
            done, _ = futures_wait(set(inflight), timeout=timeout,
                                   return_when=FIRST_COMPLETED)
            for future in done:
                point = inflight.pop(future)
                deadlines.pop(future, None)
                exc = future.exception()
                if exc is None:
                    computed[point] = future.result()
                    self._settle(point, "computed", computed[point],
                                 attempts=attempts[point])
                else:
                    handle_failure(point, exc)
            now = time.monotonic()
            expired = [future for future, deadline in deadlines.items()
                       if deadline <= now]
            if expired:
                # Kill the pool: a worker stuck inside a simulation can
                # only be stopped by terminating its process.
                for future in list(inflight):
                    point = inflight.pop(future)
                    deadlines.pop(future, None)
                    if future in expired:
                        handle_failure(point, FutureTimeoutError(
                            f"no result within {spec.point_timeout}s"))
                    else:
                        # Collateral damage of the pool kill: resubmit
                        # without charging an attempt.
                        attempts[point] -= 1
                        queue.append(point)
                _shutdown_pool(kill=True)
                pool = _worker_pool(jobs)
        return computed, quarantined


def _run_miss_surface(spec: SweepSpec,
                      trace_cache: Optional[TraceCache]):
    """Content-only per-process miss surface of one parallel-grid row
    (see :func:`repro.trace.multiconfig.per_process_miss_surface`)."""
    from ..simulation import run_simulation
    from ..trace.multiconfig import per_process_miss_surface
    from ..trace.record import StreamRecorder
    profile = spec.profile
    ladder = spec.ladder
    procs_per_cluster = spec.procs[0]
    sizes = tuple(paper_bytes // profile.ladder_scale
                  for paper_bytes in ladder)
    config = SystemConfig.paper_parallel(procs_per_cluster, sizes[0])
    workload = profile.workload(spec.benchmark)
    # Only a configuration-independent tape may live in the shared trace
    # cache (its key does not cover scc_size); otherwise record ad hoc.
    signature = (workload.trace_signature(config)
                 if workload.stream_is_deterministic(config) else None)
    streams = None
    if signature is not None and trace_cache is not None:
        streams = trace_cache.get(signature)
    if streams is None:
        recorder = StreamRecorder(workload)
        run_simulation(config, recorder, backend=spec.backend)
        streams = recorder.streams
        if streams is None:
            raise ValueError(
                f"{spec.benchmark!r} did not produce a recordable packed "
                f"stream on {procs_per_cluster} processors per cluster")
        if signature is not None and trace_cache is not None:
            trace_cache.put(signature, streams)
    surface = per_process_miss_surface(config, sizes, streams)
    by_paper = {}
    for proc, row in surface.items():
        by_paper[proc] = {paper_bytes: row[size]
                          for paper_bytes, size in zip(ladder, sizes)}
    return by_paper


def run_sweep(spec: SweepSpec,
              cache=_DEFAULT_CACHE,
              trace_cache: Optional[TraceCache] = None,
              session_dir: Optional[Path] = None,
              resume: bool = False,
              progress: Optional[Callable] = None):
    """Resolve one :class:`SweepSpec` and return its results.

    Grid sweeps return ``{(procs, paper_bytes): RunStats}``;
    miss-surface sweeps return
    ``{process: {paper_bytes: MissSurfacePoint}}``.  Pass a
    ``session_dir`` to journal progress for crash-safe ``resume``;
    without one the session is ephemeral (exactly the old sweeps'
    behaviour).  If any point is quarantined the rest of the grid is
    still resolved (and journaled) before
    :class:`QuarantinedPointError` is raised; callers that want the
    partial grid instead should drive :class:`SweepSession` directly.
    """
    if spec.kind == "miss-surface":
        return _run_miss_surface(spec, trace_cache)
    session = SweepSession(spec, cache=cache, trace_cache=trace_cache,
                           session_dir=session_dir, resume=resume,
                           progress=progress)
    result = session.run()
    if result.quarantined:
        raise QuarantinedPointError(result.quarantined)
    return result.sweep


def grid_sweep(spec: SweepSpec, **kwargs) -> Sweep:
    """Resolve a *grid* spec locally: always
    ``{(procs, paper_bytes): RunStats}``.

    The blessed :mod:`repro.api` spelling of :func:`run_sweep` for the
    paper's two-dimensional design-space grids -- the type a
    :class:`~repro.fabric.client.SweepClient` submission returns, so
    ``grid_sweep(spec) == client.result(client.submit(spec))`` point
    for point.  Miss-surface specs (whose result shape differs) are
    rejected; run those through :func:`run_sweep`.
    """
    if spec.kind == "miss-surface":
        raise ValueError("grid_sweep() resolves point grids; "
                         "miss-surface sweeps return per-process "
                         "surfaces -- use run_sweep(spec)")
    return run_sweep(spec, **kwargs)
