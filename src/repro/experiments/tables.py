"""Section 5 table pipelines: Tables 5, 6 and 7, plus Section 4's costs.

Tables 6 and 7 combine the Section 3 performance surfaces with the
Table 5 load-latency corrections and the Section 4 area model, exactly
as the paper does.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..core.config import KB
from ..cost.costperf import (ComparisonTable, cost_performance_gain,
                             mcm_table, single_chip_table)
from ..cost.floorplan import CLUSTER_IMPLEMENTATIONS
from ..cost.latency import PAPER_LATENCY_MODELS, PAPER_TABLE5
from .report import render_table
from .runner import Sweep

__all__ = ["PAPER_TABLE6", "PAPER_TABLE7", "render_table5",
           "render_table6", "render_table7", "render_section4_costs",
           "surfaces_from_sweeps"]

#: Table 6 -- single-chip comparison (1 proc/64 KB vs 2 procs/32 KB).
PAPER_TABLE6: Dict[str, Tuple[float, float]] = {
    "barnes-hut": (13.1, 5.8),
    "mp3d": (9.4, 5.5),
    "cholesky": (3.9, 3.4),
    "multiprogramming": (7.7, 5.4),
}

#: Table 7 -- MCM comparison (4 procs/64 KB vs 8 procs/128 KB).
PAPER_TABLE7: Dict[str, Tuple[float, float]] = {
    "barnes-hut": (2.8, 1.4),
    "mp3d": (2.9, 1.5),
    "cholesky": (1.6, 1.3),
    "multiprogramming": (2.9, 1.5),
}


def surfaces_from_sweeps(
        sweeps: Mapping[str, Sweep]) -> Dict[str, Dict[Tuple[int, int], float]]:
    """Convert sweeps (RunStats-valued) to the execution-time surfaces
    :mod:`repro.cost.costperf` consumes."""
    return {
        benchmark: {key: stats.execution_time
                    for key, stats in sweep.items()}
        for benchmark, sweep in sweeps.items()
    }


def render_table5() -> str:
    """Table 5: relative uniprocessor times for 2/3/4-cycle loads."""
    rows: List[List[object]] = []
    for name, model in PAPER_LATENCY_MODELS.items():
        ours = [model.relative_time(latency) for latency in (2, 3, 4)]
        paper = PAPER_TABLE5[name]
        rows.append([name] + [f"{value:.2f}" for value in ours]
                    + [" / ".join(f"{v:.2f}" for v in paper)])
    return render_table(
        "Table 5: relative uniprocessor execution time vs load latency",
        ["benchmark", "2 cycles", "3 cycles", "4 cycles",
         "paper (2/3/4)"], rows)


def _render_comparison(title: str, table: ComparisonTable,
                       paper: Dict[str, Tuple[float, float]],
                       labels: Tuple[str, str]) -> str:
    rows: List[List[object]] = []
    for benchmark in table.benchmarks:
        cells = table.row(benchmark)
        row: List[object] = [benchmark]
        row.extend(f"{cell.normalized_time:.2f}" for cell in cells)
        if benchmark in paper:
            row.append(" / ".join(f"{v:.1f}" for v in paper[benchmark]))
        else:
            row.append("-")
        rows.append(row)
    return render_table(title, ["benchmark", labels[0], labels[1],
                                "paper"], rows)


def render_table6(sweeps: Mapping[str, Sweep]) -> str:
    """Table 6 with our measured surface, plus the summary arithmetic."""
    table = single_chip_table(surfaces_from_sweeps(sweeps))
    body = _render_comparison(
        "Table 6: single-chip cluster implementations "
        "(normalized execution time; lower is better)",
        table, PAPER_TABLE6, ("1 proc/64 KB", "2 procs/32 KB"))
    speedup = table.mean_speedup(slower=(1, 64 * KB), faster=(2, 32 * KB))
    gain = cost_performance_gain(speedup)
    summary = (f"two-processor cluster is {100 * (speedup - 1):.0f}% faster "
               f"on average (paper: 70%); with a "
               f"{CLUSTER_IMPLEMENTATIONS[2].chip_area_mm2 / CLUSTER_IMPLEMENTATIONS[1].chip_area_mm2 - 1:.0%} "
               f"larger chip, cost/performance improves "
               f"{100 * gain:.0f}% (paper: 24%)")
    return body + "\n" + summary


def render_table7(sweeps: Mapping[str, Sweep]) -> str:
    """Table 7 with our measured surface."""
    table = mcm_table(surfaces_from_sweeps(sweeps))
    return _render_comparison(
        "Table 7: MCM cluster implementations "
        "(normalized execution time; lower is better)",
        table, PAPER_TABLE7, ("4 procs/64 KB", "8 procs/128 KB"))


def render_section4_costs() -> str:
    """Section 4's implementation summary: areas, latencies, packaging."""
    rows: List[List[object]] = []
    for procs, impl in sorted(CLUSTER_IMPLEMENTATIONS.items()):
        packaging = impl.packaging()
        rows.append([
            impl.name,
            f"{impl.chip_area_mm2:.0f} mm^2",
            f"{impl.area_ratio_vs_uniprocessor:.2f}x",
            f"{impl.load_latency} cycles",
            f"{impl.chips}",
            "C4" if packaging.needs_c4 else "perimeter",
        ])
    return render_table(
        "Section 4: cluster implementations",
        ["design", "chip area", "vs 1-proc", "load latency",
         "chips/cluster", "packaging"], rows)
