"""Sweep driver and result cache for the reproduction experiments.

Every figure and table in the paper is a view over one of two sweeps:

* the **parallel sweep** (Section 3.1): a benchmark on four clusters,
  processors per cluster in {1, 2, 4, 8} x the SCC ladder 4 KB..512 KB;
* the **multiprogramming sweep** (Section 3.2): the SPEC92 mix on a
  single cluster over the same grid.

Simulations are minutes-scale, so results are cached on disk keyed by
the experiment's full parameterisation; delete the cache directory (or
bump :data:`CACHE_VERSION`) after changing the simulator.

Two profiles control workload sizes: ``quick`` for smoke-testing the
pipelines, ``paper`` (the default for benchmarks) for the properly
scaled runs recorded in EXPERIMENTS.md.  Select with the
``REPRO_PROFILE`` environment variable.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import logging
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..core.config import KB, SystemConfig
from ..instrument import InstrumentationProbe
from ..simulation import run_simulation
from ..trace.multiconfig import (fused_ladder_results,
                                 fused_ladder_supported,
                                 per_process_miss_surface)
from ..trace.record import ReplayApplication, StreamRecorder, TraceCache
from ..workloads.barnes_hut import BarnesHut
from ..workloads.cholesky import Cholesky
from ..workloads.mp3d import MP3D
from ..workloads.multiprog import MultiprogrammingWorkload

__all__ = ["RunStats", "ExperimentProfile", "PROFILES", "active_profile",
           "ResultCache", "default_cache", "run_point", "parallel_sweep",
           "multiprogramming_sweep", "miss_surface_sweep", "PAPER_LADDER",
           "PROCS_SWEPT", "CACHE_VERSION"]

_LOG = logging.getLogger(__name__)

CACHE_VERSION = 4
"""Bump to invalidate cached results after simulator changes.
(v4: cached payloads gained the ``instrument`` observability summary.)"""

INSTRUMENT_BIN_WIDTH = 4096
"""Timeline resolution for the summary-only instrumentation every sweep
point runs with (coarse: sweeps want digests, not traces)."""

PAPER_LADDER: Tuple[int, ...] = tuple(
    kb * KB for kb in (4, 8, 16, 32, 64, 128, 256, 512))
"""The paper's SCC sweep, in paper bytes."""

PROCS_SWEPT: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class RunStats:
    """The per-configuration quantities the paper's tables need."""

    execution_time: int
    read_miss_rate: float
    miss_rate: float
    invalidations: int
    reads: int
    writes: int
    events: int
    instrument: Optional[Dict[str, float]] = field(default=None,
                                                   compare=False)
    """Flat observability digest from the run's
    :class:`~repro.instrument.InstrumentationProbe` (peak/mean bus
    utilization, conflict cycles, write-buffer high-water); ``None``
    only for payloads predating cache v4."""

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RunStats":
        return cls(**data)


@dataclass(frozen=True)
class ExperimentProfile:
    """Workload sizing for one reproduction quality level."""

    name: str
    ladder_scale: int
    barnes_bodies: int
    barnes_steps: int
    mp3d_particles: int
    mp3d_steps: int
    cholesky_n: int
    multiprog_instructions: int
    multiprog_quantum: int

    def scaled_ladder(self) -> Tuple[int, ...]:
        """Simulated SCC sizes standing in for the paper ladder."""
        return tuple(size // self.ladder_scale for size in PAPER_LADDER)

    # -- workload factories (fresh application object per call) ---------

    def barnes_hut(self) -> BarnesHut:
        return BarnesHut(n_bodies=self.barnes_bodies,
                         steps=self.barnes_steps)

    def mp3d(self) -> MP3D:
        return MP3D(n_particles=self.mp3d_particles, steps=self.mp3d_steps)

    def cholesky(self) -> Cholesky:
        return Cholesky(n=self.cholesky_n)

    def multiprogramming(self) -> MultiprogrammingWorkload:
        return MultiprogrammingWorkload(
            instructions_per_app=self.multiprog_instructions,
            quantum_instructions=self.multiprog_quantum,
            scale=self.ladder_scale)

    def workload(self, benchmark: str):
        """Factory dispatch by benchmark name."""
        factories: Dict[str, Callable] = {
            "barnes-hut": self.barnes_hut,
            "mp3d": self.mp3d,
            "cholesky": self.cholesky,
            "multiprogramming": self.multiprogramming,
        }
        try:
            return factories[benchmark]()
        except KeyError:
            raise ValueError(f"unknown benchmark {benchmark!r}") from None


PROFILES: Dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick", ladder_scale=8,
        barnes_bodies=192, barnes_steps=2,
        mp3d_particles=600, mp3d_steps=3,
        cholesky_n=288,
        multiprog_instructions=60_000, multiprog_quantum=20_000),
    "paper": ExperimentProfile(
        name="paper", ladder_scale=8,
        barnes_bodies=512, barnes_steps=2,
        mp3d_particles=900, mp3d_steps=5,
        cholesky_n=416,
        multiprog_instructions=150_000, multiprog_quantum=50_000),
}


def active_profile() -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default: ``paper``)."""
    name = os.environ.get("REPRO_PROFILE", "paper")
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"REPRO_PROFILE={name!r}; "
                         f"known profiles: {sorted(PROFILES)}") from None


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class ResultCache:
    """Tiny JSON-file-per-result cache.

    Writes go through a per-process temporary file and an atomic rename,
    so concurrent ``--jobs`` sweeps (or several sweep processes sharing a
    cache directory) can race on the same key without ever exposing a
    half-written file.  A corrupt or truncated entry (killed writer from
    an older version, disk trouble) is logged once, deleted, and treated
    as a miss so the next run rewrites it instead of missing forever.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._warned_corrupt = False

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"v{CACHE_VERSION}:{key}".encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[RunStats]:
        path = self._path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            return RunStats.from_dict(json.loads(raw))
        except (json.JSONDecodeError, TypeError) as exc:
            self._discard_corrupt(path, exc)
            return None

    def put(self, key: str, stats: RunStats) -> None:
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(stats.as_dict()))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def _discard_corrupt(self, path: Path, exc: Exception) -> None:
        if not self._warned_corrupt:
            self._warned_corrupt = True
            _LOG.warning(
                "discarding corrupt result-cache entry %s (%s); "
                "it will be recomputed", path, exc)
        try:
            path.unlink()
        except OSError:
            pass


def default_cache() -> ResultCache:
    """Cache under the working tree (override with ``REPRO_CACHE_DIR``)."""
    directory = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return ResultCache(Path(directory))


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------

def _stats_key(benchmark: str, profile: ExperimentProfile,
               config: SystemConfig, instrument: bool = True) -> str:
    key = (f"{benchmark}|{profile}|clusters={config.clusters}"
           f"|procs={config.processors_per_cluster}"
           f"|scc={config.scc_size}|icache={config.icache_size}"
           f"|model_icache={config.model_icache}")
    if not instrument:
        # Digest-less payloads get their own entries so a benchmark run
        # never shadows the default instrumented payload (and the default
        # key format is unchanged from earlier cache generations).
        key += "|instrument=False"
    return key


def _stats_from_result(result, probe=None) -> RunStats:
    """Reduce a :class:`~repro.simulation.SimulationResult` to RunStats."""
    total = result.stats.total_scc
    return RunStats(
        execution_time=result.stats.execution_time,
        read_miss_rate=result.stats.read_miss_rate,
        miss_rate=total.miss_rate,
        invalidations=result.stats.total_invalidations,
        reads=total.reads,
        writes=total.writes,
        events=result.events_processed,
        instrument=probe.summary() if probe is not None else None,
    )


def _simulate(application, config: SystemConfig,
              instrument: bool) -> RunStats:
    """One simulation of any workload object, reduced to RunStats."""
    probe = (InstrumentationProbe(bin_width=INSTRUMENT_BIN_WIDTH,
                                  record_events=False)
             if instrument else None)
    result = run_simulation(config, application, instrumentation=probe)
    return _stats_from_result(result, probe)


def _compute_point(benchmark: str, profile: ExperimentProfile,
                   config: SystemConfig,
                   instrument: bool = True) -> RunStats:
    """Actually simulate one configuration (no cache involved).

    Module-level (not nested) so ``ProcessPoolExecutor`` can pickle it
    for ``--jobs`` parallel sweeps.  By default every point runs with
    summary-only instrumentation: the observability digest rides along
    in the cached payload.  ``instrument=False`` drops the digest and
    keeps the simulation on the interleaver's packed fast path (an
    attached probe forces the event-at-a-time path), which is what the
    benchmark harness measures.
    """
    return _simulate(profile.workload(benchmark), config, instrument)


# ----------------------------------------------------------------------
# Persistent worker pool (``--jobs N``)
# ----------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0

_WORKER_WORKLOADS: Dict[Tuple[str, ExperimentProfile], object] = {}
"""Worker-process-side cache of constructed workload objects.

Every workload builds its run state (bodies, particles, RNG) freshly per
``processes()`` call, so the application object itself is reusable across
simulations; constructing it once per worker instead of once per point
removes the per-point workload setup from parallel sweeps.
"""


def _compute_point_pooled(benchmark: str, profile: ExperimentProfile,
                          config: SystemConfig,
                          instrument: bool = True) -> RunStats:
    """`_compute_point` with a warm per-worker workload object."""
    key = (benchmark, profile)
    workload = _WORKER_WORKLOADS.get(key)
    if workload is None:
        workload = profile.workload(benchmark)
        _WORKER_WORKLOADS[key] = workload
    return _simulate(workload, config, instrument)


def _worker_pool(jobs: int) -> ProcessPoolExecutor:
    """The process-wide sweep pool, rebuilt only when ``jobs`` changes.

    Keeping the pool (and the workload objects its workers cache) alive
    across `_run_grid` calls means a multi-benchmark session pays worker
    startup and workload construction once, not once per sweep.
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None and _POOL_JOBS != jobs:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def _shutdown_pool() -> None:
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False)
        _POOL = None


atexit.register(_shutdown_pool)


def run_point(benchmark: str, profile: ExperimentProfile,
              config: SystemConfig,
              cache: Optional[ResultCache] = None,
              instrument: bool = True) -> RunStats:
    """Simulate one configuration (or fetch it from the cache)."""
    key = _stats_key(benchmark, profile, config, instrument)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    stats = _compute_point(benchmark, profile, config, instrument)
    if cache is not None:
        cache.put(key, stats)
    return stats


Sweep = Dict[Tuple[int, int], RunStats]
"""(processors per cluster, paper SCC bytes) -> stats."""

GridPoint = Tuple[int, int]


def _run_grid(benchmark: str, profile: ExperimentProfile,
              configs: Dict[GridPoint, SystemConfig],
              cache: Optional[ResultCache],
              jobs: Optional[int],
              instrument: bool = True,
              trace_cache: Optional[TraceCache] = None,
              fused: bool = True) -> Sweep:
    """Resolve a grid of configurations through the cache, simulating
    the missing points serially or on ``jobs`` worker processes.

    The cache key is per point and identical either way, so serial and
    parallel runs share entries; workers never touch the cache (the
    parent writes results back), which keeps the scheme safe on any
    filesystem.

    Rows whose workload passes the stream-determinism guard resolve
    through the trace cache first: the row's stream is recorded once
    (or loaded from disk) and replayed at every other rung of the
    ladder, skipping the workload's Python entirely -- and, when the
    row qualifies (``fused``, uninstrumented, single-process, see
    :func:`~repro.trace.multiconfig.fused_ladder_supported`), all rungs
    of the ladder are simulated in *one* pass over the tape.
    """
    sweep: Sweep = {}
    missing: List[GridPoint] = []
    for point, config in configs.items():
        cached = (cache.get(_stats_key(benchmark, profile, config,
                                       instrument))
                  if cache is not None else None)
        if cached is not None:
            sweep[point] = cached
        else:
            missing.append(point)
    if missing:
        missing = _resolve_via_traces(benchmark, profile, configs,
                                      missing, sweep, cache, instrument,
                                      trace_cache, fused)
    if not missing:
        return sweep
    if jobs is not None and jobs > 1:
        pool = _worker_pool(jobs)
        results = pool.map(
            _compute_point_pooled,
            [benchmark] * len(missing),
            [profile] * len(missing),
            [configs[point] for point in missing],
            [instrument] * len(missing))
        computed = dict(zip(missing, results))
    else:
        computed = {point: _compute_point(benchmark, profile,
                                          configs[point], instrument)
                    for point in missing}
    for point, stats in computed.items():
        if cache is not None:
            cache.put(_stats_key(benchmark, profile, configs[point],
                                 instrument),
                      stats)
        sweep[point] = stats
    return sweep


def _resolve_via_traces(benchmark: str, profile: ExperimentProfile,
                        configs: Dict[GridPoint, SystemConfig],
                        missing: List[GridPoint], sweep: Sweep,
                        cache: Optional[ResultCache],
                        instrument: bool,
                        trace_cache: Optional[TraceCache],
                        fused: bool = True) -> List[GridPoint]:
    """Record-once/replay-everywhere for the grid rows that allow it.

    A row is all missing points with the same processor count (the
    ladder rungs); its per-process streams are identical across the row
    exactly when :meth:`~repro.workloads.base.TracedApplication
    .stream_is_deterministic` holds there, and the recording is keyed by
    :meth:`~repro.workloads.base.TracedApplication.trace_signature`.
    Rows that fail either guard are returned for normal simulation.

    When a row's remaining rungs form a fused-replayable ladder
    (uninstrumented single-process row whose configurations differ only
    in SCC size -- :func:`~repro.trace.multiconfig.fused_ladder_supported`),
    the whole row is resolved by *one* pass of the multi-configuration
    engine instead of one replay per rung; the results are bit-identical
    by construction (pinned by ``tests/equivalence``).  Multi-process
    rows never qualify and keep the per-rung replay automatically.
    """
    by_row: Dict[int, List[GridPoint]] = {}
    for point in missing:
        by_row.setdefault(point[0], []).append(point)
    remainder: List[GridPoint] = []
    resolved: Dict[GridPoint, RunStats] = {}
    for row_points in by_row.values():
        row_points = sorted(row_points)
        probe_workload = profile.workload(benchmark)
        config0 = configs[row_points[0]]
        signature = probe_workload.trace_signature(config0)
        if (signature is None
                or not probe_workload.stream_is_deterministic(config0)):
            remainder.extend(row_points)
            continue
        tcache = trace_cache if trace_cache is not None else TraceCache()
        streams = tcache.get(signature)
        if streams is None:
            # Record the row's stream while computing its first point.
            point = row_points.pop(0)
            recorder = StreamRecorder(profile.workload(benchmark))
            resolved[point] = _simulate(recorder, configs[point],
                                        instrument)
            streams = recorder.streams
            if streams is not None:
                tcache.put(signature, streams)
        if streams is None:
            remainder.extend(row_points)
            continue
        if (fused and not instrument and len(row_points) > 1
                and set(streams) == {0}):
            row_configs = [configs[point] for point in row_points]
            if fused_ladder_supported(row_configs):
                for point, result in zip(
                        row_points,
                        fused_ladder_results(row_configs, streams)):
                    resolved[point] = _stats_from_result(result)
                continue
        for point in row_points:
            replay = ReplayApplication(streams, name=benchmark)
            resolved[point] = _simulate(replay, configs[point], instrument)
    for point, stats in resolved.items():
        if cache is not None:
            cache.put(_stats_key(benchmark, profile, configs[point],
                                 instrument),
                      stats)
        sweep[point] = stats
    return remainder


def parallel_sweep(benchmark: str,
                   profile: Optional[ExperimentProfile] = None,
                   cache: Optional[ResultCache] = None,
                   ladder: Optional[Tuple[int, ...]] = None,
                   procs: Tuple[int, ...] = PROCS_SWEPT,
                   jobs: Optional[int] = None,
                   instrument: bool = True,
                   trace_cache: Optional[TraceCache] = None,
                   fused: bool = True) -> Sweep:
    """The Section 3.1 grid for one parallel benchmark.

    Keys use *paper* SCC bytes; the simulated size is the paper size
    divided by the profile's ladder scale.  ``jobs`` > 1 simulates
    uncached points concurrently on that many worker processes.
    ``instrument=False`` skips the observability digest and keeps the
    simulations on the packed fast path.  ``fused=False`` disables the
    one-pass multi-configuration ladder engine (single-process rows
    only; see :mod:`repro.trace.multiconfig`) for A/B comparison.
    """
    profile = profile or active_profile()
    cache = cache if cache is not None else default_cache()
    ladder = ladder or PAPER_LADDER
    configs = {
        (procs_per_cluster, paper_bytes): SystemConfig.paper_parallel(
            procs_per_cluster, paper_bytes // profile.ladder_scale)
        for paper_bytes in ladder
        for procs_per_cluster in procs
    }
    return _run_grid(benchmark, profile, configs, cache, jobs,
                     instrument, trace_cache, fused)


def multiprogramming_sweep(profile: Optional[ExperimentProfile] = None,
                           cache: Optional[ResultCache] = None,
                           ladder: Optional[Tuple[int, ...]] = None,
                           procs: Tuple[int, ...] = PROCS_SWEPT,
                           jobs: Optional[int] = None,
                           instrument: bool = True,
                           trace_cache: Optional[TraceCache] = None,
                           fused: bool = True) -> Sweep:
    """The Section 3.2 grid (single cluster, icache modelled & scaled)."""
    profile = profile or active_profile()
    cache = cache if cache is not None else default_cache()
    ladder = ladder or PAPER_LADDER
    icache = max(16 * KB // profile.ladder_scale, 512)
    configs = {
        (procs_per_cluster, paper_bytes): SystemConfig.paper_multiprogramming(
            procs_per_cluster,
            paper_bytes // profile.ladder_scale).with_updates(
                icache_size=icache)
        for paper_bytes in ladder
        for procs_per_cluster in procs
    }
    return _run_grid("multiprogramming", profile, configs, cache, jobs,
                     instrument, trace_cache, fused)


def miss_surface_sweep(benchmark: str,
                       profile: Optional[ExperimentProfile] = None,
                       procs_per_cluster: int = 4,
                       ladder: Optional[Tuple[int, ...]] = None,
                       trace_cache: Optional[TraceCache] = None):
    """Approximate per-process miss surface of one parallel-grid row.

    The fused timing engine cannot cover parallel workloads (interleave
    order depends on the configuration), but the content-only
    multi-configuration analysis still can: one simulation of the row's
    smallest rung records the per-process tapes, and one pass per tape
    scores every SCC size at once
    (:func:`~repro.trace.multiconfig.per_process_miss_surface`).
    Returns ``{process: {paper_bytes: MissSurfacePoint}}`` -- miss
    *counts* under fixed interleaving, not RunStats; use it to find
    working-set knees before spending full simulations on them.
    """
    profile = profile or active_profile()
    ladder = ladder or PAPER_LADDER
    sizes = tuple(paper_bytes // profile.ladder_scale
                  for paper_bytes in ladder)
    config = SystemConfig.paper_parallel(procs_per_cluster, sizes[0])
    workload = profile.workload(benchmark)
    # Only a configuration-independent tape may live in the shared trace
    # cache (its key does not cover scc_size); otherwise record ad hoc.
    signature = (workload.trace_signature(config)
                 if workload.stream_is_deterministic(config) else None)
    streams = None
    tcache = trace_cache
    if signature is not None and tcache is not None:
        streams = tcache.get(signature)
    if streams is None:
        recorder = StreamRecorder(workload)
        run_simulation(config, recorder)
        streams = recorder.streams
        if streams is None:
            raise ValueError(
                f"{benchmark!r} did not produce a recordable packed "
                f"stream on {procs_per_cluster} processors per cluster")
        if signature is not None and tcache is not None:
            tcache.put(signature, streams)
    surface = per_process_miss_surface(config, sizes, streams)
    by_paper = {}
    for proc, row in surface.items():
        by_paper[proc] = {paper_bytes: row[size]
                          for paper_bytes, size in zip(ladder, sizes)}
    return by_paper
