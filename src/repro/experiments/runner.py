"""Sweep driver and result cache for the reproduction experiments.

Every figure and table in the paper is a view over one of two sweeps:

* the **parallel sweep** (Section 3.1): a benchmark on four clusters,
  processors per cluster in {1, 2, 4, 8} x the SCC ladder 4 KB..512 KB;
* the **multiprogramming sweep** (Section 3.2): the SPEC92 mix on a
  single cluster over the same grid.

Simulations are minutes-scale, so results are cached on disk keyed by
the experiment's full parameterisation; delete the cache directory (or
bump :data:`CACHE_VERSION`) after changing the simulator.

Two profiles control workload sizes: ``quick`` for smoke-testing the
pipelines, ``paper`` (the default for benchmarks) for the properly
scaled runs recorded in EXPERIMENTS.md.  Select with the
``REPRO_PROFILE`` environment variable.

Sweeps are *described* by a :class:`~repro.experiments.spec.SweepSpec`
and *driven* by :func:`~repro.experiments.session.run_sweep` (which
adds journaled resume, retries, and quarantine on top of the machinery
here).  The historical entry points -- :func:`parallel_sweep`,
:func:`multiprogramming_sweep`, :func:`miss_surface_sweep` -- remain as
thin deprecated shims over that API.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import logging
import os
import signal
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.config import KB, SystemConfig
from ..instrument import InstrumentationProbe
from ..simulation import run_simulation
from ..trace.multiconfig import (fused_ladder_results,
                                 fused_ladder_supported)
from ..trace.record import ReplayApplication, StreamRecorder, TraceCache
from .spec import (CACHE_VERSION, PAPER_LADDER, PROCS_SWEPT, PROFILES,
                   ExperimentProfile, GridPoint, SweepSpec,
                   active_profile, point_cache_key)

__all__ = ["RunStats", "ExperimentProfile", "PROFILES", "active_profile",
           "ResultCache", "default_cache", "run_point", "parallel_sweep",
           "multiprogramming_sweep", "miss_surface_sweep", "PAPER_LADDER",
           "PROCS_SWEPT", "CACHE_VERSION"]

_LOG = logging.getLogger(__name__)

INSTRUMENT_BIN_WIDTH = 4096
"""Timeline resolution for the summary-only instrumentation every sweep
point runs with (coarse: sweeps want digests, not traces)."""


@dataclass(frozen=True)
class RunStats:
    """The per-configuration quantities the paper's tables need."""

    execution_time: int
    read_miss_rate: float
    miss_rate: float
    invalidations: int
    reads: int
    writes: int
    events: int
    instrument: Optional[Dict[str, float]] = field(default=None,
                                                   compare=False)
    """Flat observability digest from the run's
    :class:`~repro.instrument.InstrumentationProbe` (peak/mean bus
    utilization, conflict cycles, write-buffer high-water); ``None``
    only for payloads predating cache v4."""

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RunStats":
        return cls(**data)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class ResultCache:
    """Tiny JSON-file-per-result cache.

    Writes go through a per-process temporary file and an atomic rename,
    so concurrent ``--jobs`` sweeps (or several sweep processes sharing a
    cache directory) can race on the same key without ever exposing a
    half-written file.  A corrupt or truncated entry (killed writer from
    an older version, disk trouble) is logged once, deleted, and treated
    as a miss so the next run rewrites it instead of missing forever.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._warned_corrupt = False

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"v{CACHE_VERSION}:{key}".encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[RunStats]:
        path = self._path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            return RunStats.from_dict(json.loads(raw))
        except (json.JSONDecodeError, TypeError) as exc:
            self._discard_corrupt(path, exc)
            return None

    def put(self, key: str, stats: RunStats) -> None:
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(stats.as_dict()))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def _discard_corrupt(self, path: Path, exc: Exception) -> None:
        if not self._warned_corrupt:
            self._warned_corrupt = True
            _LOG.warning(
                "discarding corrupt result-cache entry %s (%s); "
                "it will be recomputed", path, exc)
        try:
            path.unlink()
        except OSError:
            pass


def default_cache() -> ResultCache:
    """Cache under the working tree (override with ``REPRO_CACHE_DIR``)."""
    directory = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return ResultCache(Path(directory))


# ----------------------------------------------------------------------
# Point simulation
# ----------------------------------------------------------------------

def _stats_key(benchmark: str, profile: ExperimentProfile,
               config: SystemConfig, instrument: bool = True) -> str:
    """Back-compat alias for
    :func:`repro.experiments.spec.point_cache_key`."""
    return point_cache_key(benchmark, profile, config, instrument)


def _stats_from_result(result, probe=None) -> RunStats:
    """Reduce a :class:`~repro.simulation.SimulationResult` to RunStats."""
    total = result.stats.total_scc
    return RunStats(
        execution_time=result.stats.execution_time,
        read_miss_rate=result.stats.read_miss_rate,
        miss_rate=total.miss_rate,
        invalidations=result.stats.total_invalidations,
        reads=total.reads,
        writes=total.writes,
        events=result.events_processed,
        instrument=probe.summary() if probe is not None else None,
    )


def _simulate(application, config: SystemConfig, instrument: bool,
              backend: Optional[str] = None) -> RunStats:
    """One simulation of any workload object, reduced to RunStats."""
    probe = (InstrumentationProbe(bin_width=INSTRUMENT_BIN_WIDTH,
                                  record_events=False)
             if instrument else None)
    result = run_simulation(config, application, instrumentation=probe,
                            backend=backend)
    return _stats_from_result(result, probe)


def _compute_point(benchmark: str, profile: ExperimentProfile,
                   config: SystemConfig,
                   instrument: bool = True,
                   backend: Optional[str] = None) -> RunStats:
    """Actually simulate one configuration (no cache involved).

    Module-level (not nested) so ``ProcessPoolExecutor`` can pickle it
    for ``--jobs`` parallel sweeps.  By default every point runs with
    summary-only instrumentation: the observability digest rides along
    in the cached payload.  ``instrument=False`` drops the digest and
    keeps the simulation on the interleaver's packed fast path (an
    attached probe forces the event-at-a-time path), which is what the
    benchmark harness measures.
    """
    return _simulate(profile.workload(benchmark), config, instrument,
                     backend)


# ----------------------------------------------------------------------
# Persistent worker pool (``--jobs N``)
# ----------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0

_WORKER_WORKLOADS: Dict[Tuple[str, ExperimentProfile], object] = {}
"""Worker-process-side cache of constructed workload objects.

Every workload builds its run state (bodies, particles, RNG) freshly per
``processes()`` call, so the application object itself is reusable across
simulations; constructing it once per worker instead of once per point
removes the per-point workload setup from parallel sweeps.
"""


def _compute_point_pooled(benchmark: str, profile: ExperimentProfile,
                          config: SystemConfig,
                          instrument: bool = True,
                          backend: Optional[str] = None) -> RunStats:
    """`_compute_point` with a warm per-worker workload object."""
    key = (benchmark, profile)
    workload = _WORKER_WORKLOADS.get(key)
    if workload is None:
        workload = profile.workload(benchmark)
        _WORKER_WORKLOADS[key] = workload
    return _simulate(workload, config, instrument, backend)


def _pool_worker_init() -> None:
    """Reset each worker's signal dispositions to sane defaults.

    Workers fork after the parent has installed its signal-chaining
    handlers -- and possibly while executor locks are held -- so an
    inherited handler could deadlock the worker inside its own copy of
    ``pool.shutdown()`` instead of letting it die.  Workers must die on
    SIGTERM/SIGHUP (that is how ``_shutdown_pool(kill=True)`` stops
    them) and ignore SIGINT (a terminal Ctrl-C reaches the whole
    foreground group; teardown is the parent's call).
    """
    for signum in _TERMINATION_SIGNALS:
        try:
            signal.signal(signum, signal.SIG_IGN
                          if signum == getattr(signal, "SIGINT", None)
                          else signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _worker_pool(jobs: int) -> ProcessPoolExecutor:
    """The process-wide sweep pool, rebuilt only when ``jobs`` changes.

    Keeping the pool (and the workload objects its workers cache) alive
    across sweep calls means a multi-benchmark session pays worker
    startup and workload construction once, not once per sweep.  The
    first pool also installs the exit hooks that keep a dying parent
    from orphaning its workers.
    """
    global _POOL, _POOL_JOBS
    if _POOL is not None and _POOL_JOBS != jobs:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        _install_exit_hooks()
        _POOL = ProcessPoolExecutor(max_workers=jobs,
                                    initializer=_pool_worker_init)
        _POOL_JOBS = jobs
    return _POOL


def _shutdown_pool(kill: bool = False) -> None:
    """Drop the pool; ``kill=True`` SIGKILLs the worker processes first
    (the only way to stop a worker stuck inside a simulation -- a
    catchable signal could be absorbed by whatever state the worker
    inherited or got itself into)."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is None:
        return
    if kill:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass
    pool.shutdown(wait=False)


_TERMINATION_SIGNALS = tuple(
    getattr(signal, name) for name in ("SIGINT", "SIGTERM", "SIGHUP")
    if hasattr(signal, name))

_EXIT_HOOKS_INSTALLED = False


def _handle_termination(signum, frame, previous) -> None:
    """Kill the pool's workers, then let the signal take its course.

    ``atexit`` never runs when the process dies from a signal, so
    without this a Ctrl-C'd or ``kill``-ed ``--jobs`` sweep leaves its
    worker processes orphaned mid-simulation.
    """
    _shutdown_pool(kill=True)
    if callable(previous):
        previous(signum, frame)
        return
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def _install_exit_hooks() -> None:
    """Register atexit + signal-chaining shutdown, once, main thread
    only (``signal.signal`` is unavailable elsewhere)."""
    global _EXIT_HOOKS_INSTALLED
    if _EXIT_HOOKS_INSTALLED:
        return
    _EXIT_HOOKS_INSTALLED = True
    atexit.register(_shutdown_pool)
    if threading.current_thread() is not threading.main_thread():
        return
    for signum in _TERMINATION_SIGNALS:
        try:
            previous = signal.getsignal(signum)
            if previous is signal.SIG_IGN:
                continue

            def handler(received, frame, _previous=previous):
                _handle_termination(received, frame, _previous)

            signal.signal(signum, handler)
        except (ValueError, OSError):  # non-main thread or exotic signum
            pass


def run_point(benchmark: str, profile: ExperimentProfile,
              config: SystemConfig,
              cache: Optional[ResultCache] = None,
              instrument: bool = True) -> RunStats:
    """Simulate one configuration (or fetch it from the cache)."""
    key = _stats_key(benchmark, profile, config, instrument)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    stats = _compute_point(benchmark, profile, config, instrument)
    if cache is not None:
        cache.put(key, stats)
    return stats


Sweep = Dict[Tuple[int, int], RunStats]
"""(processors per cluster, paper SCC bytes) -> stats."""


def _resolve_via_traces(benchmark: str, profile: ExperimentProfile,
                        configs: Dict[GridPoint, SystemConfig],
                        missing: List[GridPoint], sweep: Sweep,
                        cache: Optional[ResultCache],
                        instrument: bool,
                        trace_cache: Optional[TraceCache],
                        fused: bool = True,
                        backend: Optional[str] = None) -> List[GridPoint]:
    """Record-once/replay-everywhere for the grid rows that allow it.

    A row is all missing points with the same processor count (the
    ladder rungs); its per-process streams are identical across the row
    exactly when :meth:`~repro.workloads.base.TracedApplication
    .stream_is_deterministic` holds there, and the recording is keyed by
    :meth:`~repro.workloads.base.TracedApplication.trace_signature`.
    Rows that fail either guard are returned for normal simulation.

    When a row's remaining rungs form a fused-replayable ladder
    (uninstrumented single-process row whose configurations differ only
    in SCC size -- :func:`~repro.trace.multiconfig.fused_ladder_supported`),
    the whole row is resolved by *one* pass of the multi-configuration
    engine instead of one replay per rung; the results are bit-identical
    by construction (pinned by ``tests/equivalence``).  Multi-process
    rows never qualify and keep the per-rung replay automatically.
    """
    by_row: Dict[int, List[GridPoint]] = {}
    for point in missing:
        by_row.setdefault(point[0], []).append(point)
    remainder: List[GridPoint] = []
    resolved: Dict[GridPoint, RunStats] = {}
    for row_points in by_row.values():
        row_points = sorted(row_points)
        probe_workload = profile.workload(benchmark)
        config0 = configs[row_points[0]]
        signature = probe_workload.trace_signature(config0)
        if (signature is None
                or not probe_workload.stream_is_deterministic(config0)):
            remainder.extend(row_points)
            continue
        tcache = trace_cache if trace_cache is not None else TraceCache()
        streams = tcache.get(signature)
        if streams is None:
            # Record the row's stream while computing its first point.
            point = row_points.pop(0)
            recorder = StreamRecorder(profile.workload(benchmark))
            resolved[point] = _simulate(recorder, configs[point],
                                        instrument, backend)
            streams = recorder.streams
            if streams is not None:
                tcache.put(signature, streams)
        if streams is None:
            remainder.extend(row_points)
            continue
        if (fused and not instrument and len(row_points) > 1
                and set(streams) == {0}):
            row_configs = [configs[point] for point in row_points]
            if fused_ladder_supported(row_configs):
                for point, result in zip(
                        row_points,
                        fused_ladder_results(row_configs, streams,
                                             backend=backend)):
                    resolved[point] = _stats_from_result(result)
                continue
        for point in row_points:
            replay = ReplayApplication(streams, name=benchmark)
            resolved[point] = _simulate(replay, configs[point],
                                        instrument, backend)
    for point, stats in resolved.items():
        if cache is not None:
            cache.put(_stats_key(benchmark, profile, configs[point],
                                 instrument),
                      stats)
        sweep[point] = stats
    return remainder


# ----------------------------------------------------------------------
# Legacy sweep entry points (shims over run_sweep)
# ----------------------------------------------------------------------

_SHIM_DEPRECATION = ("{}() is deprecated and will be removed in "
                     "repro 2.0; build a repro.experiments.SweepSpec "
                     "and call run_sweep(spec) instead")


def parallel_sweep(benchmark: str,
                   profile: Optional[ExperimentProfile] = None,
                   cache: Optional[ResultCache] = None,
                   ladder: Optional[Tuple[int, ...]] = None,
                   procs: Tuple[int, ...] = PROCS_SWEPT,
                   jobs: Optional[int] = None,
                   instrument: bool = True,
                   trace_cache: Optional[TraceCache] = None,
                   fused: bool = True) -> Sweep:
    """Deprecated: the Section 3.1 grid for one parallel benchmark.

    Equivalent to ``run_sweep(SweepSpec.parallel(...))`` with the old
    fail-fast semantics (``max_attempts=1``, no journal); results are
    bit-identical to the new path (pinned by
    ``tests/experiments/test_session.py``).
    """
    # stacklevel=2: the warning must point at the *caller* of the shim.
    warnings.warn(_SHIM_DEPRECATION.format("parallel_sweep"),
                  DeprecationWarning, stacklevel=2)
    from .session import run_sweep
    spec = SweepSpec.parallel(benchmark, profile=profile,
                              ladder=ladder, procs=procs, jobs=jobs,
                              instrument=instrument, fused=fused,
                              max_attempts=1)
    return run_sweep(spec, cache=cache if cache is not None
                     else default_cache(),
                     trace_cache=trace_cache)


def multiprogramming_sweep(profile: Optional[ExperimentProfile] = None,
                           cache: Optional[ResultCache] = None,
                           ladder: Optional[Tuple[int, ...]] = None,
                           procs: Tuple[int, ...] = PROCS_SWEPT,
                           jobs: Optional[int] = None,
                           instrument: bool = True,
                           trace_cache: Optional[TraceCache] = None,
                           fused: bool = True) -> Sweep:
    """Deprecated: the Section 3.2 grid (single cluster, icache
    modelled and scaled).  See :func:`parallel_sweep`."""
    warnings.warn(_SHIM_DEPRECATION.format("multiprogramming_sweep"),
                  DeprecationWarning, stacklevel=2)
    from .session import run_sweep
    spec = SweepSpec.multiprogramming(profile=profile, ladder=ladder,
                                      procs=procs, jobs=jobs,
                                      instrument=instrument, fused=fused,
                                      max_attempts=1)
    return run_sweep(spec, cache=cache if cache is not None
                     else default_cache(),
                     trace_cache=trace_cache)


def miss_surface_sweep(benchmark: str,
                       profile: Optional[ExperimentProfile] = None,
                       procs_per_cluster: int = 4,
                       ladder: Optional[Tuple[int, ...]] = None,
                       trace_cache: Optional[TraceCache] = None):
    """Deprecated: approximate per-process miss surface of one
    parallel-grid row; equivalent to
    ``run_sweep(SweepSpec.miss_surface(...))``.

    Returns ``{process: {paper_bytes: MissSurfacePoint}}`` -- miss
    *counts* under fixed interleaving, not RunStats; use it to find
    working-set knees before spending full simulations on them.
    """
    warnings.warn(_SHIM_DEPRECATION.format("miss_surface_sweep"),
                  DeprecationWarning, stacklevel=2)
    from .session import run_sweep
    spec = SweepSpec.miss_surface(benchmark, profile=profile,
                                  procs_per_cluster=procs_per_cluster,
                                  ladder=ladder)
    return run_sweep(spec, trace_cache=trace_cache)
