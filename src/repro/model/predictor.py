"""Pricing a grid point from a :class:`~repro.model.profile.RowProfile`.

:func:`predict_point` turns a row profile into the
:class:`~repro.experiments.runner.RunStats` of one configuration, with
no simulation.  Two paths:

* **exact** -- for one-way arrays at sizes the profile's coherence
  ladder tracked, the miss/invalidation counts come straight from the
  ladder (the same bit-selected direct-mapped, write-allocate,
  write-invalidate model the simulator runs, evaluated on the merged
  stream), so content statistics are exact up to interleaving;
* **binomial** -- for other associativities or untracked sizes, each
  cluster's fully-associative stack-distance histogram is mapped to a
  set-associative miss ratio with the classic binomial set-mapping
  model (a reference at stack distance ``d`` hits an ``A``-way,
  ``S``-set LRU array with probability ``P[fewer than A of the d
  intervening lines land in its set]``), plus an interleaved-reuse
  correction charging each cluster's *exposure* (expected reads landing
  on remotely-written lines) as coherence misses.

The cycle estimate composes the predicted misses with the same
latency parameters the simulator charges (memory latency, bus
occupancy, lock/barrier overheads, icache refills) per process, takes
the slowest process, and scales by the :mod:`repro.cost` load-latency
factor -- the analytical analogue of the cost/performance pipeline.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from ..core.config import SystemConfig
from ..cost import latency_factor
from ..experiments.runner import RunStats
from .profile import RowProfile, _BucketedHistogram

__all__ = ["ParallelFidelityError", "predict_point"]


class ParallelFidelityError(ValueError):
    """Raised by :func:`predict_point` with ``strict_parallel=True`` for
    multi-processor *parallel* rows, where the surrogate's error is
    known to be large (MAE ~ 0.09; the interleaving-aware merge is
    still an open item).  Callers that must not rank on bad predictions
    -- the design-space optimizer -- catch this and fall back to the
    exact fused tier."""


_PARALLEL_WARNING_EMITTED = False
"""One-shot latch for the known-bad-row warning (process-wide; reset by
tests via monkeypatch)."""


def _check_parallel_fidelity(profile: RowProfile,
                             strict_parallel: bool) -> None:
    """Refuse or warn (once) on multi-processor parallel rows."""
    global _PARALLEL_WARNING_EMITTED
    if profile.clusters <= 1 or profile.procs_per_cluster <= 1:
        return
    message = (
        f"analytical predictions for multi-processor parallel rows "
        f"({profile.clusters} clusters x {profile.procs_per_cluster} "
        f"procs) are known-bad (miss-ratio MAE ~ 0.09): the surrogate "
        f"lacks an interleaving-aware merge for them; prefer the fused "
        f"tier (fidelity='fused') or pass strict_parallel=True to "
        f"refuse instead")
    if strict_parallel:
        raise ParallelFidelityError(message)
    if not _PARALLEL_WARNING_EMITTED:
        _PARALLEL_WARNING_EMITTED = True
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def _set_hit_probability(distance: int, sets: int, ways: int) -> float:
    """P(hit) for a reference at FA stack distance ``distance`` in an
    LRU array of ``sets`` sets of ``ways`` ways.

    Binomial set-mapping: the ``distance`` distinct intervening lines
    land in this line's set independently with probability ``1/sets``;
    the reference hits iff fewer than ``ways`` of them do.  ``sets ==
    1`` degenerates to the exact fully-associative rule.
    """
    if sets == 1:
        return 1.0 if distance < ways else 0.0
    if distance < ways:
        return 1.0
    # Iterative binomial tail: term_k = C(d, k) p^k q^(d-k).
    p = 1.0 / sets
    q = 1.0 - p
    term = q ** distance
    total = term
    for k in range(1, ways):
        term *= (distance - k + 1) * p / (k * q)
        total += term
    return min(1.0, total)


def _binomial_misses(histogram: _BucketedHistogram, sets: int,
                     ways: int) -> Dict[str, float]:
    """Expected read/write misses of one cluster's merged stream."""
    read_misses = float(histogram.cold_reads)
    write_misses = float(histogram.cold_writes)
    hits = 0.0
    for floor, (reads, writes) in histogram.buckets.items():
        hit = _set_hit_probability(floor, sets, ways)
        read_misses += reads * (1.0 - hit)
        write_misses += writes * (1.0 - hit)
        hits += (reads + writes) * hit
    return {"read_misses": read_misses, "write_misses": write_misses,
            "hits": hits}


def _nearest_tracked(profile: RowProfile, lines: int) -> Optional[dict]:
    """The ladder rung whose size is closest (log-scale) to ``lines``."""
    tracked = profile.tracked_line_counts
    if not tracked:
        return None
    best = min(tracked, key=lambda count: abs(count.bit_length()
                                              - lines.bit_length()))
    return profile.ladder_entry(best)


def predict_point(profile: RowProfile, config: SystemConfig,
                  benchmark: Optional[str] = None,
                  load_latency: int = 2,
                  strict_parallel: bool = False) -> RunStats:
    """Analytical :class:`RunStats` of ``config`` from a row profile.

    ``config`` must share the profile's line size and cluster layout
    (those were baked into the recording); cache size and associativity
    are free.  ``benchmark`` selects the :mod:`repro.cost` load-latency
    model scaling the cycle estimate (``None`` or a 2-cycle pipeline
    leaves it unscaled).

    Multi-processor *parallel* rows (several clusters with several
    processors each) are a documented weak spot of the surrogate; they
    warn once per process, or raise :class:`ParallelFidelityError` when
    ``strict_parallel=True``.
    """
    _check_parallel_fidelity(profile, strict_parallel)
    if config.line_size != profile.line_size:
        raise ValueError(
            f"profile recorded at line size {profile.line_size}, "
            f"configuration wants {config.line_size}")
    if (config.clusters != profile.clusters
            or config.processors_per_cluster != profile.procs_per_cluster):
        raise ValueError(
            f"profile recorded on {profile.clusters}x"
            f"{profile.procs_per_cluster} clusters, configuration wants "
            f"{config.clusters}x{config.processors_per_cluster}")

    lines = config.scc_lines
    per_process = profile.per_process
    reads = profile.reads
    writes = profile.writes

    exact = (config.associativity == 1
             and profile.ladder_entry(lines) is not None)
    if exact:
        entry = profile.ladder_entry(lines)
        read_misses = float(entry["read_misses"])
        write_misses = float(entry["write_misses"])
        invalidations = int(entry["invalidations"])
        proc_read_misses = {int(proc): float(count) for proc, count
                            in entry["proc_read_misses"].items()}
    else:
        sets = max(1, lines // config.associativity)
        ways = config.associativity if sets > 1 else lines
        read_misses = 0.0
        write_misses = 0.0
        proc_read_misses = {proc: 0.0 for proc in per_process}
        exposure = profile.sharing["exposure"]
        for cluster in range(profile.clusters):
            histogram = profile.cluster_histogram(cluster)
            misses = _binomial_misses(histogram, sets, ways)
            cluster_reads = (histogram.cold_reads
                             + sum(counts[0] for counts
                                   in histogram.buckets.values()))
            cluster_read_misses = misses["read_misses"]
            # Interleaved-reuse correction: reads expected to land on
            # remotely-invalidated lines miss regardless of capacity;
            # only the ones the capacity model called hits need moving.
            base_hit = (1.0 - cluster_read_misses / cluster_reads
                        if cluster_reads else 0.0)
            cluster_read_misses += (exposure[str(cluster)] * base_hit)
            read_misses += cluster_read_misses
            write_misses += misses["write_misses"]
            members = [proc for proc in per_process
                       if proc // profile.procs_per_cluster == cluster]
            member_reads = sum(per_process[proc]["reads"]
                               for proc in members)
            for proc in members:
                share = (per_process[proc]["reads"] / member_reads
                         if member_reads else 1.0 / len(members))
                proc_read_misses[proc] += cluster_read_misses * share
        nearest = _nearest_tracked(profile, lines)
        invalidations = int(nearest["invalidations"]) if nearest else 0

    # ---- cycle estimate ----------------------------------------------
    read_penalty = config.memory_latency + config.bus_occupancy
    finish = 0.0
    for proc, summary in per_process.items():
        busy = (summary["instructions"] + summary["compute_cycles"]
                + summary["reads"] + summary["writes"]
                + summary["lock_ops"] * config.lock_overhead
                + summary["barriers"] * config.barrier_overhead)
        stall = proc_read_misses.get(proc, 0.0) * read_penalty
        if config.model_icache:
            stall += (summary["icache_misses"]
                      * config.icache_miss_latency)
        finish = max(finish, busy + stall)
    factor = (latency_factor(benchmark, load_latency)
              if benchmark is not None else 1.0)
    execution_time = int(finish * factor)

    references = reads + writes
    return RunStats(
        execution_time=execution_time,
        read_miss_rate=read_misses / reads if reads else 0.0,
        miss_rate=((read_misses + write_misses) / references
                   if references else 0.0),
        invalidations=invalidations,
        reads=reads,
        writes=writes,
        events=sum(summary["events"]
                   for summary in per_process.values()),
        instrument=None)
