"""Analytical surrogate: miss ratios and cycle estimates, no simulator.

One recorded packed tape per (workload, processors-per-cluster) row is
profiled once (:mod:`repro.model.profile`) and then prices *every*
(cache size, associativity) grid point of that row analytically
(:mod:`repro.model.predictor`) -- reuse-distance histograms with a
binomial set-mapping correction, an exact inclusion-chained coherence
tag ladder for the one-way sizes the sweep tracks, and an
interleaved-reuse correction for cross-cluster sharing, composed with
the :mod:`repro.cost` latency model into an execution-time estimate.

Sweeps opt in with ``SweepSpec(fidelity="analytical")`` (or ``python -m
repro sweep --fidelity analytical``); ``python -m repro model
--validate`` cross-checks the surrogate against the simulator
(:mod:`repro.model.validate`).
"""

from .predictor import ParallelFidelityError, predict_point
from .profile import (MODEL_VERSION, ProfileCache, RowProfile,
                      build_row_profile, bucket_floor, coherence_ladder,
                      extract_process, merge_refs)
from .validate import DEFAULT_ROWS, cross_validate

__all__ = [
    "MODEL_VERSION", "RowProfile", "ProfileCache", "build_row_profile",
    "extract_process", "merge_refs", "coherence_ladder", "bucket_floor",
    "ParallelFidelityError", "predict_point", "DEFAULT_ROWS",
    "cross_validate",
]
