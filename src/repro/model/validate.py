"""Cross-validation of the analytical surrogate against the simulator.

:func:`cross_validate` runs the paper's quick grid twice -- once at
``fidelity="analytical"`` and once through the exact trace/fused tiers
-- and reports per-point, per-row and aggregate miss-ratio error (plus
execution-time error, informationally).  The CI ``model-validate`` job
pins the aggregate error below a committed threshold, and because the
two sweeps share one result cache the run also exercises the key
isolation between analytical and full-fidelity entries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple

from ..experiments.session import _DEFAULT_CACHE, run_sweep
from ..experiments.spec import (PAPER_LADDER, ExperimentProfile,
                                SweepSpec, active_profile)

__all__ = ["DEFAULT_ROWS", "cross_validate"]

DEFAULT_ROWS: Tuple[Tuple[str, int], ...] = (
    ("multiprogramming", 1),
    ("multiprogramming", 2),
    ("multiprogramming", 4),
    ("multiprogramming", 8),
    ("barnes-hut", 1),
    ("mp3d", 1),
    ("cholesky", 1),
)
"""The acceptance grid: every multiprogramming row plus each parallel
benchmark's uniprocessor (one processor per cluster) row.  Parallel
rows with several processors per cluster are deliberately absent -- the
recorded interleaving drifts from the per-machine one there, and the
model's error is characterized, not bounded (DESIGN.md section 10)."""


def _row_spec(benchmark: str, procs: int, profile: ExperimentProfile,
              ladder: Sequence[int], fidelity: str) -> SweepSpec:
    knobs = dict(profile=profile, ladder=tuple(ladder), procs=(procs,),
                 instrument=False, fidelity=fidelity)
    if benchmark == "multiprogramming":
        return SweepSpec.multiprogramming(**knobs)
    return SweepSpec.parallel(benchmark, **knobs)


def cross_validate(profile: Optional[ExperimentProfile] = None,
                   rows: Sequence[Tuple[str, int]] = DEFAULT_ROWS,
                   ladder: Sequence[int] = PAPER_LADDER,
                   cache=_DEFAULT_CACHE,
                   trace_cache=None,
                   session_dir: Optional[Path] = None,
                   progress: Optional[Callable] = None) -> dict:
    """Predicted vs simulated miss ratios over ``rows`` x ``ladder``.

    Returns a JSON-safe report: per-point predictions and truths,
    per-row mean absolute miss-ratio error, and the aggregate ``mae`` /
    ``max_error`` the CI gate reads.  ``progress(benchmark, procs,
    stage)`` is called before each row's two sweeps (stage
    ``"analytical"`` or ``"simulate"``).
    """
    profile = profile or active_profile()
    report_rows = []
    errors = []
    for benchmark, procs in rows:
        points = []
        if progress is not None:
            progress(benchmark, procs, "analytical")
        predicted = run_sweep(
            _row_spec(benchmark, procs, profile, ladder, "analytical"),
            cache=cache, trace_cache=trace_cache,
            session_dir=session_dir)
        if progress is not None:
            progress(benchmark, procs, "simulate")
        truth = run_sweep(
            _row_spec(benchmark, procs, profile, ladder, "fused"),
            cache=cache, trace_cache=trace_cache,
            session_dir=session_dir)
        row_errors = []
        for paper_bytes in sorted(ladder):
            model = predicted[(procs, paper_bytes)]
            exact = truth[(procs, paper_bytes)]
            error = abs(model.miss_rate - exact.miss_rate)
            row_errors.append(error)
            time_error = (abs(model.execution_time - exact.execution_time)
                          / exact.execution_time
                          if exact.execution_time else 0.0)
            points.append({
                "paper_bytes": paper_bytes,
                "predicted_miss_rate": model.miss_rate,
                "true_miss_rate": exact.miss_rate,
                "error": error,
                "predicted_time": model.execution_time,
                "true_time": exact.execution_time,
                "time_error": time_error,
            })
        errors.extend(row_errors)
        report_rows.append({
            "benchmark": benchmark,
            "procs": procs,
            "mae": sum(row_errors) / len(row_errors),
            "max_error": max(row_errors),
            "points": points,
        })
    return {
        "profile": profile.name,
        "ladder": sorted(ladder),
        "rows": report_rows,
        "mae": sum(errors) / len(errors),
        "max_error": max(errors),
    }
