"""Row profiles: everything the analytical surrogate needs from a tape.

One recorded packed tape per (workload, processors-per-cluster) row is
reduced to a :class:`RowProfile` -- a small, JSON-serializable summary
from which :mod:`repro.model.predictor` prices *every* (cache size,
associativity) grid point of that row without running the simulator.

The profile has four parts:

* **exact ladder** -- each cluster's member streams are merged by
  normalized position (round-robin over stream fractions, the
  interleaving a fair scheduler produces) and pushed through an
  inclusion-chained direct-mapped tag ladder covering the sweep's
  power-of-two SCC sizes, with cross-cluster write-invalidations
  applied at every rung.  For one-way arrays at tracked sizes this *is*
  the cache model the simulator runs (bit-selected direct-mapped,
  write-allocate, write-invalidate between clusters), so the resulting
  per-rung miss counts are exact up to interleaving;
* **reuse-distance histograms** -- fully-associative stack-distance
  histograms (bucketed, read/write split) of each cluster's merged
  stream and of each process's own stream, feeding the binomial
  set-mapping correction for associativities and sizes the ladder does
  not track;
* **sharing summary** -- per-line writer sets collapsed to a histogram,
  inter-process reuse counts, and each cluster's *exposure* (expected
  reads landing on lines invalidated by remote writers under random
  interleaving), feeding the interleaved-reuse correction;
* **per-process accounting** -- busy cycles, lock/barrier counts and
  exact instruction-cache misses at the recorded geometry, feeding the
  cycle estimate.

Profiles are cached on disk (:class:`ProfileCache`) keyed by the tape
they came from, so a warm sweep never touches the tape again.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import logging
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SystemConfig
from ..core.icache import INSTRUCTION_BYTES
from ..trace.analysis import _Fenwick
from ..trace.packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE,
                            OP_ENQUEUE, OP_IFETCH, OP_LOCK_ACQ,
                            OP_LOCK_REL, OP_READ, OP_READ_SPAN, OP_WRITE,
                            OP_WRITE_SPAN)

__all__ = ["MODEL_VERSION", "RowProfile", "ProfileCache",
           "build_row_profile", "extract_process", "merge_refs",
           "coherence_ladder", "bucket_floor"]

_LOG = logging.getLogger(__name__)

MODEL_VERSION = 1
"""Bump to invalidate cached profiles (and analytical sweep results --
:meth:`repro.experiments.spec.SweepSpec.point_key` embeds it) after
model changes."""

_EXACT_DISTANCES = 128
"""Stack distances below this are kept exact; beyond, buckets are
geometric with :data:`_BUCKETS_PER_OCTAVE` sub-buckets per power of
two (error bounded by ~1/16 of the distance, far below the model's
other approximations)."""

_BUCKETS_PER_OCTAVE = 8


def bucket_floor(distance: int) -> int:
    """Canonical (lowest) distance of the bucket containing
    ``distance``."""
    if distance < _EXACT_DISTANCES:
        return distance
    octave = distance.bit_length() - 1
    step = max(1, (1 << octave) // _BUCKETS_PER_OCTAVE)
    return (1 << octave) + ((distance - (1 << octave)) // step) * step


class _BucketedHistogram:
    """Read/write-split stack-distance histogram with geometric
    buckets; the JSON form is a list of ``[floor, reads, writes]``."""

    __slots__ = ("cold_reads", "cold_writes", "buckets")

    def __init__(self):
        self.cold_reads = 0
        self.cold_writes = 0
        self.buckets: Dict[int, List[int]] = {}

    def add(self, distance: Optional[int], is_write: int) -> None:
        if distance is None:
            if is_write:
                self.cold_writes += 1
            else:
                self.cold_reads += 1
            return
        bucket = self.buckets.setdefault(bucket_floor(distance), [0, 0])
        bucket[is_write] += 1

    def as_dict(self) -> dict:
        return {
            "cold_reads": self.cold_reads,
            "cold_writes": self.cold_writes,
            "buckets": [[floor, counts[0], counts[1]]
                        for floor, counts in sorted(self.buckets.items())],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_BucketedHistogram":
        histogram = cls()
        histogram.cold_reads = int(data["cold_reads"])
        histogram.cold_writes = int(data["cold_writes"])
        histogram.buckets = {int(floor): [int(reads), int(writes)]
                             for floor, reads, writes in data["buckets"]}
        return histogram


def extract_process(data, line_shift: int,
                    icache_config: Optional[SystemConfig] = None):
    """One walk over a packed stream: the data-reference sequence plus
    the busy/sync accounting the cycle estimate needs.

    Returns ``(refs, summary)`` where ``refs`` is a list of
    ``(is_write, line)`` pairs and ``summary`` counts instructions,
    compute cycles, lock operations, barriers, events, and (when
    ``icache_config.model_icache``) exact instruction-cache misses at
    the recorded geometry -- the geometry is ladder-invariant, so these
    are row constants.
    """
    refs: List[Tuple[int, int]] = []
    append = refs.append
    instructions = compute = locks = barriers = events = 0
    itags: Optional[List[int]] = None
    icache_misses = 0
    if icache_config is not None and icache_config.model_icache:
        ilines = (icache_config.icache_size
                  // icache_config.icache_line_size)
        itags = [-1] * ilines
        imask = ilines - 1
        iline_size = icache_config.icache_line_size
    index, end = 0, len(data)
    while index < end:
        op = data[index]
        if op == OP_READ:
            append((0, data[index + 1] >> line_shift))
            events += 1
            index += 2
        elif op == OP_WRITE:
            append((1, data[index + 1] >> line_shift))
            events += 1
            index += 2
        elif op == OP_IFETCH:
            count = data[index + 2]
            instructions += count
            events += 1
            if itags is not None:
                addr = data[index + 1]
                first = addr // iline_size
                last = (addr + count * INSTRUCTION_BYTES - 1) // iline_size
                for line in range(first, last + 1):
                    if itags[line & imask] != line:
                        itags[line & imask] = line
                        icache_misses += 1
            index += 3
        elif op == OP_COMPUTE:
            compute += data[index + 1]
            events += 1
            index += 2
        elif op == OP_READ_SPAN or op == OP_WRITE_SPAN:
            base = data[index + 1]
            size = data[index + 2]
            stride = data[index + 3]
            is_write = 1 if op == OP_WRITE_SPAN else 0
            for offset in range(0, size, stride):
                append((is_write, (base + offset) >> line_shift))
            events += (size + stride - 1) // stride
            index += 4
        elif op == OP_LOCK_ACQ or op == OP_LOCK_REL:
            locks += 1
            events += 1
            index += 2
        elif op == OP_BARRIER:
            barriers += 1
            events += 1
            index += 3
        elif op == OP_ENQUEUE:
            events += 1
            index += 3
        elif op == OP_DEQUEUE:
            events += 1
            index += 2
        else:
            raise ValueError(f"unknown packed opcode {op} at word {index}")
    summary = {
        "reads": sum(1 for is_write, _ in refs if not is_write),
        "writes": sum(1 for is_write, _ in refs if is_write),
        "instructions": instructions,
        "compute_cycles": compute,
        "lock_ops": locks,
        "barriers": barriers,
        "events": events,
        "icache_misses": icache_misses,
    }
    return refs, summary


def merge_refs(sequences: Sequence[Sequence]) -> List:
    """Merge reference sequences by normalized position.

    Each step takes the next item from the sequence that is least far
    through its own stream -- the fair round-robin interleaving a
    shared cache sees from symmetric processors.  Items keep their
    per-sequence order (each input is a subsequence of the output).
    """
    live = [seq for seq in sequences if len(seq)]
    if len(live) == 1:
        return list(live[0])
    merged: List = []
    append = merged.append
    positions = [0] * len(live)
    lengths = [len(seq) for seq in live]
    heap = [(0.0, index) for index in range(len(live))]
    heapq.heapify(heap)
    while heap:
        _, index = heapq.heappop(heap)
        append(live[index][positions[index]])
        positions[index] += 1
        if positions[index] < lengths[index]:
            heapq.heappush(heap,
                           (positions[index] / lengths[index], index))
    return merged


def coherence_ladder(refs: Sequence[Tuple[int, int, int]],
                     clusters: int, procs_per_cluster: int,
                     line_counts: Sequence[int]):
    """Exact direct-mapped miss counts at every tracked size, with
    cross-cluster write-invalidate coherence.

    ``refs`` is the globally merged ``(proc, is_write, line)`` stream;
    each cluster owns one bit-selected direct-mapped array per rung
    (power-of-two ``line_counts``, ascending).  Bit-selected
    direct-mapped arrays are inclusive across sizes -- the larger
    array's conflict set for any line is a subset of the smaller's --
    so a probe stops at the first resident rung, and an invalidation
    clears every rung at or above the first resident one.  Writes
    install on miss (write-allocate) and invalidate remote copies
    whether they hit or miss, exactly as the simulated protocol does;
    a write hit on a remotely-shared line is an upgrade, not a miss.

    Returns a per-rung list of dicts with total read/write misses,
    invalidations sent, and per-process read/write miss counts.
    """
    geometry = [(count - 1, count.bit_length() - 1)
                for count in line_counts]
    for count in line_counts:
        if count < 1 or count & (count - 1):
            raise ValueError("tracked line counts must be powers of two")
    if list(line_counts) != sorted(line_counts):
        raise ValueError("tracked line counts must be ascending")
    rungs = len(geometry)
    tags = [[[-1] * (mask + 1) for mask, _ in geometry]
            for _ in range(clusters)]
    per_rung = [{"read_misses": 0, "write_misses": 0, "invalidations": 0,
                 "proc_read_misses": {}, "proc_write_misses": {}}
                for _ in range(rungs)]
    mask0, shift0 = geometry[0]
    for proc, is_write, line in refs:
        cluster = proc // procs_per_cluster
        own = tags[cluster]
        if own[0][line & mask0] != line >> shift0:
            for rung in range(rungs):
                mask, shift = geometry[rung]
                slots = own[rung]
                slot = line & mask
                tag = line >> shift
                if slots[slot] == tag:
                    break
                slots[slot] = tag
                entry = per_rung[rung]
                if is_write:
                    entry["write_misses"] += 1
                    counts = entry["proc_write_misses"]
                else:
                    entry["read_misses"] += 1
                    counts = entry["proc_read_misses"]
                counts[proc] = counts.get(proc, 0) + 1
        if is_write and clusters > 1:
            for other in range(clusters):
                if other == cluster:
                    continue
                remote = tags[other]
                for rung in range(rungs):
                    mask, shift = geometry[rung]
                    slot = line & mask
                    if remote[rung][slot] == line >> shift:
                        remote[rung][slot] = -1
                        per_rung[rung]["invalidations"] += 1
    return per_rung


class RowProfile:
    """The analytical summary of one grid row's tape."""

    def __init__(self, payload: dict):
        self.payload = payload

    # Convenience views ------------------------------------------------

    @property
    def line_size(self) -> int:
        return self.payload["line_size"]

    @property
    def clusters(self) -> int:
        return self.payload["clusters"]

    @property
    def procs_per_cluster(self) -> int:
        return self.payload["procs_per_cluster"]

    @property
    def tracked_line_counts(self) -> Tuple[int, ...]:
        return tuple(self.payload["tracked_line_counts"])

    @property
    def reads(self) -> int:
        return self.payload["reads"]

    @property
    def writes(self) -> int:
        return self.payload["writes"]

    @property
    def per_process(self) -> Dict[int, dict]:
        return {int(proc): summary for proc, summary
                in self.payload["per_process"].items()}

    def ladder_entry(self, lines: int) -> Optional[dict]:
        """The exact-ladder rung for ``lines``, if tracked."""
        tracked = self.payload["tracked_line_counts"]
        if lines not in tracked:
            return None
        return self.payload["ladder"][tracked.index(lines)]

    def cluster_histogram(self, cluster: int) -> _BucketedHistogram:
        return _BucketedHistogram.from_dict(
            self.payload["cluster_histograms"][str(cluster)])

    def process_histogram(self, proc: int) -> _BucketedHistogram:
        return _BucketedHistogram.from_dict(
            self.payload["process_histograms"][str(proc)])

    @property
    def sharing(self) -> dict:
        return self.payload["sharing"]

    def as_dict(self) -> dict:
        return self.payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RowProfile":
        if payload.get("model_version") != MODEL_VERSION:
            raise ValueError("profile written by a different model "
                             "version")
        return cls(payload)


def build_row_profile(streams: Dict[int, Sequence], config:
                      SystemConfig,
                      tracked_line_counts: Sequence[int]) -> RowProfile:
    """Reduce one recorded row tape to its :class:`RowProfile`.

    ``streams`` maps processor ids to packed streams recorded on
    ``config`` (the row's recording configuration -- its icache
    geometry prices the instruction caches; its line size and cluster
    layout shape everything else).  ``tracked_line_counts`` are the
    SCC line counts the exact ladder covers, ascending powers of two.
    """
    line_shift = config.line_offset_bits
    procs_per_cluster = config.processors_per_cluster
    clusters = config.clusters
    tracked = tuple(sorted(set(int(count)
                               for count in tracked_line_counts)))

    per_process: Dict[int, dict] = {}
    proc_refs: Dict[int, List[Tuple[int, int]]] = {}
    for proc in sorted(streams):
        refs, summary = extract_process(streams[proc], line_shift,
                                        icache_config=config)
        proc_refs[proc] = refs
        per_process[proc] = summary

    process_histograms = {}
    for proc, refs in proc_refs.items():
        process_histograms[str(proc)] = _histogram_of(refs).as_dict()

    # Per-cluster merged streams (what the shared cache sees), tagged
    # with the owning process for miss attribution.
    cluster_refs: Dict[int, List[Tuple[int, int, int]]] = {}
    cluster_histograms = {}
    for cluster in range(clusters):
        members = [proc for proc in sorted(proc_refs)
                   if proc // procs_per_cluster == cluster]
        tagged = [[(proc, is_write, line)
                   for is_write, line in proc_refs[proc]]
                  for proc in members]
        merged = merge_refs(tagged)
        cluster_refs[cluster] = merged
        cluster_histograms[str(cluster)] = _histogram_of(
            [(is_write, line) for _, is_write, line in merged]).as_dict()

    merged_global = merge_refs([cluster_refs[cluster]
                                for cluster in range(clusters)])
    ladder = coherence_ladder(merged_global, clusters,
                              procs_per_cluster, tracked)
    for entry in ladder:
        entry["proc_read_misses"] = {
            str(proc): count
            for proc, count in sorted(entry["proc_read_misses"].items())}
        entry["proc_write_misses"] = {
            str(proc): count
            for proc, count in sorted(entry["proc_write_misses"].items())}

    sharing = _sharing_summary(merged_global, clusters,
                               procs_per_cluster)

    payload = {
        "model_version": MODEL_VERSION,
        "line_size": config.line_size,
        "clusters": clusters,
        "procs_per_cluster": procs_per_cluster,
        "tracked_line_counts": list(tracked),
        "reads": sum(summary["reads"] for summary in per_process.values()),
        "writes": sum(summary["writes"]
                      for summary in per_process.values()),
        "per_process": {str(proc): summary
                        for proc, summary in per_process.items()},
        "process_histograms": process_histograms,
        "cluster_histograms": cluster_histograms,
        "ladder": ladder,
        "sharing": sharing,
    }
    return RowProfile(payload)


def _histogram_of(refs: Sequence[Tuple[int, int]]) -> _BucketedHistogram:
    """Fully-associative stack-distance histogram of a reference
    sequence, read/write split (Bennett-Kruskal over the line stream)."""
    histogram = _BucketedHistogram()
    tree = _Fenwick(len(refs))
    last_position: Dict[int, int] = {}
    for position, (is_write, line) in enumerate(refs):
        previous = last_position.get(line)
        if previous is None:
            histogram.add(None, is_write)
        else:
            marks_before = tree.prefix_sum(previous + 1)
            marks_total = tree.prefix_sum(position)
            histogram.add(marks_total - marks_before, is_write)
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[line] = position
    return histogram


def _sharing_summary(refs: Sequence[Tuple[int, int, int]],
                     clusters: int, procs_per_cluster: int) -> dict:
    """Writer sets, inter-process reuse, and per-cluster exposure.

    Exposure estimates, per cluster, how many of its reads land on
    lines a remote cluster has written -- each such read is a
    coherence-miss candidate.  Under random interleaving of ``r``
    local references with ``w`` remote writes to the same line, the
    expected fraction of local references immediately preceded by at
    least one remote write is ``w / (w + r)``; summed over shared
    lines this prices the interleaved-reuse correction for
    configurations the exact ladder does not track.
    """
    line_writers: Dict[int, set] = {}
    line_cluster_counts: Dict[int, Dict[int, List[int]]] = {}
    last_toucher: Dict[int, int] = {}
    interprocess_reuses = 0
    for proc, is_write, line in refs:
        if is_write:
            line_writers.setdefault(line, set()).add(proc)
        previous = last_toucher.get(line)
        if previous is not None and previous != proc:
            interprocess_reuses += 1
        last_toucher[line] = proc
        if clusters > 1:
            cluster = proc // procs_per_cluster
            per_cluster = line_cluster_counts.setdefault(line, {})
            counts = per_cluster.setdefault(cluster, [0, 0])
            counts[is_write] += 1
    writer_sets: Dict[str, int] = {}
    for writers in line_writers.values():
        key = str(len(writers))
        writer_sets[key] = writer_sets.get(key, 0) + 1
    exposure = {str(cluster): 0.0 for cluster in range(clusters)}
    shared_lines = 0
    if clusters > 1:
        for line, per_cluster in line_cluster_counts.items():
            if len(per_cluster) < 2:
                continue
            shared_lines += 1
            for cluster, (reads, writes) in per_cluster.items():
                remote_writes = sum(
                    counts[1] for other, counts in per_cluster.items()
                    if other != cluster)
                if remote_writes and reads:
                    local = reads + writes
                    exposure[str(cluster)] += (
                        reads * remote_writes / (remote_writes + local))
    return {
        "shared_lines": shared_lines,
        "writer_sets": writer_sets,
        "interprocess_reuses": interprocess_reuses,
        "exposure": exposure,
    }


class ProfileCache:
    """JSON-file-per-profile disk cache (same atomic discipline as
    :class:`~repro.experiments.runner.ResultCache`)."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._warned_corrupt = False

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"m{MODEL_VERSION}:{key}".encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[RowProfile]:
        path = self._path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            return None
        try:
            return RowProfile.from_dict(json.loads(raw))
        except (json.JSONDecodeError, ValueError, KeyError,
                TypeError) as exc:
            if not self._warned_corrupt:
                self._warned_corrupt = True
                _LOG.warning("discarding corrupt profile-cache entry %s "
                             "(%s); it will be rebuilt", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, profile: RowProfile) -> None:
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(profile.as_dict(),
                                      sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
