"""Processor-cache interconnection network and bank arbitration.

Within a cluster, each processor has a dedicated port into the SCC through
a crossbar ICN (Section 2.1, Figure 1).  The crossbar itself is conflict
free -- contention happens at the *banks*: each bank can start one access
per ``bank_cycle_time`` cycles, and simultaneous requests from different
ports to the same bank serialize.  The paper addresses "the issue of
contention at the shared cache by considering contention on each individual
bank within the SCC" (Section 2.2.2); :class:`BankInterconnect` is exactly
that model.

The SRAM blocks also contain a write buffer (Section 4.3).  Stores retire
in the background; a processor only stalls when its target bank's buffer is
full, which :meth:`BankInterconnect.reserve_write_slot` models.
"""

from __future__ import annotations

import heapq
from array import array
from typing import List, Tuple

from ..instrument.probes import NULL_PROBE

__all__ = ["BankInterconnect"]


class BankInterconnect:
    """Per-bank busy tracking and write-buffer occupancy for one SCC."""

    __slots__ = ("num_banks", "bank_cycle_time", "write_buffer_depth",
                 "_bank_free", "_write_buffers", "conflict_cycles",
                 "write_stall_cycles", "probe", "cluster_id")

    def __init__(self, num_banks: int, bank_cycle_time: int = 1,
                 write_buffer_depth: int = 4, probe=NULL_PROBE,
                 cluster_id: int = 0):
        if num_banks < 1:
            raise ValueError("need at least one bank")
        if bank_cycle_time < 1:
            raise ValueError("bank_cycle_time must be >= 1")
        if write_buffer_depth < 1:
            raise ValueError("write_buffer_depth must be >= 1")
        self.num_banks = num_banks
        self.bank_cycle_time = bank_cycle_time
        self.write_buffer_depth = write_buffer_depth
        # ``array('q')`` so the compiled replay backends can address the
        # bank-free table through the buffer protocol (see repro.trace.engine).
        self._bank_free = array("q", bytes(8 * num_banks))
        # Min-heaps of retire times for stores still draining, per bank.
        self._write_buffers: List[List[int]] = [[] for _ in range(num_banks)]
        self.conflict_cycles = 0
        self.write_stall_cycles = 0
        self.probe = probe
        self.cluster_id = cluster_id

    def access(self, bank: int, now: int) -> Tuple[int, int]:
        """Claim ``bank`` for one access at the earliest time >= ``now``.

        Returns ``(start, wait)`` where ``wait = start - now`` is the bank
        conflict delay the requesting processor observes.
        """
        free = self._bank_free[bank]
        start = free if free > now else now
        self._bank_free[bank] = start + self.bank_cycle_time
        wait = start - now
        self.conflict_cycles += wait
        probe = self.probe
        if probe is not NULL_PROBE:
            probe.bank_access(self.cluster_id, bank, now, start, wait)
        return start, wait

    def reserve_write_slot(self, bank: int, now: int, retire_time: int) -> int:
        """Place a store in ``bank``'s write buffer.

        The store occupies a buffer entry until ``retire_time`` (when its
        miss or upgrade completes; hits retire immediately).  Returns the
        stall the processor suffers: zero unless all
        ``write_buffer_depth`` entries are still draining at ``now``, in
        which case the processor waits for the oldest entry to retire.
        """
        buffer = self._write_buffers[bank]
        while buffer and buffer[0] <= now:
            heapq.heappop(buffer)
        stall = 0
        if len(buffer) >= self.write_buffer_depth:
            # Wait until the oldest outstanding store drains.
            oldest = heapq.heappop(buffer)
            stall = max(0, oldest - now)
            self.write_stall_cycles += stall
        heapq.heappush(buffer, max(retire_time, now + stall))
        probe = self.probe
        if probe is not NULL_PROBE:
            probe.write_buffer(self.cluster_id, bank, now, len(buffer),
                               stall)
        return stall

    def bank_free_time(self, bank: int) -> int:
        """Next time ``bank`` can start an access (for tests)."""
        return self._bank_free[bank]

    def pending_writes(self, bank: int, now: int) -> int:
        """Stores still draining from ``bank``'s buffer at ``now``."""
        return sum(1 for t in self._write_buffers[bank] if t > now)

    def buffered_writes(self, bank: int) -> int:
        """Entries currently held in ``bank``'s buffer, drained or not.

        ``reserve_write_slot`` evicts lazily, so this may count retired
        stores -- but it can never exceed ``write_buffer_depth``, which
        is the invariant the differential oracle checks.
        """
        return len(self._write_buffers[bank])
