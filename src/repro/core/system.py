"""The whole machine: clusters, snoopy bus, coherence, and accounting.

:class:`MultiprocessorSystem` is the memory-side half of the simulator.
The trace interleaver (:mod:`repro.trace.interleave`) owns process control
flow and synchronization; it calls into this class for every memory event
and for cycle accounting, and reads the final statistics out of it.

All methods take and return absolute simulated cycle counts, so the system
itself is clockless -- time advances only because callers pass later
timestamps.  (Accesses may arrive slightly out of global order when two
processors race; the bank and bus models use ``max(now, busy_until)`` so
the resulting schedules stay causally consistent.)
"""

from __future__ import annotations

from typing import List, Optional

from .bus import SnoopyBus
from .cluster import Cluster
from .coherence import AccessOutcome, CoherenceController
from .config import SystemConfig
from .directory import DirectoryController
from .stats import SystemStats
from ..instrument.probes import NULL_PROBE

__all__ = ["MultiprocessorSystem"]


class MultiprocessorSystem:
    """Clustered shared-cache multiprocessor memory system.

    ``instrumentation`` (an
    :class:`~repro.instrument.probes.InstrumentationProbe`, or anything
    duck-typed like one) is threaded into every component that models a
    contended resource; by default they all carry the no-op
    :data:`~repro.instrument.probes.NULL_PROBE` and pay one identity
    test per event.
    """

    def __init__(self, config: SystemConfig, instrumentation=None):
        self.config = config
        probe = instrumentation if instrumentation is not None \
            else NULL_PROBE
        self.probe = probe
        self.clusters: List[Cluster] = [
            Cluster(config, c, probe=probe) for c in range(config.clusters)
        ]
        self.bus = SnoopyBus(probe=probe, name="inter-cluster")
        sccs = [cluster.scc for cluster in self.clusters]
        if config.inter_cluster == "directory":
            # Point-to-point transport for data; the bus object remains
            # only for instruction-cache refills.
            self.coherence = DirectoryController(config, sccs)
        else:
            self.coherence = CoherenceController(config, sccs, self.bus,
                                                 probe=probe)
        self._procs = [
            proc for cluster in self.clusters for proc in cluster.processors
        ]
        # data_access is the hottest method in the simulator; resolve the
        # per-processor routing and the scalar config fields once.
        self._proc_cluster = [config.cluster_of(p)
                              for p in range(config.total_processors)]
        self._proc_scc = [self.clusters[c].scc for c in self._proc_cluster]
        self._line_shift = config.line_offset_bits
        self._stall_on_writes = config.stall_on_writes

    # ------------------------------------------------------------------
    # Memory events
    # ------------------------------------------------------------------

    def data_access(self, proc: int, addr: int, is_write: bool,
                    now: int) -> int:
        """Issue a load or store; returns when the processor may continue.

        The path is: claim the line's SCC bank (possibly waiting out a bank
        conflict), run the coherence protocol, then for stores reserve a
        write-buffer slot (stalling only if the buffer is full).  Loads
        stall for the full miss latency; stores retire in the background.
        """
        cluster_id = self._proc_cluster[proc]
        scc = self._proc_scc[proc]
        line = addr >> self._line_shift
        start, _wait = scc.claim_bank(line, now)
        outcome: AccessOutcome = self.coherence.access(
            cluster_id, line, is_write, start)
        complete = outcome.complete
        if is_write:
            if self._stall_on_writes:
                # Sequential consistency without buffering: the store
                # holds the processor until it is globally performed.
                complete = max(complete, outcome.retire)
            else:
                stall = scc.buffer_write(line, complete, outcome.retire)
                complete += stall
        self._procs[proc].account_reference(now, complete)
        return complete

    def ifetch(self, proc: int, addr: int, count: int, now: int) -> int:
        """Fetch and execute ``count`` sequential instructions.

        Costs one cycle per instruction; with ``model_icache`` enabled,
        each instruction-cache line miss adds ``icache_miss_latency``
        cycles and an inter-cluster bus transaction (refills share the bus
        with SCC traffic).
        """
        cluster_id = self.config.cluster_of(proc)
        port = self.config.port_of(proc)
        stall = 0
        if self.config.model_icache:
            icache = self.clusters[cluster_id].icaches[port]
            misses = icache.fetch(addr, count)
            for _ in range(misses):
                tx = self.bus.acquire(now + stall, self.config.bus_occupancy,
                                      self.config.icache_miss_latency)
                stall = tx.done - now
        self._procs[proc].account_ifetch(count, stall, now=now)
        return now + count + stall

    # ------------------------------------------------------------------
    # Non-memory accounting (called by the interleaver)
    # ------------------------------------------------------------------

    def account_compute(self, proc: int, cycles: int,
                        now: Optional[int] = None) -> None:
        """Record straight-line execution for ``proc`` (``now``, when
        the caller knows it, timestamps the instrumentation span)."""
        self._procs[proc].account_compute(cycles, now=now)

    def account_sync(self, proc: int, cycles: int,
                     start: Optional[int] = None) -> None:
        """Record synchronization stall for ``proc`` beginning at
        ``start`` (``None`` when the caller has no timestamp)."""
        self._procs[proc].account_sync_stall(cycles, start=start)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def stats(self, execution_time: int = 0) -> SystemStats:
        """Snapshot all counters into a :class:`SystemStats`."""
        stats = SystemStats(
            scc=[cluster.scc.stats for cluster in self.clusters],
            processors=[proc.stats for proc in self._procs],
            execution_time=execution_time,
        )
        stats.icache_misses = sum(
            icache.misses
            for cluster in self.clusters for icache in cluster.icaches)
        stats.icache_fetch_lines = sum(
            icache.fetch_lines
            for cluster in self.clusters for icache in cluster.icaches)
        return stats

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any coherence invariant violation."""
        for cluster in self.clusters:
            stale = cluster.scc.stale_inflight()
            if stale:
                raise AssertionError(
                    f"cluster {cluster.scc.cluster_id} tracks in-flight "
                    f"fills for non-resident lines {sorted(stale)} "
                    f"(fill-tracking leak)")
        if isinstance(self.coherence, DirectoryController):
            self.coherence.check_consistency()
            return
        bad_line = self.coherence.check_exclusivity()
        if bad_line is not None:
            raise AssertionError(
                f"line {bad_line:#x} is MODIFIED in one SCC but still "
                f"resident elsewhere")
