"""Cycle-level clustered shared-cache multiprocessor simulator.

The paper's primary evaluation vehicle: four clusters of one to eight
processors each sharing a banked, multi-ported Shared Cluster Cache, kept
coherent over a snoopy invalidation bus (Sections 2.1-2.2).
"""

from .bus import BusTransaction, SnoopyBus
from .cache import (INVALID, MODIFIED, SHARED, STATE_NAMES,
                    DirectMappedArray, SetAssociativeArray, make_array)
from .cluster import Cluster
from .coherence import AccessOutcome, CoherenceController
from .directory import DirectoryController, DirectoryEntry
from .config import KB, SystemConfig
from .icache import INSTRUCTION_BYTES, InstructionCache
from .interconnect import BankInterconnect
from .private import PrivateCache, PrivateClusterSystem
from .processor import ProcessorState
from .scc import SharedClusterCache
from .stats import ProcessorStats, SccStats, SystemStats
from .system import MultiprocessorSystem

__all__ = [
    "BusTransaction", "SnoopyBus",
    "INVALID", "MODIFIED", "SHARED", "STATE_NAMES", "DirectMappedArray",
    "SetAssociativeArray", "make_array",
    "PrivateCache", "PrivateClusterSystem",
    "Cluster", "AccessOutcome", "CoherenceController",
    "DirectoryController", "DirectoryEntry",
    "KB", "SystemConfig",
    "INSTRUCTION_BYTES", "InstructionCache", "BankInterconnect",
    "ProcessorState", "SharedClusterCache",
    "ProcessorStats", "SccStats", "SystemStats",
    "MultiprocessorSystem",
]
