"""Statistics gathered by the clustered shared-cache simulator.

The paper reports read miss rates (Table 4), invalidation counts
(Sections 3.1.2/3.1.3), and execution times (every figure).  These counters
are the single source of truth for all of them.  ``SccStats`` counts one
Shared Cluster Cache; ``ProcessorStats`` breaks a processor's time into the
categories the paper discusses (busy vs. waiting on memory vs. waiting on
synchronization); ``SystemStats`` aggregates both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["SccStats", "ProcessorStats", "SystemStats"]


@dataclass
class SccStats:
    """Event counts for one Shared Cluster Cache."""

    reads: int = 0
    read_misses: int = 0
    writes: int = 0
    write_misses: int = 0
    upgrades: int = 0
    """Write hits to SHARED lines that broadcast an invalidation."""

    invalidations_sent: int = 0
    """Remote copies this SCC's writes invalidated."""

    invalidations_received: int = 0
    """Lines in this SCC invalidated by remote writers."""

    interventions: int = 0
    """Remote MODIFIED lines this SCC's reads downgraded to SHARED."""

    writebacks: int = 0
    """Dirty victims written back to memory on replacement."""

    evictions: int = 0
    """All victims displaced on replacement (dirty or clean)."""

    coherence_read_misses: int = 0
    """Read misses to lines this SCC once held but lost to an
    invalidation -- the paper's 'invalidation misses'."""

    bank_conflict_cycles: int = 0
    """Cycles processors waited because a bank was busy."""

    bus_wait_cycles: int = 0
    """Cycles waited for the shared bus beyond the fixed fetch latency."""

    write_buffer_stall_cycles: int = 0
    """Cycles processors stalled on a full write buffer."""

    @property
    def accesses(self) -> int:
        """All data accesses this SCC serviced."""
        return self.reads + self.writes

    @property
    def read_miss_rate(self) -> float:
        """Read misses / reads -- the metric of Table 4 (0.0 if idle)."""
        return self.read_misses / self.reads if self.reads else 0.0

    @property
    def write_miss_rate(self) -> float:
        """Write misses / writes (0.0 if idle)."""
        return self.write_misses / self.writes if self.writes else 0.0

    @property
    def miss_rate(self) -> float:
        """Combined data miss rate (0.0 if idle)."""
        misses = self.read_misses + self.write_misses
        return misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "SccStats") -> "SccStats":
        """Return a new ``SccStats`` holding the sum of both operands."""
        merged = SccStats()
        for name in vars(self):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (for reports and trace files)."""
        return dict(vars(self))


@dataclass
class ProcessorStats:
    """Cycle breakdown for one processor."""

    busy_cycles: int = 0
    """Cycles executing instructions (Compute + the reference slots)."""

    memory_stall_cycles: int = 0
    """Cycles stalled on cache misses, bank conflicts and full buffers."""

    sync_stall_cycles: int = 0
    """Cycles blocked on locks, barriers and empty task queues."""

    icache_stall_cycles: int = 0
    """Cycles stalled on instruction cache refills."""

    references: int = 0
    """Data references issued."""

    instructions: int = 0
    """Instructions executed (Compute cycles + fetched instructions +
    one per data reference)."""

    @property
    def total_cycles(self) -> int:
        """All accounted cycles for this processor."""
        return (self.busy_cycles + self.memory_stall_cycles
                + self.sync_stall_cycles + self.icache_stall_cycles)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict."""
        return dict(vars(self))


@dataclass
class SystemStats:
    """Aggregated statistics for a whole simulation run."""

    scc: List[SccStats] = field(default_factory=list)
    processors: List[ProcessorStats] = field(default_factory=list)
    execution_time: int = 0
    """Simulated cycles until the last process finished."""

    icache_misses: int = 0
    icache_fetch_lines: int = 0

    @property
    def total_scc(self) -> SccStats:
        """Machine-wide SCC counters (sum over clusters)."""
        total = SccStats()
        for stats in self.scc:
            total = total.merge(stats)
        return total

    @property
    def total_invalidations(self) -> int:
        """Invalidations actually performed across the machine -- the
        quantity Sections 3.1.1-3.1.3 track against cluster size."""
        return self.total_scc.invalidations_received

    @property
    def read_miss_rate(self) -> float:
        """Machine-wide SCC read miss rate (Table 4's metric)."""
        return self.total_scc.read_miss_rate

    def as_dict(self) -> Dict[str, object]:
        """Nested plain-dict form for serialization in result caches."""
        return {
            "execution_time": self.execution_time,
            "icache_misses": self.icache_misses,
            "icache_fetch_lines": self.icache_fetch_lines,
            "scc": [stats.as_dict() for stats in self.scc],
            "processors": [stats.as_dict() for stats in self.processors],
        }
