"""A cluster: processors, their instruction caches, and one SCC.

Figure 1's building block.  The cluster owns no timing logic of its own --
it wires the per-cluster components together and gives the system and the
tests one place to reach them.
"""

from __future__ import annotations

from typing import List

from .config import SystemConfig
from .icache import InstructionCache
from .processor import ProcessorState
from .scc import SharedClusterCache
from ..instrument.probes import NULL_PROBE

__all__ = ["Cluster"]


class Cluster:
    """One cluster of the base architecture."""

    __slots__ = ("config", "cluster_id", "scc", "processors", "icaches")

    def __init__(self, config: SystemConfig, cluster_id: int,
                 probe=NULL_PROBE):
        if not 0 <= cluster_id < config.clusters:
            raise ValueError("cluster_id out of range")
        self.config = config
        self.cluster_id = cluster_id
        self.scc = SharedClusterCache(config, cluster_id, probe=probe)
        first = cluster_id * config.processors_per_cluster
        self.processors: List[ProcessorState] = [
            ProcessorState(first + i, cluster_id, probe=probe)
            for i in range(config.processors_per_cluster)
        ]
        self.icaches: List[InstructionCache] = [
            InstructionCache(config)
            for _ in range(config.processors_per_cluster)
        ]

    @property
    def processor_ids(self) -> range:
        """Machine-global processor ids living in this cluster."""
        first = self.cluster_id * self.config.processors_per_cluster
        return range(first, first + self.config.processors_per_cluster)
