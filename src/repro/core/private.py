"""The private-cache cluster organization (Section 2.1's alternative).

Before settling on the shared cluster cache, the paper weighs the other
way to build a cluster: "separate per processor caches which are kept
coherent over a high bandwidth intra-cluster bus".  Its advantages and
disadvantages are exactly what this module lets you measure against the
SCC:

* total cache bandwidth scales with the processors (no bank conflicts
  between cluster-mates);
* but actively shared data is *replicated* per processor, coherence
  misses and invalidation traffic appear *inside* the cluster, and the
  paper's prefetching effect disappears (a line a neighbour fetched is
  in the neighbour's cache, not yours -- though the intra-cluster bus
  supplies it far faster than memory);
* independent processes no longer conflict in a shared array.

:class:`PrivateClusterSystem` implements the hierarchical MSI snooping
this design needs -- an intra-cluster bus per cluster plus the global
inter-cluster bus -- behind the same interface as
:class:`repro.core.system.MultiprocessorSystem`, so any workload and the
whole experiment harness run unchanged on either organization (select
with ``SystemConfig(cluster_organization="private")``).  The per-cluster
SRAM budget is held equal: each processor gets ``scc_size /
processors_per_cluster``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .bus import SnoopyBus
from .cache import INVALID, MODIFIED, SHARED, make_array
from .config import SystemConfig
from .icache import InstructionCache
from .processor import ProcessorState
from .stats import SccStats, SystemStats
from ..instrument.probes import NULL_PROBE

__all__ = ["PrivateCache", "PrivateClusterSystem"]


class PrivateCache:
    """One processor's private data cache (single ported)."""

    __slots__ = ("array", "stats", "_lost_lines")

    def __init__(self, num_lines: int, associativity: int):
        self.array = make_array(num_lines, associativity)
        self.stats = SccStats()
        self._lost_lines: Set[int] = set()

    def note_lost(self, line: int) -> None:
        self._lost_lines.add(line)

    def consume_lost(self, line: int) -> bool:
        if line in self._lost_lines:
            self._lost_lines.remove(line)
            return True
        return False


class PrivateClusterSystem:
    """Clusters of private caches with two-level snooping coherence."""

    def __init__(self, config: SystemConfig, instrumentation=None):
        if config.cluster_organization != "private":
            raise ValueError(
                "config is not a private-cache organization")
        self.config = config
        probe = instrumentation if instrumentation is not None \
            else NULL_PROBE
        self.probe = probe
        lines = config.private_cache_size // config.line_size
        self.caches: List[PrivateCache] = [
            PrivateCache(lines, config.associativity)
            for _ in range(config.total_processors)]
        self.intra_buses: List[SnoopyBus] = [
            SnoopyBus(probe=probe, name=f"intra-cluster {c}")
            for c in range(config.clusters)]
        self.global_bus = SnoopyBus(probe=probe, name="inter-cluster")
        self._procs = [ProcessorState(p, config.cluster_of(p), probe=probe)
                       for p in range(config.total_processors)]
        self.icaches: List[InstructionCache] = [
            InstructionCache(config)
            for _ in range(config.total_processors)]
        self.intra_invalidations = 0
        """Copies invalidated *within* a cluster -- the coherence traffic
        the shared SCC eliminates by holding a single copy."""

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------

    def _cluster_mates(self, proc: int) -> range:
        first = (proc // self.config.processors_per_cluster
                 * self.config.processors_per_cluster)
        return range(first, first + self.config.processors_per_cluster)

    def _sibling_holders(self, proc: int, line: int) -> List[int]:
        return [mate for mate in self._cluster_mates(proc)
                if mate != proc
                and self.caches[mate].array.state(line) != INVALID]

    def _remote_holders(self, proc: int, line: int) -> List[int]:
        mates = set(self._cluster_mates(proc))
        return [other for other in range(self.config.total_processors)
                if other not in mates
                and self.caches[other].array.state(line) != INVALID]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def data_access(self, proc: int, addr: int, is_write: bool,
                    now: int) -> int:
        line = self.config.line_of(addr)
        complete = (self._write(proc, line, now) if is_write
                    else self._read(proc, line, now))
        self._procs[proc].account_reference(now, complete)
        return complete

    def _read(self, proc: int, line: int, now: int) -> int:
        cache = self.caches[proc]
        cache.stats.reads += 1
        if cache.array.state(line) != INVALID:
            cache.array.touch(line)
            if self.probe is not NULL_PROBE:
                self.probe.cache_access(self.config.cluster_of(proc), line,
                                        False, True, now, now + 1)
            return now + 1
        cache.stats.read_misses += 1
        if cache.consume_lost(line):
            cache.stats.coherence_read_misses += 1
        config = self.config
        cluster = config.cluster_of(proc)
        intra = self.intra_buses[cluster].acquire(
            now, config.intra_bus_occupancy, config.intra_transfer_latency)
        siblings = self._sibling_holders(proc, line)
        if siblings:
            # Cache-to-cache transfer inside the cluster; a MODIFIED
            # owner downgrades.
            for mate in siblings:
                if self.caches[mate].array.state(line) == MODIFIED:
                    self.caches[mate].array.set_state(line, SHARED)
                    cache.stats.interventions += 1
            done = intra.done
        else:
            tx = self.global_bus.acquire(intra.start,
                                         config.bus_occupancy,
                                         config.memory_latency)
            cache.stats.bus_wait_cycles += tx.wait
            for other in self._remote_holders(proc, line):
                if self.caches[other].array.state(line) == MODIFIED:
                    self.caches[other].array.set_state(line, SHARED)
                    cache.stats.interventions += 1
            done = tx.done
        self._install(proc, line, SHARED, now)
        if self.probe is not NULL_PROBE:
            self.probe.cache_access(cluster, line, False, False, now,
                                    done + 1)
        return done + 1

    def _write(self, proc: int, line: int, now: int) -> int:
        cache = self.caches[proc]
        cache.stats.writes += 1
        config = self.config
        cluster = config.cluster_of(proc)
        state = cache.array.state(line)
        if state == MODIFIED:
            cache.array.touch(line)
            if self.probe is not NULL_PROBE:
                self.probe.cache_access(cluster, line, True, True, now,
                                        now + 1)
            return now + 1
        if state == SHARED:
            # Upgrade: invalidate siblings over the intra-cluster bus
            # and, if any copy lives outside the cluster, broadcast on
            # the global bus too.  The write buffer hides it all.
            cache.array.touch(line)
            cache.stats.upgrades += 1
            self.intra_buses[cluster].acquire(
                now, config.intra_bus_occupancy,
                config.intra_bus_occupancy)
            killed = self._invalidate_siblings(proc, line)
            if self._remote_holders(proc, line):
                self.global_bus.acquire(now, config.upgrade_bus_occupancy,
                                        config.upgrade_bus_occupancy)
                killed += self._invalidate_remote(proc, line)
            cache.array.set_state(line, MODIFIED)
            if self.probe is not NULL_PROBE:
                self.probe.cache_access(cluster, line, True, True, now,
                                        now + 1)
                self.probe.invalidation(cluster, line, killed, now)
            return now + 1
        # Write miss: fetch exclusive from the nearest holder.
        cache.stats.write_misses += 1
        cache.consume_lost(line)
        intra = self.intra_buses[cluster].acquire(
            now, config.intra_bus_occupancy, config.intra_transfer_latency)
        had_sibling = bool(self._sibling_holders(proc, line))
        killed = self._invalidate_siblings(proc, line)
        if had_sibling and not self._remote_holders(proc, line):
            pass  # whole transaction stayed inside the cluster
        else:
            tx = self.global_bus.acquire(intra.start,
                                         config.bus_occupancy,
                                         config.memory_latency)
            cache.stats.bus_wait_cycles += tx.wait
            killed += self._invalidate_remote(proc, line)
        self._install(proc, line, MODIFIED, now)
        if self.probe is not NULL_PROBE:
            self.probe.cache_access(cluster, line, True, False, now,
                                    now + 1)
            self.probe.invalidation(cluster, line, killed, now)
        return now + 1

    def _invalidate_siblings(self, proc: int, line: int) -> int:
        killed = 0
        for mate in self._sibling_holders(proc, line):
            self.caches[mate].array.invalidate(line)
            self.caches[mate].note_lost(line)
            self.caches[mate].stats.invalidations_received += 1
            self.caches[proc].stats.invalidations_sent += 1
            self.intra_invalidations += 1
            killed += 1
        return killed

    def _invalidate_remote(self, proc: int, line: int) -> int:
        killed = 0
        for other in self._remote_holders(proc, line):
            self.caches[other].array.invalidate(line)
            self.caches[other].note_lost(line)
            self.caches[other].stats.invalidations_received += 1
            self.caches[proc].stats.invalidations_sent += 1
            killed += 1
        return killed

    def _install(self, proc: int, line: int, state: int,
                 now: int) -> None:
        cache = self.caches[proc]
        victim = cache.array.install(line, state)
        if victim is not None:
            _victim_line, victim_state = victim
            cache.stats.evictions += 1
            if victim_state == MODIFIED:
                # The write-back rides behind the fetch; nobody waits on
                # it but it consumes global bus occupancy.
                cache.stats.writebacks += 1
                self.global_bus.acquire(now, self.config.bus_occupancy, 0)

    # ------------------------------------------------------------------
    # Instruction fetch and accounting (same contract as the SCC system)
    # ------------------------------------------------------------------

    def ifetch(self, proc: int, addr: int, count: int, now: int) -> int:
        stall = 0
        if self.config.model_icache:
            misses = self.icaches[proc].fetch(addr, count)
            for _ in range(misses):
                tx = self.global_bus.acquire(
                    now + stall, self.config.bus_occupancy,
                    self.config.icache_miss_latency)
                stall = tx.done - now
        self._procs[proc].account_ifetch(count, stall, now=now)
        return now + count + stall

    def account_compute(self, proc: int, cycles: int,
                        now: Optional[int] = None) -> None:
        self._procs[proc].account_compute(cycles, now=now)

    def account_sync(self, proc: int, cycles: int,
                     start: Optional[int] = None) -> None:
        self._procs[proc].account_sync_stall(cycles, start=start)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def stats(self, execution_time: int = 0) -> SystemStats:
        """Per-*cache* stats in ``scc`` (one entry per processor)."""
        stats = SystemStats(
            scc=[cache.stats for cache in self.caches],
            processors=[proc.stats for proc in self._procs],
            execution_time=execution_time,
        )
        stats.icache_misses = sum(ic.misses for ic in self.icaches)
        stats.icache_fetch_lines = sum(ic.fetch_lines
                                       for ic in self.icaches)
        return stats

    def check_invariants(self) -> None:
        """MODIFIED exclusivity across *all* private caches."""
        holders: Dict[int, List[int]] = {}
        owners: Dict[int, int] = {}
        for index, cache in enumerate(self.caches):
            for line, state in cache.array.resident_lines():
                holders.setdefault(line, []).append(index)
                if state == MODIFIED:
                    owners[line] = owners.get(line, 0) + 1
        for line, count in owners.items():
            if count > 1 or len(holders[line]) > 1:
                raise AssertionError(
                    f"line {line:#x} violates MODIFIED exclusivity "
                    f"across private caches")
