"""Directory-based inter-cluster coherence (the DASH alternative).

The paper's machine snoops a single bus between clusters, and motivates
clustering precisely because "bus performance has not scaled at the same
rate as processor performance" (Section 2.1).  Its contemporary contrast
was Stanford DASH (the paper's reference [13]), which replaced the bus
with a full-map directory and point-to-point messages so coherence
bandwidth scales with node count.

:class:`DirectoryController` is that alternative for this simulator: the
Shared Cluster Caches are unchanged, but inter-cluster transactions go
through interleaved directory banks instead of a broadcast bus.

* Each line has a home directory bank (interleaved by line number); a
  bank serves one transaction per ``directory_occupancy`` cycles, so
  hot-spotting is modelled, but independent lines proceed in parallel --
  there is no machine-wide serialization point.
* A clean miss is a two-hop request/response (``memory_latency``); a
  miss to a line dirty in another cluster is a three-hop transaction
  (``remote_dirty_latency``); writes to shared lines pay an
  invalidation round (``invalidation_latency``) before ownership.
* The directory's sharer sets are kept exact: SCC evictions notify the
  home (replacement hints), and the test suite checks
  directory-vs-cache consistency as an invariant.

Select with ``SystemConfig(inter_cluster="directory")``; everything else
(workloads, experiments, statistics) runs unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from .cache import INVALID, MODIFIED, SHARED
from .coherence import AccessOutcome
from .config import SystemConfig
from .scc import SharedClusterCache

__all__ = ["DirectoryEntry", "DirectoryController"]


class DirectoryEntry:
    """Full-map state for one line: its sharers and (dirty) owner."""

    __slots__ = ("sharers", "owner")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None

    def __repr__(self) -> str:
        return f"DirectoryEntry(sharers={self.sharers}, owner={self.owner})"


class DirectoryController:
    """Protocol engine: SCCs + interleaved full-map directory banks."""

    __slots__ = ("config", "sccs", "entries", "_bank_free", "messages",
                 "bank_wait_cycles")

    def __init__(self, config: SystemConfig,
                 sccs: Sequence[SharedClusterCache]):
        if len(sccs) != config.clusters:
            raise ValueError("one SCC per cluster required")
        self.config = config
        self.sccs = list(sccs)
        self.entries: Dict[int, DirectoryEntry] = {}
        self._bank_free = [0] * config.directory_banks
        self.messages = 0
        """Point-to-point coherence messages sent (requests, responses,
        invalidations, acknowledgements)."""
        self.bank_wait_cycles = 0

    # ------------------------------------------------------------------
    # Directory plumbing
    # ------------------------------------------------------------------

    def _entry(self, line: int) -> DirectoryEntry:
        entry = self.entries.get(line)
        if entry is None:
            entry = DirectoryEntry()
            self.entries[line] = entry
        return entry

    def _claim_bank(self, line: int, now: int) -> int:
        """Serialize on the line's home directory bank; returns the
        service start time."""
        bank = line % self.config.directory_banks
        start = max(now, self._bank_free[bank])
        self._bank_free[bank] = start + self.config.directory_occupancy
        self.bank_wait_cycles += start - now
        return start

    # ------------------------------------------------------------------
    # Access entry point (same contract as CoherenceController)
    # ------------------------------------------------------------------

    def access(self, cluster: int, line: int, is_write: bool,
               start: int) -> AccessOutcome:
        scc = self.sccs[cluster]
        if is_write:
            return self._write(scc, cluster, line, start)
        return self._read(scc, cluster, line, start)

    def _read(self, scc: SharedClusterCache, cluster: int, line: int,
              start: int) -> AccessOutcome:
        scc.stats.reads += 1
        if scc.array.state(line) != INVALID:
            scc.array.touch(line)
            ready = scc.fill_ready_time(line, start)
            done = (ready if ready is not None else start) + 1
            return AccessOutcome(complete=done, retire=done, hit=True)
        scc.stats.read_misses += 1
        if scc.consume_lost(line):
            scc.stats.coherence_read_misses += 1
        service = self._claim_bank(line, start)
        wait = service - start
        entry = self._entry(line)
        self.messages += 2      # request + data response
        if entry.owner is not None and entry.owner != cluster:
            # Three-hop: home forwards to the dirty owner, which supplies
            # the data and downgrades.
            latency = self.config.remote_dirty_latency
            self.messages += 1
            owner_scc = self.sccs[entry.owner]
            if owner_scc.array.state(line) == MODIFIED:
                owner_scc.array.set_state(line, SHARED)
                scc.stats.interventions += 1
            entry.sharers.add(entry.owner)
            entry.owner = None
        else:
            latency = self.config.memory_latency
        entry.sharers.add(cluster)
        done = service + latency
        self._install(scc, line, SHARED, ready=done)
        scc.stats.bus_wait_cycles += wait
        return AccessOutcome(complete=done + 1, retire=done + 1,
                             hit=False, bus_wait=wait)

    def _write(self, scc: SharedClusterCache, cluster: int, line: int,
               start: int) -> AccessOutcome:
        scc.stats.writes += 1
        state = scc.array.state(line)
        if state == MODIFIED:
            scc.array.touch(line)
            ready = scc.fill_ready_time(line, start)
            done = (ready if ready is not None else start) + 1
            return AccessOutcome(complete=done, retire=done, hit=True)

        service = self._claim_bank(line, start)
        wait = service - start
        entry = self._entry(line)

        if state == SHARED:
            # Upgrade: the home invalidates the other sharers; the store
            # drains from the write buffer so the processor rolls on.
            scc.array.touch(line)
            scc.stats.upgrades += 1
            killed = self._invalidate_sharers(entry, line, cluster)
            retire = service + (self.config.invalidation_latency
                                if killed else
                                self.config.directory_occupancy)
            entry.sharers = {cluster}
            entry.owner = cluster
            scc.array.set_state(line, MODIFIED)
            self.messages += 1 + 2 * killed   # upgrade + inval/ack pairs
            scc.stats.bus_wait_cycles += wait
            return AccessOutcome(complete=start + 1, retire=retire,
                                 hit=True, bus_wait=wait,
                                 invalidations=killed)

        # Write miss: fetch with ownership.
        scc.stats.write_misses += 1
        scc.consume_lost(line)
        latency = self.config.memory_latency
        self.messages += 2
        if entry.owner is not None and entry.owner != cluster:
            latency = self.config.remote_dirty_latency
            self.messages += 1
            owner_scc = self.sccs[entry.owner]
            if owner_scc.array.state(line) == MODIFIED:
                owner_scc.array.invalidate(line)
                owner_scc.note_lost(line)
                owner_scc.drop_inflight(line)
                owner_scc.stats.invalidations_received += 1
                scc.stats.invalidations_sent += 1
            entry.owner = None
            entry.sharers.discard(cluster)
            killed = 1
        else:
            killed = self._invalidate_sharers(entry, line, cluster)
            if killed:
                latency = max(latency, self.config.invalidation_latency)
            self.messages += 2 * killed
        entry.sharers = {cluster}
        entry.owner = cluster
        done = service + latency
        self._install(scc, line, MODIFIED, ready=done)
        scc.stats.bus_wait_cycles += wait
        return AccessOutcome(complete=start + 1, retire=done, hit=False,
                             bus_wait=wait, invalidations=killed)

    def _invalidate_sharers(self, entry: DirectoryEntry, line: int,
                            writer: int) -> int:
        """Invalidate every sharer except the writer; returns the count
        of copies actually invalidated."""
        killed = 0
        writer_scc = self.sccs[writer]
        for sharer in list(entry.sharers):
            if sharer == writer:
                continue
            other = self.sccs[sharer]
            # Unconditional: stale fill tracking must not outlive the
            # copy (see CoherenceController._invalidate_remote).
            other.drop_inflight(line)
            if other.array.invalidate(line):
                other.note_lost(line)
                other.stats.invalidations_received += 1
                writer_scc.stats.invalidations_sent += 1
                killed += 1
            entry.sharers.discard(sharer)
        return killed

    # ------------------------------------------------------------------
    # Fills, replacement, invariants
    # ------------------------------------------------------------------

    def _install(self, scc: SharedClusterCache, line: int, state: int,
                 ready: int) -> None:
        victim = scc.array.install(line, state)
        scc.note_fill(line, ready)
        if victim is not None:
            victim_line, victim_state = victim
            scc.drop_inflight(victim_line)
            scc.stats.evictions += 1
            # Replacement hint: keep the directory's map exact.
            entry = self.entries.get(victim_line)
            if entry is not None:
                entry.sharers.discard(scc.cluster_id)
                if entry.owner == scc.cluster_id:
                    entry.owner = None
            if victim_state == MODIFIED:
                scc.stats.writebacks += 1
                self.messages += 1

    def check_consistency(self) -> None:
        """Directory state must exactly mirror the caches."""
        for line, entry in self.entries.items():
            for cluster, scc in enumerate(self.sccs):
                cached = scc.array.state(line)
                if cached == MODIFIED:
                    if entry.owner != cluster:
                        raise AssertionError(
                            f"line {line:#x} MODIFIED in cluster "
                            f"{cluster} but directory owner is "
                            f"{entry.owner}")
                elif cached == SHARED:
                    if cluster not in entry.sharers:
                        raise AssertionError(
                            f"line {line:#x} SHARED in cluster {cluster} "
                            f"but absent from the directory's sharers")
                else:
                    if entry.owner == cluster:
                        raise AssertionError(
                            f"directory says cluster {cluster} owns "
                            f"line {line:#x} but it is not cached")
