"""Snoopy write-invalidate coherence across the Shared Cluster Caches.

Section 2.2.2: "The SCCs are kept coherent with each other using an
invalidation-based scheme on a snoopy bus.  In this scheme a write to a
line in a particular SCC causes that line to be invalidated, if present, in
each of the other SCCs."  The fixed latency to fetch a line from main
memory *or from another SCC* is ``memory_latency`` (100) cycles.

The protocol is MSI over whole SCCs (processors inside a cluster share the
single copy, which is precisely the paper's argument for clustering); the
``protocol="mesi"`` configuration adds the Exclusive state, so a line no
other SCC holds installs clean-exclusive and later upgrades silently:

* **read miss** -- bus transaction; a remote MODIFIED copy is downgraded to
  SHARED (an intervention); the line installs SHARED.
* **write miss** -- bus transaction; every remote copy is invalidated; the
  line installs MODIFIED.
* **write hit on SHARED** -- an upgrade broadcast invalidates remote copies
  and moves the local copy to MODIFIED; no data moves, so it holds the bus
  only for ``upgrade_bus_occupancy`` cycles and the processor does not
  stall (the store sits in the write buffer).
* **write hit on MODIFIED / read hit** -- no bus traffic.

Dirty victims are written back to memory with a bus transaction whose
occupancy contends with other traffic but which no processor waits on.

The controller also enforces and exposes the machine-wide invariant the
test suite property-checks: a line MODIFIED in one SCC is INVALID in all
others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .bus import SnoopyBus
from .cache import EXCLUSIVE, INVALID, MODIFIED, SHARED
from .config import SystemConfig
from .scc import SharedClusterCache
from ..instrument.probes import NULL_PROBE

__all__ = ["AccessOutcome", "CoherenceController"]


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one data access as seen by the issuing processor.

    ``complete`` is when the processor may proceed; ``retire`` is when the
    access truly finished (for stores this can be later than ``complete``
    because the write buffer hides the miss).  ``hit`` is the tag-check
    outcome used for miss-rate statistics.
    """

    complete: int
    retire: int
    hit: bool
    bus_wait: int = 0
    invalidations: int = 0


class CoherenceController:
    """Protocol engine spanning all SCCs and the inter-cluster bus."""

    __slots__ = ("config", "sccs", "bus", "probe")

    def __init__(self, config: SystemConfig,
                 sccs: Sequence[SharedClusterCache], bus: SnoopyBus,
                 probe=NULL_PROBE):
        if len(sccs) != config.clusters:
            raise ValueError("one SCC per cluster required")
        self.config = config
        self.sccs = list(sccs)
        self.bus = bus
        self.probe = probe

    # ------------------------------------------------------------------
    # Data access entry point (bank already claimed by the caller)
    # ------------------------------------------------------------------

    def access(self, cluster: int, line: int, is_write: bool,
               start: int) -> AccessOutcome:
        """Perform the tag check and any protocol action for one access.

        ``start`` is the cycle the access reaches its bank (bank conflicts
        already resolved by the caller).  Statistics are recorded on the
        owning SCC; the caller turns the outcome into processor stall
        cycles and write-buffer occupancy.
        """
        scc = self.sccs[cluster]
        if is_write:
            return self.write_line(scc, line, start)
        return self.read_line(scc, line, start)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_line(self, scc: SharedClusterCache, line: int,
                  start: int) -> AccessOutcome:
        """Protocol action for one read reaching ``scc`` at ``start``.

        Public (rather than ``_read``) because the interleaver's packed
        fast path calls it directly on the miss branch after performing
        the tag check inline.
        """
        scc.stats.reads += 1
        if scc.array.state(line) != INVALID:
            # Hit -- but a fill may still be in flight (another processor
            # in the cluster missed on this line moments ago); merge with
            # it rather than bypassing the memory system.
            scc.array.touch(line)
            ready = scc.fill_ready_time(line, start)
            done = (ready if ready is not None else start) + 1
            if self.probe is not NULL_PROBE:
                self.probe.cache_access(scc.cluster_id, line, False, True,
                                        start, done)
            return AccessOutcome(complete=done, retire=done, hit=True)

        scc.stats.read_misses += 1
        if scc.consume_lost(line):
            scc.stats.coherence_read_misses += 1
        tx = self.bus.acquire(start, self.config.bus_occupancy,
                              self.config.memory_latency)
        scc.stats.bus_wait_cycles += tx.wait
        shared_elsewhere = self._snoop_downgrade(scc, line)
        state = SHARED
        if self.config.protocol == "mesi" and not shared_elsewhere:
            # MESI: nobody else has it, so take it clean-exclusive and
            # earn a silent upgrade if we write it later.
            state = EXCLUSIVE
        self._install(scc, line, state, start=start, ready=tx.done)
        if self.probe is not NULL_PROBE:
            self.probe.cache_access(scc.cluster_id, line, False, False,
                                    start, tx.done + 1)
        return AccessOutcome(complete=tx.done + 1, retire=tx.done + 1,
                             hit=False, bus_wait=tx.wait)

    def read_miss(self, scc: SharedClusterCache, line: int,
                  start: int) -> int:
        """Known-miss read entry for the interleaver's packed fast path.

        The caller has already performed the tag check inline and the
        fast-path gate guarantees no probe is attached, so this skips the
        hit branch, the probe hooks, and the :class:`AccessOutcome` /
        :class:`~repro.core.bus.BusTransaction` allocations of
        :meth:`read_line` -- the protocol actions and statistics are
        identical.  Returns the completion cycle.
        """
        stats = scc.stats
        stats.reads += 1
        stats.read_misses += 1
        if scc.consume_lost(line):
            stats.coherence_read_misses += 1
        config = self.config
        occupancy = config.bus_occupancy
        bus = self.bus
        grant = bus._busy_until
        if grant < start:
            grant = start
        bus._busy_until = grant + occupancy
        bus.transactions += 1
        bus.busy_cycles += occupancy
        if bus.probe is not NULL_PROBE:
            bus.probe.bus_acquire(bus.name, start, grant, occupancy)
        stats.bus_wait_cycles += grant - start
        done = grant + config.memory_latency
        state = SHARED
        if not self._snoop_downgrade(scc, line) \
                and config.protocol == "mesi":
            state = EXCLUSIVE
        self._install(scc, line, state, start=start, ready=done)
        return done + 1

    def _snoop_downgrade(self, requester: SharedClusterCache,
                         line: int) -> bool:
        """A read miss downgrades remote MODIFIED/EXCLUSIVE copies to
        SHARED; returns whether any remote SCC held the line."""
        held = False
        for other in self.sccs:
            if other is requester:
                continue
            state = other.array.state(line)
            if state == INVALID:
                continue
            held = True
            if state == MODIFIED:
                other.array.set_state(line, SHARED)
                requester.stats.interventions += 1
            elif state == EXCLUSIVE:
                other.array.set_state(line, SHARED)
        return held

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write_line(self, scc: SharedClusterCache, line: int,
                   start: int) -> AccessOutcome:
        """Protocol action for one write reaching ``scc`` at ``start``
        (public for the same reason as :meth:`read_line`)."""
        scc.stats.writes += 1
        state = scc.array.state(line)
        if state == MODIFIED or state == EXCLUSIVE:
            # MODIFIED writes are silent; EXCLUSIVE ones transition to
            # MODIFIED without any bus traffic (the MESI silent upgrade).
            if state == EXCLUSIVE:
                scc.array.set_state(line, MODIFIED)
            scc.array.touch(line)
            ready = scc.fill_ready_time(line, start)
            done = (ready if ready is not None else start) + 1
            if self.probe is not NULL_PROBE:
                self.probe.cache_access(scc.cluster_id, line, True, True,
                                        start, done)
            return AccessOutcome(complete=done, retire=done, hit=True)

        if state == SHARED:
            # Upgrade: broadcast an invalidation; the store drains from the
            # write buffer, so the processor continues after one cycle.
            scc.array.touch(line)
            scc.stats.upgrades += 1
            tx = self.bus.acquire(start, self.config.upgrade_bus_occupancy,
                                  self.config.upgrade_bus_occupancy)
            killed = self._invalidate_remote(scc, line)
            scc.array.set_state(line, MODIFIED)
            if self.probe is not NULL_PROBE:
                self.probe.cache_access(scc.cluster_id, line, True, True,
                                        start, start + 1)
                self.probe.invalidation(scc.cluster_id, line, killed,
                                        tx.start)
            return AccessOutcome(complete=start + 1, retire=tx.done,
                                 hit=True, bus_wait=tx.wait,
                                 invalidations=killed)

        # Write miss: fetch the line with ownership.  The write buffer
        # hides the fetch from the processor.
        scc.stats.write_misses += 1
        scc.consume_lost(line)
        tx = self.bus.acquire(start, self.config.bus_occupancy,
                              self.config.memory_latency)
        scc.stats.bus_wait_cycles += tx.wait
        killed = self._invalidate_remote(scc, line)
        self._install(scc, line, MODIFIED, start=start, ready=tx.done)
        if self.probe is not NULL_PROBE:
            self.probe.cache_access(scc.cluster_id, line, True, False,
                                    start, tx.done)
            self.probe.invalidation(scc.cluster_id, line, killed, tx.start)
        return AccessOutcome(complete=start + 1, retire=tx.done, hit=False,
                             bus_wait=tx.wait, invalidations=killed)

    def _invalidate_remote(self, writer: SharedClusterCache,
                           line: int) -> int:
        """Invalidate ``line`` in every SCC but the writer's.

        Returns the number of copies actually invalidated -- the
        "invalidations actually performed" that Sections 3.1.1-3.1.3 track.
        """
        killed = 0
        for other in self.sccs:
            if other is writer:
                continue
            # Drop any fill tracking unconditionally: a fill whose line
            # is snatched away mid-flight leaves no resident copy for
            # ``invalidate`` to find, but its stale ``fill_ready_time``
            # entry could satisfy a later miss to a different tag that
            # maps to the same index.
            other.drop_inflight(line)
            if other.array.invalidate(line):
                other.note_lost(line)
                other.stats.invalidations_received += 1
                killed += 1
        writer.stats.invalidations_sent += killed
        return killed

    # ------------------------------------------------------------------
    # Fills and replacement
    # ------------------------------------------------------------------

    def _install(self, scc: SharedClusterCache, line: int, state: int,
                 start: int, ready: int) -> None:
        victim = scc.array.install(line, state)
        scc.note_fill(line, ready)
        if victim is not None:
            victim_line, victim_state = victim
            scc.drop_inflight(victim_line)
            scc.stats.evictions += 1
            if victim_state == MODIFIED:
                # The write-back rides right behind the fetch that evicted
                # it; it occupies the bus but nobody waits on it.  (It must
                # be issued at the *request* time, not the fill-completion
                # time: the bus arbiter serves requests in arrival order,
                # and a future-dated acquisition would stall every later
                # requester behind a phantom reservation.)
                scc.stats.writebacks += 1
                self.bus.acquire(start, self.config.bus_occupancy, 0)

    # ------------------------------------------------------------------
    # Invariants (used by tests and debug assertions)
    # ------------------------------------------------------------------

    def check_exclusivity(self) -> Optional[int]:
        """Return a line violating MODIFIED-exclusivity, or ``None``.

        The invariant: a line MODIFIED in some SCC must be INVALID in every
        other SCC (SHARED copies may coexist freely).
        """
        owners: dict = {}
        holders: dict = {}
        for index, scc in enumerate(self.sccs):
            for line, state in scc.array.resident_lines():
                holders.setdefault(line, []).append((index, state))
                if state in (MODIFIED, EXCLUSIVE):
                    owners.setdefault(line, []).append(index)
        for line, owner_list in owners.items():
            if len(owner_list) > 1 or len(holders[line]) > 1:
                return line
        return None
