"""Per-processor timing accounting.

The processors are in-order five-stage pipelines (Section 4.1, Figure 7)
with a base CPI of one; every instruction costs one issue cycle and memory
stalls add on top.  The Section 3 design-space sweeps deliberately exclude
the extra pipeline load latency of the larger clusters -- that correction
is applied afterwards from Table 5 (see :mod:`repro.cost.latency`), exactly
as the paper does in Section 5.

:class:`ProcessorState` turns event completion times into the busy /
memory-stall / sync-stall breakdown reported in
:class:`repro.core.stats.ProcessorStats`.
"""

from __future__ import annotations

from typing import Optional

from .stats import ProcessorStats
from ..instrument.probes import NULL_PROBE

__all__ = ["ProcessorState"]


class ProcessorState:
    """Cycle bookkeeping for one processor."""

    __slots__ = ("proc_id", "cluster_id", "stats", "finish_time", "probe")

    def __init__(self, proc_id: int, cluster_id: int, probe=NULL_PROBE):
        self.proc_id = proc_id
        self.cluster_id = cluster_id
        self.stats = ProcessorStats()
        self.finish_time = 0
        self.probe = probe

    def account_compute(self, cycles: int,
                        now: Optional[int] = None) -> None:
        """``cycles`` of straight-line execution (one instruction each).

        ``now`` (when the caller knows it) timestamps the span for the
        instrumentation timeline; accounting itself is time-free.
        """
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        self.stats.busy_cycles += cycles
        self.stats.instructions += cycles
        if self.probe is not NULL_PROBE and now is not None:
            self.probe.proc_busy(self.proc_id, now, cycles)

    def account_reference(self, issued: int, complete: int) -> None:
        """A data reference issued at ``issued`` finishing at ``complete``.

        One cycle is the instruction's own issue slot; anything beyond is
        memory stall (bank conflicts, bus waits, miss latency, write-buffer
        pressure).
        """
        total = complete - issued
        if total < 1:
            raise ValueError("a reference takes at least its issue cycle")
        self.stats.references += 1
        self.stats.instructions += 1
        self.stats.busy_cycles += 1
        self.stats.memory_stall_cycles += total - 1
        self.finish_time = complete
        probe = self.probe
        if probe is not NULL_PROBE:
            probe.proc_busy(self.proc_id, issued, 1)
            if total > 1:
                probe.proc_stall(self.proc_id, "memory", issued + 1,
                                 complete)

    def account_ifetch(self, count: int, stall: int,
                       now: Optional[int] = None) -> None:
        """``count`` instructions fetched with ``stall`` refill cycles."""
        self.stats.instructions += count
        self.stats.busy_cycles += count
        self.stats.icache_stall_cycles += stall
        if self.probe is not NULL_PROBE and now is not None:
            self.probe.proc_busy(self.proc_id, now, count)
            if stall:
                self.probe.proc_stall(self.proc_id, "icache", now + count,
                                      now + count + stall)

    def account_sync_stall(self, cycles: int,
                           start: Optional[int] = None) -> None:
        """Cycles blocked on a lock, barrier, or empty task queue.

        ``start`` (when known) timestamps the stall span for the
        instrumentation timeline.
        """
        if cycles < 0:
            raise ValueError("sync stall must be non-negative")
        self.stats.sync_stall_cycles += cycles
        if self.probe is not NULL_PROBE and start is not None:
            self.probe.proc_stall(self.proc_id, "sync", start,
                                  start + cycles)
