"""Per-processor instruction caches.

Each processor in a cluster has its own instruction cache (Section 2.1);
the chip floorplans of Section 4 provision 16 KB per processor.  Workloads
fetch instructions in basic-block-sized runs (:class:`repro.trace.events.Ifetch`),
and the cache walks the lines the run covers.

Instructions are ``INSTRUCTION_BYTES`` (4) bytes each, the natural size for
the 64-bit RISC processor (DEC Alpha 21064) the paper models.
"""

from __future__ import annotations

from typing import Tuple

from .cache import DirectMappedArray, SHARED
from .config import SystemConfig

__all__ = ["InstructionCache", "INSTRUCTION_BYTES"]

INSTRUCTION_BYTES = 4


class InstructionCache:
    """Direct-mapped instruction cache for one processor."""

    __slots__ = ("config", "array", "misses", "fetch_lines")

    def __init__(self, config: SystemConfig):
        self.config = config
        self.array = DirectMappedArray(
            config.icache_size // config.icache_line_size)
        self.misses = 0
        self.fetch_lines = 0

    def fetch(self, addr: int, count: int) -> int:
        """Fetch ``count`` sequential instructions starting at ``addr``.

        Returns the number of line misses incurred; the caller converts
        misses into stall cycles and bus traffic.  Tag state is updated
        (missing lines are installed) as a side effect.
        """
        if count < 1:
            raise ValueError("must fetch at least one instruction")
        line_size = self.config.icache_line_size
        first_line = addr // line_size
        last_line = (addr + count * INSTRUCTION_BYTES - 1) // line_size
        misses = 0
        for line in range(first_line, last_line + 1):
            self.fetch_lines += 1
            if not self.array.contains(line):
                self.array.install(line, SHARED)
                misses += 1
        self.misses += misses
        return misses
