"""System configuration for the clustered shared-cache multiprocessor.

The paper's base architecture (Section 2.1, Figure 1) is a four-cluster
machine.  Each cluster holds one to eight processors, one Shared Cluster
Cache (SCC) for data, and a private instruction cache per processor.  The
SCC is direct-mapped on 16-byte lines, interleaved across banks (four banks
per processor), and refilled over a snoopy invalidation bus with a fixed
100-cycle line-fetch latency.

:class:`SystemConfig` captures all of those knobs as a frozen dataclass with
eager validation, plus the named presets used throughout the evaluation
(``paper_parallel`` for Sections 3.1/5 and ``paper_multiprogramming`` for
Section 3.2, which simulates a single cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["SystemConfig", "KB"]

KB = 1024
"""Bytes per kilobyte, for readable cache-size literals."""

_PAPER_SCC_SIZES_KB: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one point in the processor-cache design space.

    Parameters mirror Section 2 of the paper; defaults are the paper's base
    values.  Instances are immutable -- derive variants with
    :meth:`with_updates`.
    """

    clusters: int = 4
    """Number of clusters on the snoopy inter-cluster bus."""

    processors_per_cluster: int = 1
    """Processors sharing each cluster's SCC (paper sweeps 1, 2, 4, 8)."""

    scc_size: int = 64 * KB
    """Total SCC data capacity in bytes (paper sweeps 4 KB .. 512 KB)."""

    associativity: int = 1
    """SCC (or private-cache) set associativity.  The paper's designs
    are direct-mapped for cycle-time reasons (Section 4.2); higher
    values exist for the associativity ablation, which the cost model
    charges extra FO4 delays for."""

    inter_cluster: str = "snoopy-bus"
    """Inter-cluster coherence transport: ``"snoopy-bus"`` (the paper's
    broadcast bus) or ``"directory"`` (a DASH-style full-map directory
    with point-to-point messages -- the scalability alternative the
    paper cites as reference [13])."""

    directory_banks: int = 8
    """Directory transport only: interleaved home banks."""

    directory_occupancy: int = 4
    """Directory transport only: cycles a home bank is busy per
    transaction."""

    remote_dirty_latency: int = 135
    """Directory transport only: three-hop latency when the line is
    dirty in another cluster (request -> home -> owner -> requester)."""

    invalidation_latency: int = 120
    """Directory transport only: latency of a write needing an
    invalidation round before ownership is granted."""

    protocol: str = "msi"
    """Inter-cluster coherence protocol: ``"msi"`` (the paper's plain
    write-invalidate scheme) or ``"mesi"`` (adds an Exclusive state so
    unshared lines upgrade silently -- a protocol ablation)."""

    cluster_organization: str = "shared-scc"
    """``"shared-scc"`` (the paper's design: one multi-ported shared
    cluster cache) or ``"private"`` (Section 2.1's alternative: a
    private cache per processor kept coherent over an intra-cluster
    snooping bus)."""

    intra_bus_occupancy: int = 2
    """Private organization only: cycles the intra-cluster bus is held
    per transaction."""

    intra_transfer_latency: int = 14
    """Private organization only: cycles for a cache-to-cache transfer
    between cluster-mates (far cheaper than the 100-cycle global
    fetch -- the clustering premise)."""

    line_size: int = 16
    """Cache line size in bytes; the paper picks 16 to limit false sharing."""

    banks_per_processor: int = 4
    """SCC banks provisioned per processor in the cluster (Section 2.2.2)."""

    memory_latency: int = 100
    """Fixed cycles to fetch a line from memory or a remote SCC (Sec 2.2.2)."""

    bus_occupancy: int = 4
    """Cycles the shared bus is held per line transfer; the remaining
    ``memory_latency - bus_occupancy`` cycles overlap with other traffic.
    Contention appears as queueing on this occupancy.  The default matches
    the Challenge-class bus the paper cites for its 100-cycle latency
    (Section 2.2.2): ~1.2 GB/s moving 16-byte lines is about four processor
    cycles of bus occupancy per transfer."""

    upgrade_bus_occupancy: int = 2
    """Bus cycles consumed by an invalidation (upgrade) broadcast that moves
    no data."""

    icache_size: int = 16 * KB
    """Per-processor instruction cache capacity in bytes (Section 4.2)."""

    icache_line_size: int = 32
    """Instruction cache line size in bytes."""

    icache_miss_latency: int = 100
    """Cycles to refill an instruction cache line."""

    write_buffer_depth: int = 4
    """Entries in each SCC bank's write buffer; stores retire without
    stalling the processor until the buffer is full."""

    stall_on_writes: bool = False
    """When ``True``, stores stall the processor until they complete
    (strict sequential consistency with no write buffering) -- the
    ablation that prices the write buffers Section 4.3 adds to every
    SCC bank."""

    bank_cycle_time: int = 1
    """Cycles a bank is busy per access (banks are pipelined SRAM)."""

    lock_overhead: int = 8
    """Cycles charged for an uncontended lock acquire/release (ANL macros)."""

    barrier_overhead: int = 16
    """Cycles charged to every process released from a barrier."""

    model_icache: bool = False
    """When ``False`` instruction fetches hit unconditionally; the parallel
    kernels fit comfortably in 16 KB so Section 3.1 runs disable modelling
    for speed.  The multiprogramming experiments enable it."""

    def __post_init__(self) -> None:
        _require(self.clusters >= 1, "clusters must be >= 1")
        _require(self.processors_per_cluster >= 1,
                 "processors_per_cluster must be >= 1")
        _require(_is_power_of_two(self.line_size),
                 "line_size must be a power of two")
        _require(_is_power_of_two(self.scc_size),
                 "scc_size must be a power of two")
        _require(self.scc_size % self.line_size == 0,
                 "scc_size must be a whole number of lines")
        _require(self.banks_per_processor >= 1,
                 "banks_per_processor must be >= 1")
        _require(self.associativity >= 1
                 and self.scc_lines % self.associativity == 0,
                 "associativity must divide the SCC line count")
        _require(self.protocol in ("msi", "mesi"),
                 "protocol must be 'msi' or 'mesi'")
        _require(self.inter_cluster in ("snoopy-bus", "directory"),
                 "inter_cluster must be 'snoopy-bus' or 'directory'")
        _require(self.directory_banks >= 1,
                 "directory_banks must be >= 1")
        _require(self.directory_occupancy >= 1,
                 "directory_occupancy must be >= 1")
        _require(self.remote_dirty_latency >= self.memory_latency,
                 "remote_dirty_latency must be >= memory_latency")
        _require(self.invalidation_latency >= 1,
                 "invalidation_latency must be >= 1")
        _require(self.cluster_organization in ("shared-scc", "private"),
                 "cluster_organization must be 'shared-scc' or 'private'")
        _require(self.intra_bus_occupancy >= 1,
                 "intra_bus_occupancy must be >= 1")
        _require(1 <= self.intra_transfer_latency <= self.memory_latency,
                 "intra_transfer_latency must be in [1, memory_latency]")
        if self.cluster_organization == "private":
            _require(self.scc_size % self.processors_per_cluster == 0
                     and _is_power_of_two(self.private_cache_size),
                     "scc_size must split into power-of-two private "
                     "caches across the cluster's processors")
        _require(self.num_banks <= self.scc_lines,
                 "more SCC banks than cache lines; shrink banks or grow SCC")
        _require(self.memory_latency >= 1, "memory_latency must be >= 1")
        _require(1 <= self.bus_occupancy <= self.memory_latency,
                 "bus_occupancy must lie in [1, memory_latency]")
        _require(self.upgrade_bus_occupancy >= 0,
                 "upgrade_bus_occupancy must be >= 0")
        _require(_is_power_of_two(self.icache_size)
                 and self.icache_size % self.icache_line_size == 0,
                 "icache_size must be a power of two multiple of its line")
        _require(self.write_buffer_depth >= 1,
                 "write_buffer_depth must be >= 1")
        _require(self.bank_cycle_time >= 1, "bank_cycle_time must be >= 1")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def total_processors(self) -> int:
        """Processors in the whole machine."""
        return self.clusters * self.processors_per_cluster

    @property
    def private_cache_size(self) -> int:
        """Per-processor cache capacity in the private organization:
        the same total SRAM as the shared SCC, split evenly."""
        return self.scc_size // self.processors_per_cluster

    @property
    def num_banks(self) -> int:
        """SCC banks per cluster (four per processor, Section 2.2.2)."""
        return self.banks_per_processor * self.processors_per_cluster

    @property
    def scc_lines(self) -> int:
        """Cache lines per SCC."""
        return self.scc_size // self.line_size

    @property
    def lines_per_bank(self) -> int:
        """Cache lines held by each SCC bank."""
        return self.scc_lines // self.num_banks

    @property
    def line_offset_bits(self) -> int:
        """Low address bits that select the byte within a line."""
        return self.line_size.bit_length() - 1

    def line_of(self, addr: int) -> int:
        """Map a byte address to its global line number."""
        return addr >> self.line_offset_bits

    def bank_of(self, addr: int) -> int:
        """Map a byte address to its SCC bank.

        Banks are interleaved on cache lines: consecutive lines live in
        consecutive banks (Section 2.1).
        """
        return self.line_of(addr) % self.num_banks

    def cluster_of(self, proc: int) -> int:
        """Cluster that processor ``proc`` (machine-global id) belongs to.

        Processors are numbered contiguously within a cluster, so processors
        ``0 .. p-1`` form cluster 0; this is also the placement the SPLASH
        partitioning strategies assume.
        """
        _require(0 <= proc < self.total_processors, "processor id out of range")
        return proc // self.processors_per_cluster

    def port_of(self, proc: int) -> int:
        """SCC port used by processor ``proc`` within its cluster."""
        _require(0 <= proc < self.total_processors, "processor id out of range")
        return proc % self.processors_per_cluster

    # ------------------------------------------------------------------
    # Presets and variants
    # ------------------------------------------------------------------

    def with_updates(self, **changes) -> "SystemConfig":
        """Return a copy with ``changes`` applied (validation re-runs)."""
        return replace(self, **changes)

    @classmethod
    def paper_parallel(cls, processors_per_cluster: int,
                       scc_size: int) -> "SystemConfig":
        """The Section 3.1 machine: four clusters, swept procs and SCC."""
        return cls(clusters=4,
                   processors_per_cluster=processors_per_cluster,
                   scc_size=scc_size)

    @classmethod
    def paper_multiprogramming(cls, processors_per_cluster: int,
                               scc_size: int) -> "SystemConfig":
        """The Section 3.2 machine: a single cluster, icache modelled."""
        return cls(clusters=1,
                   processors_per_cluster=processors_per_cluster,
                   scc_size=scc_size,
                   model_icache=True)

    @staticmethod
    def paper_scc_ladder(scale: int = 1) -> Tuple[int, ...]:
        """The paper's 4 KB .. 512 KB SCC sweep, divided by ``scale``.

        The reproduction shrinks workload footprints and cache sizes by the
        same factor (DESIGN.md, "Scaling note"); ``scale=1`` returns the
        paper's literal ladder.
        """
        _require(scale >= 1 and _is_power_of_two(scale),
                 "scale must be a power of two >= 1")
        return tuple(size * KB // scale for size in _PAPER_SCC_SIZES_KB)


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)
