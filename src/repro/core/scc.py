"""The Shared Cluster Cache (SCC).

One SCC serves all processors in a cluster (Section 2.1): it is a
direct-mapped, non-blocking data cache interleaved across
``4 x processors_per_cluster`` banks on cache-line boundaries, with a
dedicated port per processor and a cache-controller port for refills.

This class owns the per-cluster pieces -- the tag/state array, the bank
interconnect with its write buffers, in-flight fill tracking for the
non-blocking behaviour, and the per-SCC statistics.  The machine-wide
choreography (bus transactions, snooping the other SCCs) lives in
:mod:`repro.core.coherence`.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from .cache import make_array
from .config import SystemConfig
from .interconnect import BankInterconnect
from .stats import SccStats
from ..instrument.probes import NULL_PROBE

__all__ = ["SharedClusterCache"]


class SharedClusterCache:
    """Tag array + banks + write buffers for one cluster's shared cache."""

    __slots__ = ("config", "cluster_id", "array", "interconnect", "stats",
                 "probe", "_inflight", "_lost_lines")

    def __init__(self, config: SystemConfig, cluster_id: int,
                 probe=NULL_PROBE):
        self.config = config
        self.cluster_id = cluster_id
        self.probe = probe
        self.array = make_array(config.scc_lines, config.associativity)
        self.interconnect = BankInterconnect(
            num_banks=config.num_banks,
            bank_cycle_time=config.bank_cycle_time,
            write_buffer_depth=config.write_buffer_depth,
            probe=probe, cluster_id=cluster_id)
        self.stats = SccStats()
        # line -> cycle its fill completes; a second access to an in-flight
        # line merges with the outstanding fill (MSHR behaviour) instead of
        # issuing another bus transaction.
        self._inflight: Dict[int, int] = {}
        # Lines this SCC lost to remote invalidations; a later read miss to
        # one of these is a coherence ("invalidation") miss.
        self._lost_lines: Set[int] = set()

    # ------------------------------------------------------------------
    # Bank path
    # ------------------------------------------------------------------

    def bank_of_line(self, line: int) -> int:
        """Bank holding ``line`` (lines interleave across banks)."""
        return line % self.config.num_banks

    def claim_bank(self, line: int, now: int) -> Tuple[int, int]:
        """Arbitrate for the line's bank; returns ``(start, wait)``."""
        start, wait = self.interconnect.access(self.bank_of_line(line), now)
        self.stats.bank_conflict_cycles += wait
        return start, wait

    def buffer_write(self, line: int, now: int, retire_time: int) -> int:
        """Enter a store into the bank's write buffer; returns any stall."""
        stall = self.interconnect.reserve_write_slot(
            self.bank_of_line(line), now, retire_time)
        self.stats.write_buffer_stall_cycles += stall
        return stall

    # ------------------------------------------------------------------
    # Fill tracking (non-blocking cache)
    # ------------------------------------------------------------------

    def note_fill(self, line: int, ready: int) -> None:
        """Record that ``line`` is being filled and arrives at ``ready``."""
        self._inflight[line] = ready

    def fill_ready_time(self, line: int, now: int) -> Optional[int]:
        """If ``line`` is still in flight at ``now``, its arrival time.

        Completed fills are forgotten lazily; returns ``None`` when the
        line is not in flight (or already arrived).
        """
        ready = self._inflight.get(line)
        if ready is None:
            return None
        if ready <= now:
            del self._inflight[line]
            return None
        return ready

    def drop_inflight(self, line: int) -> None:
        """Forget an in-flight fill (the line was invalidated under it)."""
        self._inflight.pop(line, None)

    def inflight_lines(self) -> Tuple[int, ...]:
        """Lines with an outstanding fill (introspection for invariant
        checks; order unspecified)."""
        return tuple(self._inflight)

    def stale_inflight(self) -> Tuple[int, ...]:
        """In-flight entries that violate the fill-tracking invariant.

        Fills are installed in the array the moment their bus transaction
        is granted (``note_fill`` only times the data arrival), so every
        line with an outstanding fill must be resident under the same
        full line number.  An entry whose line is no longer resident is a
        leak: its stale ``fill_ready_time`` could later satisfy a miss to
        a *different* tag that maps to the same index.  The differential
        oracle checks this after every transaction.
        """
        resident = {line for line, _state in self.array.resident_lines()}
        return tuple(line for line in self._inflight
                     if line not in resident)

    # ------------------------------------------------------------------
    # Coherence-loss tracking
    # ------------------------------------------------------------------

    def note_lost(self, line: int) -> None:
        """Mark ``line`` as stolen by a remote invalidation."""
        self._lost_lines.add(line)

    def consume_lost(self, line: int) -> bool:
        """True (once) if a miss to ``line`` is a coherence miss."""
        if line in self._lost_lines:
            self._lost_lines.remove(line)
            return True
        return False
