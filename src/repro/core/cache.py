"""Cache tag arrays with MSI line states.

This is the storage substrate shared by the Shared Cluster Cache
(:mod:`repro.core.scc`), the private-cache cluster organization
(:mod:`repro.core.private`), and the per-processor instruction caches
(:mod:`repro.core.icache`).  The paper's SCC is direct-mapped (its 64 KB
uniprocessor variant is "the largest direct-mapped cache that can be
accessed in 30 FO4 inverter delays", Section 4.2), so
:class:`DirectMappedArray` is the default; :class:`SetAssociativeArray`
(LRU) exists for the associativity ablation the cost model prices in
extra FO4 delays.

Coherence state is kept per resident line using the three states the
snoopy write-invalidate protocol of Section 2.2.2 needs:

* ``INVALID`` -- line not present.
* ``SHARED`` -- clean, possibly resident in other caches too.
* ``MODIFIED`` -- dirty and exclusive machine-wide.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple

__all__ = ["INVALID", "SHARED", "MODIFIED", "EXCLUSIVE", "STATE_NAMES",
           "DirectMappedArray", "SetAssociativeArray", "make_array"]

INVALID = 0
SHARED = 1
MODIFIED = 2
EXCLUSIVE = 3
"""Clean and machine-wide exclusive (MESI protocol option only)."""

STATE_NAMES = {INVALID: "INVALID", SHARED: "SHARED", MODIFIED: "MODIFIED",
               EXCLUSIVE: "EXCLUSIVE"}


class DirectMappedArray:
    """Tags and MSI states for a direct-mapped cache of ``num_lines`` lines.

    Addresses never appear here; callers translate byte addresses to global
    line numbers first (see :meth:`repro.core.config.SystemConfig.line_of`).
    """

    __slots__ = ("num_lines", "_tags", "_states", "_index_mask",
                 "_tag_shift")

    def __init__(self, num_lines: int):
        if num_lines < 1:
            raise ValueError("cache must hold at least one line")
        self.num_lines = num_lines
        # ``array('q')`` rather than plain lists: the storage supports the
        # buffer protocol, so the numpy and native replay backends
        # (:mod:`repro.trace.engine`) can operate on the very same memory
        # (zero-copy ``np.frombuffer`` views / raw ``int64_t*`` pointers)
        # while the python paths keep indexing it unchanged.
        self._tags = array("q", bytes(8 * num_lines))
        self._states = array("q", bytes(8 * num_lines))
        # Power-of-two line counts (every paper configuration) replace the
        # divmod in index/tag extraction with a mask and a shift.
        if num_lines & (num_lines - 1) == 0 and num_lines > 1:
            self._index_mask = num_lines - 1
            self._tag_shift = num_lines.bit_length() - 1
        else:
            self._index_mask = 0
            self._tag_shift = 0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    def index_of(self, line: int) -> int:
        """Set index a global line number maps to."""
        if self._index_mask:
            return line & self._index_mask
        return line % self.num_lines

    def tag_of(self, line: int) -> int:
        """Tag stored for a global line number."""
        if self._index_mask:
            return line >> self._tag_shift
        return line // self.num_lines

    # ------------------------------------------------------------------
    # Lookups and state transitions
    # ------------------------------------------------------------------

    def state(self, line: int) -> int:
        """Current state of ``line`` (``INVALID`` if not resident)."""
        if self._index_mask:
            index = line & self._index_mask
            state = self._states[index]
            if state != INVALID and self._tags[index] == line >> self._tag_shift:
                return state
            return INVALID
        index = line % self.num_lines
        state = self._states[index]
        if state != INVALID and self._tags[index] == line // self.num_lines:
            return state
        return INVALID

    def contains(self, line: int) -> bool:
        """True when ``line`` is resident in any valid state."""
        return self.state(line) != INVALID

    def install(self, line: int,
                state: int) -> Optional[Tuple[int, int]]:
        """Place ``line`` in the array in ``state``.

        Returns the displaced victim as ``(victim_line, victim_state)``
        when a *different* valid line occupied the slot, else ``None``.
        Installing over the same line just updates its state.
        """
        if state not in (SHARED, MODIFIED, EXCLUSIVE):
            raise ValueError(
                "lines are installed SHARED, MODIFIED or EXCLUSIVE")
        index = self.index_of(line)
        tag = self.tag_of(line)
        victim: Optional[Tuple[int, int]] = None
        old_state = self._states[index]
        if old_state != INVALID and self._tags[index] != tag:
            victim_line = self._tags[index] * self.num_lines + index
            victim = (victim_line, old_state)
        self._tags[index] = tag
        self._states[index] = state
        return victim

    def set_state(self, line: int, state: int) -> None:
        """Transition a *resident* line to ``state``.

        Raises :class:`KeyError` if the line is not resident; use
        :meth:`install` to bring lines in.
        """
        index = self.index_of(line)
        if self._states[index] == INVALID or self._tags[index] != self.tag_of(line):
            raise KeyError(f"line {line:#x} not resident")
        if state == INVALID:
            self._states[index] = INVALID
        elif state in (SHARED, MODIFIED, EXCLUSIVE):
            self._states[index] = state
        else:
            raise ValueError(f"unknown state {state}")

    def invalidate(self, line: int) -> bool:
        """Invalidate ``line`` if resident; returns whether it was."""
        index = self.index_of(line)
        if self._states[index] != INVALID and self._tags[index] == self.tag_of(line):
            self._states[index] = INVALID
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection (tests, invariant checks)
    # ------------------------------------------------------------------

    def resident_lines(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(line, state)`` for every valid line."""
        for index, state in enumerate(self._states):
            if state != INVALID:
                yield self._tags[index] * self.num_lines + index, state

    def valid_count(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for state in self._states if state != INVALID)

    def touch(self, line: int) -> None:
        """Replacement-policy hint on a hit (no-op: direct-mapped)."""


class SetAssociativeArray:
    """LRU set-associative tag array with the same MSI interface.

    ``num_lines`` total lines across ``associativity`` ways; the set
    index of a line is ``line mod num_sets``.  Hits must be reported via
    :meth:`touch` so LRU order tracks use (the coherence controller does
    this).
    """

    __slots__ = ("num_lines", "associativity", "num_sets", "_sets")

    def __init__(self, num_lines: int, associativity: int):
        if num_lines < 1:
            raise ValueError("cache must hold at least one line")
        if associativity < 1 or num_lines % associativity:
            raise ValueError(
                "associativity must divide the line count")
        self.num_lines = num_lines
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        # Each set: list of [line, state], most recently used first.
        self._sets: List[List[List[int]]] = [
            [] for _ in range(self.num_sets)]

    def index_of(self, line: int) -> int:
        """Set index a global line number maps to."""
        return line % self.num_sets

    def _find(self, line: int):
        bucket = self._sets[line % self.num_sets]
        for position in range(len(bucket)):
            entry = bucket[position]
            if entry[0] == line:
                return bucket, position, entry
        return bucket, -1, None

    def state(self, line: int) -> int:
        """Current state of ``line`` (``INVALID`` if not resident)."""
        # The by-far hottest lookup: scan without building the
        # (bucket, position, entry) result tuple _find returns.
        for entry in self._sets[line % self.num_sets]:
            if entry[0] == line:
                return entry[1]
        return INVALID

    def contains(self, line: int) -> bool:
        """True when ``line`` is resident in any valid state."""
        return self.state(line) != INVALID

    def touch(self, line: int) -> None:
        """Move ``line`` to most-recently-used in its set (hit hint)."""
        bucket, position, entry = self._find(line)
        if position > 0:
            del bucket[position]
            bucket.insert(0, entry)

    def install(self, line: int, state: int) -> Optional[Tuple[int, int]]:
        """Place ``line`` at MRU in ``state``; returns any LRU victim."""
        if state not in (SHARED, MODIFIED, EXCLUSIVE):
            raise ValueError(
                "lines are installed SHARED, MODIFIED or EXCLUSIVE")
        bucket, position, entry = self._find(line)
        if position >= 0:
            entry[1] = state
            self.touch(line)
            return None
        victim: Optional[Tuple[int, int]] = None
        if len(bucket) >= self.associativity:
            victim_line, victim_state = bucket.pop()
            victim = (victim_line, victim_state)
        bucket.insert(0, [line, state])
        return victim

    def set_state(self, line: int, state: int) -> None:
        """Transition a *resident* line to ``state``."""
        bucket, position, entry = self._find(line)
        if position < 0:
            raise KeyError(f"line {line:#x} not resident")
        if state == INVALID:
            del bucket[position]
        elif state in (SHARED, MODIFIED, EXCLUSIVE):
            entry[1] = state
        else:
            raise ValueError(f"unknown state {state}")

    def invalidate(self, line: int) -> bool:
        """Invalidate ``line`` if resident; returns whether it was."""
        bucket, position, _ = self._find(line)
        if position >= 0:
            del bucket[position]
            return True
        return False

    def resident_lines(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(line, state)`` for every valid line."""
        for bucket in self._sets:
            for line, state in bucket:
                yield line, state

    def valid_count(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(bucket) for bucket in self._sets)


def make_array(num_lines: int, associativity: int = 1):
    """Tag array of the right kind for an associativity."""
    if associativity == 1:
        return DirectMappedArray(num_lines)
    return SetAssociativeArray(num_lines, associativity)
