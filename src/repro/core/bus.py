"""The inter-cluster snoopy bus.

Section 2.2.2 fixes the latency to fetch a line from main memory or a
remote SCC at 100 processor cycles.  The bus itself, however, is a shared
serial resource: when several SCCs miss at once their transactions queue.
We model that with a single busy-until timestamp -- a transaction issued at
``t`` starts at ``max(t, busy_until)``, holds the bus for its occupancy,
and the requester sees ``start - t`` extra wait on top of the fixed fetch
latency.  This queueing is what lets bus saturation emerge for
invalidation-heavy workloads (MP3D, Section 3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instrument.probes import NULL_PROBE

__all__ = ["BusTransaction", "SnoopyBus"]


@dataclass(frozen=True)
class BusTransaction:
    """Outcome of one bus transaction.

    ``start`` is when the bus was granted, ``wait`` the queueing delay
    before the grant, and ``done`` when the requester's transfer (data or
    broadcast) completed.
    """

    start: int
    wait: int
    done: int


class SnoopyBus:
    """Single shared split-transaction bus with FCFS arbitration."""

    __slots__ = ("_busy_until", "transactions", "busy_cycles", "probe",
                 "name")

    def __init__(self, probe=NULL_PROBE, name: str = "bus") -> None:
        self._busy_until = 0
        self.transactions = 0
        self.busy_cycles = 0
        self.probe = probe
        """Instrumentation sink (:data:`~repro.instrument.probes.
        NULL_PROBE` when profiling is off)."""
        self.name = name

    def acquire(self, now: int, occupancy: int, latency: int) -> BusTransaction:
        """Arbitrate for the bus at time ``now``.

        The transaction occupies the bus for ``occupancy`` cycles starting
        at the grant; the requester's result (line data, or broadcast
        completion) is available ``latency`` cycles after the grant.  For a
        line fetch ``latency`` is the paper's fixed 100 cycles, of which
        only ``occupancy`` serializes against other traffic (the rest is
        memory access time overlapped with other transactions).
        """
        if occupancy < 0 or latency < 0:
            raise ValueError("occupancy and latency must be non-negative")
        start = max(now, self._busy_until)
        self._busy_until = start + occupancy
        self.transactions += 1
        self.busy_cycles += occupancy
        probe = self.probe
        if probe is not NULL_PROBE:
            probe.bus_acquire(self.name, now, start, occupancy)
        return BusTransaction(start=start, wait=start - now,
                              done=start + latency)

    @property
    def busy_until(self) -> int:
        """Time at which the bus next becomes free (for tests)."""
        return self._busy_until

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus was held."""
        return self.busy_cycles / elapsed if elapsed else 0.0
