"""The blessed public surface of the reproduction.

``import repro.api as repro`` and stay within ``__all__`` below: these
names are the stable contract -- everything else in the package is
internal and may move between minor versions.  The surface is small on
purpose:

* describe an experiment: :class:`SweepSpec` (one validated value
  object covering the paper's parallel, multiprogramming and
  miss-surface sweeps), sized by an :class:`ExperimentProfile` from
  :data:`PROFILES`;
* run it locally: :func:`grid_sweep` for the design-space grids (or
  :class:`SweepSession` to drive journaling/resume/progress yourself;
  :func:`run_sweep` additionally accepts miss-surface specs);
* run it on the fabric: :class:`SweepClient` against
  ``python -m repro serve`` (or an in-process :class:`LocalFabric`) --
  ``client.result(client.submit(spec))`` equals ``grid_sweep(spec)``
  point for point, served from the same content-addressed store;
* search the design space: :func:`optimize` a :class:`DesignSpace`
  through a :class:`FunnelEvaluator` (locally or through a
  :class:`SweepClient`) for the cost/performance Pareto frontier;
* or drop to a single simulation: :func:`run_simulation` on a
  :class:`SystemConfig`.

Example::

    from repro.api import PROFILES, SweepClient, SweepSpec, grid_sweep

    spec = SweepSpec.parallel("mp3d", profile=PROFILES["quick"])
    local = grid_sweep(spec)                         # in this process
    client = SweepClient.connect("http://127.0.0.1:8765")
    remote = client.result(client.submit(spec))      # on the fabric
    assert {p: s.as_dict() for p, s in local.items()} == \
           {p: s.as_dict() for p, s in remote.items()}
"""

from __future__ import annotations

from .core.config import KB, SystemConfig
from .experiments.runner import (PROFILES, ExperimentProfile, ResultCache,
                                 RunStats, active_profile)
from .experiments.session import (QuarantinedPointError, SweepSession,
                                  grid_sweep, run_sweep)
from .experiments.spec import SweepSpec
from .fabric.client import (JobHandle, LocalFabric, SweepClient)
from .fabric.store import ArtifactStore
from .fabric.wire import FabricError
from .optimize import (BudgetLedger, Candidate, DesignSpace,
                       FunnelEvaluator, OptimizeResult, optimize,
                       render_frontier)
from .simulation import SimulationResult, run_simulation

__all__ = [
    # describe
    "ExperimentProfile", "PROFILES", "SweepSpec", "active_profile",
    # run locally
    "QuarantinedPointError", "ResultCache", "RunStats", "SweepSession",
    "grid_sweep", "run_sweep",
    # run on the fabric
    "ArtifactStore", "FabricError", "JobHandle", "LocalFabric",
    "SweepClient",
    # search the design space
    "BudgetLedger", "Candidate", "DesignSpace", "FunnelEvaluator",
    "OptimizeResult", "optimize", "render_frontier",
    # single simulations
    "KB", "SimulationResult", "SystemConfig", "run_simulation",
]
