"""One-call simulation driver: a workload on a machine configuration.

This is the top of the public API.  Anything with a
``processes(config) -> mapping of processor id to event generator`` method
(see :class:`repro.workloads.base.TracedApplication`) can be simulated on
any :class:`repro.core.SystemConfig`:

>>> from repro import SystemConfig, run_simulation
>>> from repro.workloads import BarnesHut
>>> config = SystemConfig.paper_parallel(processors_per_cluster=2,
...                                      scc_size=8 * 1024)
>>> result = run_simulation(config, BarnesHut(n_bodies=64, steps=1))
>>> result.stats.execution_time > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .core.config import SystemConfig
from .core.private import PrivateClusterSystem
from .core.stats import SystemStats
from .core.system import MultiprocessorSystem
from .trace.interleave import TimingInterleaver

__all__ = ["SimulationResult", "build_system", "run_simulation"]


def build_system(config: SystemConfig, instrumentation=None):
    """The memory system for a configuration's cluster organization.

    ``instrumentation`` (an
    :class:`~repro.instrument.InstrumentationProbe` or ``None``) is
    threaded into every contended component so probed runs see bank,
    bus, and processor events as they happen.
    """
    if config.cluster_organization == "private":
        return PrivateClusterSystem(config, instrumentation=instrumentation)
    return MultiprocessorSystem(config, instrumentation=instrumentation)


@dataclass(frozen=True)
class SimulationResult:
    """Everything a finished simulation reports."""

    config: SystemConfig
    stats: SystemStats
    events_processed: int
    """Trace events consumed by the interleaver."""

    instrumentation: Optional[object] = None
    """The :class:`~repro.instrument.InstrumentationProbe` the run was
    started with (``None`` for uninstrumented runs); its ``registry``
    holds the binned timelines and its ``summary()`` the flat digest."""

    @property
    def execution_time(self) -> int:
        """Simulated cycles until the last process finished."""
        return self.stats.execution_time

    def summary(self) -> str:
        """Multi-line human-readable digest of the run."""
        stats = self.stats
        total = stats.total_scc
        config = self.config
        lines = [
            f"{config.clusters} clusters x "
            f"{config.processors_per_cluster} processors, "
            f"{config.scc_size:,} B SCC "
            f"({config.cluster_organization}, {config.inter_cluster}, "
            f"{config.protocol})",
            f"execution time : {stats.execution_time:,} cycles",
            f"data references: {total.accesses:,} "
            f"(read miss {100 * total.read_miss_rate:.2f}%, "
            f"write miss {100 * total.write_miss_rate:.2f}%)",
            f"invalidations  : {stats.total_invalidations:,}",
            f"trace events   : {self.events_processed:,}",
        ]
        return "\n".join(lines)


def run_simulation(config: SystemConfig, application,
                   max_cycles: Optional[int] = None,
                   check_invariants: bool = True,
                   instrumentation=None,
                   backend: Optional[str] = None) -> SimulationResult:
    """Simulate ``application`` on the machine described by ``config``.

    ``application.processes(config)`` must return a mapping from
    machine-global processor id to a trace-event generator; ids must be
    valid for the configuration.  ``max_cycles`` aborts runaway simulations
    (simulated time bound).  ``check_invariants`` verifies coherence
    exclusivity after the run (cheap relative to the run itself).

    ``instrumentation`` enables cycle-level observability: pass an
    :class:`~repro.instrument.InstrumentationProbe` and every bus grant,
    bank conflict, write-buffer event, and processor stall lands in its
    timelines; the same object is finalized with the run's horizon and
    returned on the result.  The default ``None`` costs the hot paths
    one pointer comparison per event.

    ``backend`` picks the packed-replay engine (``auto``/``python``/
    ``numpy``/``native``; see :mod:`repro.trace.engine`).  It is an
    execution knob, not part of the machine: every backend produces
    identical statistics, so results and caches never depend on it.
    ``None`` defers to ``$REPRO_ENGINE``.
    """
    system = build_system(config, instrumentation=instrumentation)
    interleaver = TimingInterleaver(system, backend=backend)
    process_map = application.processes(config)
    for proc_id, generator in process_map.items():
        interleaver.add_process(proc_id, generator)
    execution_time = interleaver.run(max_cycles=max_cycles)
    if check_invariants:
        system.check_invariants()
    if instrumentation is not None:
        instrumentation.finalize(execution_time)
    return SimulationResult(config=config,
                            stats=system.stats(execution_time),
                            events_processed=interleaver.events_processed,
                            instrumentation=instrumentation)
