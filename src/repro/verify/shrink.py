"""Delta-debugging reduction of diverging tapes.

Classic ddmin over the tape's decoded event objects (spans decompose
into their element accesses first, so the reducer works at single-event
granularity).  After every deletion attempt the candidate is *repaired*
back into the validity envelope the generator guarantees -- lock
acquire/release balance within each stream and barrier participation
matched across streams -- purely by deleting further events, so a
repaired candidate is never larger than the attempt.  Candidates are
accepted only if the differential runner still finds a divergence, and
the final tape is written to ``.repro_cache/repros/`` as a
self-contained JSON repro.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..trace.events import Barrier, LockAcquire, LockRelease, TraceEvent
from ..trace.packed import decode_events, encode_events
from .differ import TapeDivergence, diff_tape
from .tapes import Tape, tape_to_json

__all__ = ["DEFAULT_MAX_CHECKS", "default_repro_dir", "shrink_tape",
           "write_repro"]

DEFAULT_MAX_CHECKS = 400
"""Differential-run budget per shrink (each check runs every engine)."""


def default_repro_dir() -> Path:
    """Where shrunk repros land (override with ``REPRO_REPRO_DIR``)."""
    return Path(os.environ.get(
        "REPRO_REPRO_DIR", os.path.join(".repro_cache", "repros")))


# ----------------------------------------------------------------------
# Validity repair
# ----------------------------------------------------------------------

def _repair_locks(events: List[TraceEvent]) -> List[TraceEvent]:
    """Deletion-only lock discipline: drop re-acquires of held locks,
    releases of un-held locks, and acquires never released."""
    filtered: List[TraceEvent] = []
    open_acquires: Dict[int, int] = {}
    for event in events:
        if isinstance(event, LockAcquire):
            if event.lock_id in open_acquires:
                continue
            open_acquires[event.lock_id] = len(filtered)
            filtered.append(event)
        elif isinstance(event, LockRelease):
            if event.lock_id not in open_acquires:
                continue
            del open_acquires[event.lock_id]
            filtered.append(event)
        else:
            filtered.append(event)
    unmatched = set(open_acquires.values())
    if not unmatched:
        return filtered
    return [event for index, event in enumerate(filtered)
            if index not in unmatched]


def repair(streams: Dict[int, List[TraceEvent]]
           ) -> Dict[int, List[TraceEvent]]:
    """Restore tape validity after arbitrary event deletions."""
    repaired = {pid: _repair_locks(events)
                for pid, events in streams.items()}
    # A barrier episode only completes when every registered processor
    # arrives, so each barrier id must occur the same number of times in
    # every stream: truncate to the minimum (zero drops it everywhere).
    barrier_ids = {event.barrier_id
                   for events in repaired.values() for event in events
                   if isinstance(event, Barrier)}
    quota = {
        barrier_id: min(
            sum(1 for event in events
                if isinstance(event, Barrier)
                and event.barrier_id == barrier_id)
            for events in repaired.values())
        for barrier_id in barrier_ids
    }
    result: Dict[int, List[TraceEvent]] = {}
    for pid, events in repaired.items():
        seen: Dict[int, int] = {}
        kept: List[TraceEvent] = []
        for event in events:
            if isinstance(event, Barrier):
                count = seen.get(event.barrier_id, 0)
                if count >= quota[event.barrier_id]:
                    continue
                seen[event.barrier_id] = count + 1
            kept.append(event)
        result[pid] = kept
    return result


# ----------------------------------------------------------------------
# ddmin
# ----------------------------------------------------------------------

def shrink_tape(tape: Tape,
                predicate: Optional[Callable[[Tape], bool]] = None,
                max_checks: int = DEFAULT_MAX_CHECKS
                ) -> Tuple[Tape, int]:
    """Reduce a diverging ``tape``; returns ``(shrunk tape, checks)``.

    ``predicate`` decides whether a candidate still exhibits the bug
    (default: :func:`~repro.verify.differ.diff_tape` finds *any*
    divergence).  The input tape must satisfy the predicate; the result
    always does.
    """
    if predicate is None:
        def predicate(candidate: Tape) -> bool:
            return diff_tape(candidate) is not None

    decoded = {pid: list(decode_events(stream))
               for pid, stream in tape.streams.items()}
    checks = 0

    def build(indices: List[Tuple[int, int]]) -> Tape:
        kept: Dict[int, List[TraceEvent]] = {pid: [] for pid in decoded}
        for pid, position in indices:
            kept[pid].append(decoded[pid][position])
        repaired = repair(kept)
        return tape.replaced({pid: list(encode_events(events))
                              for pid, events in repaired.items()})

    flat = [(pid, position) for pid in sorted(decoded)
            for position in range(len(decoded[pid]))]
    best = build(flat)
    if not predicate(best):
        # Repair of the full tape must be an identity for generated
        # tapes; hand-built ones may only diverge pre-repair.
        return tape, 1
    checks += 1

    granularity = 2
    while len(flat) >= 2 and checks < max_checks:
        chunk = max(1, len(flat) // granularity)
        reduced = False
        start = 0
        while start < len(flat) and checks < max_checks:
            trial = flat[:start] + flat[start + chunk:]
            if not trial:
                start += chunk
                continue
            candidate = build(trial)
            checks += 1
            if predicate(candidate):
                flat = trial
                best = candidate
                granularity = max(2, granularity - 1)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(len(flat), granularity * 2)
    return best, checks


# ----------------------------------------------------------------------
# Repro persistence
# ----------------------------------------------------------------------

def write_repro(tape: Tape, divergence: TapeDivergence,
                out_dir: Optional[Path] = None) -> Path:
    """Persist a (shrunk) diverging tape as a standalone JSON repro."""
    directory = Path(out_dir) if out_dir is not None else \
        default_repro_dir()
    directory.mkdir(parents=True, exist_ok=True)
    tape_json = tape_to_json(tape)
    digest = hashlib.sha256(tape_json.encode()).hexdigest()[:12]
    path = directory / f"repro-{divergence.kind}-{digest}.json"
    payload = {
        "version": 1,
        "seed": tape.seed,
        "kind": divergence.kind,
        "summary": divergence.summary(),
        "detail": divergence.detail[:20],
        "events": tape.total_events(),
        "tape": json.loads(tape_json),
    }
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path
