"""Differential execution of one tape across every timing engine.

The generic per-event loop is the semantic baseline.  Each other engine
runs the same tape and must agree with it on everything the engine
exposes:

* **oracle** -- the generic loop observed by the functional model
  (:class:`~repro.verify.oracle.FunctionalOracle`); agreement covers
  the full fingerprint *and* the model's own invariants.
* **fast** -- the allocation-free ``_run_fast`` packed loop (engaged
  automatically whenever the machine qualifies); compared on cycle
  counts, per-cluster statistics, bus counters, and final tag/state
  arrays.
* **numpy** / **native** -- the replay backends from
  :mod:`repro.trace.engine`, run through the same packed fast path with
  ``backend=`` forced; compared on the full fingerprint.  Backends are
  discovered through :func:`engine_registry`, so a new backend is diffed
  automatically once it reports itself available.
* **fused** -- the multi-configuration ladder engine, run as a
  two-rung ladder and compared on its bottom rung (final arrays are
  internal to the fused engine, so the diff covers statistics and
  event counts).
* **fused-native** -- the same two-rung ladder forced through the
  compiled ladder (``backend="native"``); registered only when the
  extension actually exposes the ladder entry points, and asserted to
  have engaged (a silent degradation to the python ladder would make
  the comparison trivially green).

Two paths that fail with the *same* exception type are in agreement --
error parity is part of the contract (the golden suites already pin
it); anything else is a :class:`TapeDivergence`.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.system import MultiprocessorSystem
from ..trace.engine import available_backends
from ..trace.interleave import TimingInterleaver, fused_replay_ok
from ..trace import multiconfig
from ..trace.multiconfig import fused_ladder_results, fused_ladder_supported
from ..trace.packed import PackedChunk
from .oracle import FunctionalOracle
from .tapes import Tape

__all__ = ["DEFAULT_MAX_CYCLES", "EngineSpec", "PathResult",
           "TapeDivergence", "diff_tape", "engine_registry",
           "fused_eligible", "run_tape"]

DEFAULT_MAX_CYCLES = 10_000_000
"""Simulated-cycle bound per path; a runaway engine shows up as a
RuntimeError on one side of the diff instead of hanging the campaign."""


@dataclass
class PathResult:
    """What one engine produced for one tape."""

    name: str
    error: Optional[Tuple[str, str]] = None
    """``(exception type name, message)`` if the run raised."""

    fingerprint: Optional[Dict[str, object]] = None
    fast_engaged: Optional[bool] = None
    """For packed-path engines: whether the fast path actually ran (the
    interleaver falls back to the generic loop for e.g. set-associative
    arrays, making the comparison trivially green)."""

    engine_used: Optional[str] = None
    """The interleaver's resolved backend, for diagnosing silent
    fallbacks (a ``native`` run that degraded to ``python`` would
    otherwise pass trivially)."""


@dataclass
class TapeDivergence:
    """Two engines disagreed on one tape."""

    tape: Tape
    kind: str
    """Name of the diverging path (``"oracle"``/``"fast"``/``"fused"``)."""

    base: PathResult
    other: PathResult
    detail: List[str] = field(default_factory=list)

    def summary(self) -> str:
        head = (self.detail[0] if self.detail
                else "(no field-level detail)")
        return (f"{self.kind} diverges from {self.base.name} on tape "
                f"seed={self.tape.seed!r} "
                f"({self.tape.total_events()} events): {head}")


def _chunk_processes(interleaver: TimingInterleaver, tape: Tape) -> None:
    for pid, stream in sorted(tape.streams.items()):
        interleaver.add_process(pid, iter([PackedChunk(array("q",
                                                             stream))]))


@dataclass(frozen=True)
class EngineSpec:
    """One engine the differ compares against the generic baseline."""

    name: str
    sections: Tuple[str, ...]
    applies: "Callable[[Tape], bool]"


def _always(tape: Tape) -> bool:
    return True


_FULL = ("events", "stats", "bus", "arrays")

#: Packed-path replay backends, keyed by differ mode name.  ``fast`` is
#: the python reference loop; the rest come from repro.trace.engine.
_BACKEND_MODES = {"fast": "python", "numpy": "numpy", "native": "native"}


def engine_registry() -> Dict[str, EngineSpec]:
    """Engines to diff against the generic loop, in comparison order.

    Replay backends register themselves by being available: a freshly
    built native extension is picked up here without any differ change,
    which is what keeps "every backend is diffed" a structural property
    rather than a checklist item.
    """
    registry: Dict[str, EngineSpec] = {
        "oracle": EngineSpec("oracle", _FULL, _always),
        "fast": EngineSpec("fast", _FULL, _always),
    }
    for backend in available_backends():
        if backend != "python":
            registry[backend] = EngineSpec(backend, _FULL, _always)
    registry["fused"] = EngineSpec("fused", ("events", "stats"),
                                   fused_eligible)
    if _native_ladder_available():
        registry["fused-native"] = EngineSpec("fused-native",
                                              ("events", "stats"),
                                              fused_eligible)
    return registry


def run_tape(tape: Tape, mode: str,
             max_cycles: int = DEFAULT_MAX_CYCLES) -> PathResult:
    """Execute ``tape`` through one engine; never raises for engine
    errors (they become the result's ``error`` so the diff can assert
    error *parity* across engines)."""
    config = tape.config()
    if mode == "fused":
        return _run_fused(tape, config)
    if mode == "fused-native":
        return _run_fused(tape, config, backend="native")
    if mode not in ("generic", "oracle") and mode not in _BACKEND_MODES:
        raise ValueError(f"unknown differ mode {mode!r}")
    system = MultiprocessorSystem(config)
    oracle = FunctionalOracle(system) if mode == "oracle" else None
    interleaver = TimingInterleaver(system, observer=oracle,
                                    force_generic=(mode == "generic"),
                                    backend=_BACKEND_MODES.get(mode))
    _chunk_processes(interleaver, tape)
    result = PathResult(name=mode)
    if mode in _BACKEND_MODES:
        result.fast_engaged = interleaver._fast_ok
    try:
        execution_time = interleaver.run(max_cycles=max_cycles)
        if oracle is not None:
            oracle.verify_final()
        system.check_invariants()
    except Exception as exc:  # diffed, not propagated
        result.error = (type(exc).__name__, str(exc))
        result.engine_used = interleaver.engine_used
        return result
    result.engine_used = interleaver.engine_used
    stats = system.stats(execution_time)
    bus = system.coherence.bus
    result.fingerprint = {
        "events": interleaver.events_processed,
        "stats": stats.as_dict(),
        "bus": {"transactions": bus.transactions,
                "busy_cycles": bus.busy_cycles},
        "arrays": {cluster_id:
                   sorted(cluster.scc.array.resident_lines())
                   for cluster_id, cluster
                   in enumerate(system.clusters)},
    }
    return result


def fused_eligible(tape: Tape) -> bool:
    """Whether the fused engine applies: a one-processor tape on a
    machine the two-rung ladder ``[scc, 2*scc]`` supports."""
    config = tape.config()
    if config.total_processors != 1 or not fused_replay_ok(config):
        return False
    ladder = [config, config.with_updates(scc_size=config.scc_size * 2)]
    return fused_ladder_supported(ladder)


def _native_ladder_available() -> bool:
    """Whether the compiled fused ladder can actually run here."""
    if "native" not in available_backends():
        return False
    from ..trace.engine import native
    return native.ladder_available()


def _run_fused(tape: Tape, config,
               backend: Optional[str] = None) -> PathResult:
    result = PathResult(name="fused" if backend is None
                        else f"fused-{backend}")
    ladder = [config, config.with_updates(scc_size=config.scc_size * 2)]
    streams = {0: array("q", tape.streams[0])}
    try:
        bottom = fused_ladder_results(ladder, streams,
                                      backend=backend)[0]
    except Exception as exc:
        result.error = (type(exc).__name__, str(exc))
        result.engine_used = multiconfig.LAST_LADDER_ENGINE
        return result
    result.engine_used = multiconfig.LAST_LADDER_ENGINE
    if backend is not None and result.engine_used != backend:
        # A silently degraded ladder would agree with the baseline by
        # construction; make the degradation a loud divergence instead.
        result.error = ("EngineDegraded",
                        f"requested {backend} ladder, "
                        f"ran {result.engine_used}")
        return result
    result.fingerprint = {
        "events": bottom.events_processed,
        "stats": bottom.stats.as_dict(),
    }
    return result


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------

def _diff_values(path: str, base, other, out: List[str]) -> None:
    if isinstance(base, dict) and isinstance(other, dict):
        for key in sorted(set(base) | set(other), key=str):
            _diff_values(f"{path}.{key}" if path else str(key),
                         base.get(key), other.get(key), out)
        return
    if (isinstance(base, (list, tuple)) and isinstance(other,
                                                       (list, tuple))):
        if list(base) != list(other):
            out.append(f"{path}: {base!r} != {other!r}")
        return
    if base != other:
        out.append(f"{path}: {base!r} != {other!r}")


def _compare(tape: Tape, base: PathResult, other: PathResult,
             sections: Tuple[str, ...]) -> Optional[TapeDivergence]:
    if base.error is not None or other.error is not None:
        base_type = base.error[0] if base.error else None
        other_type = other.error[0] if other.error else None
        if base_type == other_type:
            return None
        return TapeDivergence(
            tape=tape, kind=other.name, base=base, other=other,
            detail=[f"error: {base.name}={base.error!r} "
                    f"{other.name}={other.error!r}"])
    detail: List[str] = []
    for section in sections:
        _diff_values(section, base.fingerprint.get(section),
                     other.fingerprint.get(section), detail)
    if not detail:
        return None
    return TapeDivergence(tape=tape, kind=other.name, base=base,
                          other=other, detail=detail)


def diff_tape(tape: Tape,
              max_cycles: int = DEFAULT_MAX_CYCLES
              ) -> Optional[TapeDivergence]:
    """Run every applicable engine over ``tape``; the first divergence
    found, or ``None`` when all engines agree."""
    generic = run_tape(tape, "generic", max_cycles)
    for spec in engine_registry().values():
        if not spec.applies(tape):
            continue
        divergence = _compare(tape, generic,
                              run_tape(tape, spec.name, max_cycles),
                              spec.sections)
        if divergence is not None:
            return divergence
    return None
