"""The supervised differential-fuzzing campaign.

:func:`run_fuzz` drives ``budget`` generated tapes through the
differential runner, shrinks whatever diverges, and writes the shrunk
repros to disk.  Case supervision mirrors the sweep session's: one
crashing case is *quarantined* (recorded with its exception) instead of
sinking the campaign, and live progress is accounted through the same
:class:`~repro.instrument.registry.MetricsRegistry` counter surface
(``fuzz.cases.total/clean/diverged/quarantined``).

Case seeds derive deterministically from the master seed
(``"<seed>:<index>"``), so ``--seed 0 --budget 200`` names the same 200
tapes on every machine, and any reported case replays standalone via
``generate_tape``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..instrument.registry import MetricsRegistry
from .differ import DEFAULT_MAX_CYCLES, diff_tape
from .shrink import DEFAULT_MAX_CHECKS, default_repro_dir, shrink_tape, \
    write_repro
from .tapes import Tape, generate_tape

__all__ = ["FuzzDivergence", "FuzzReport", "default_repro_dir",
           "run_fuzz"]


@dataclass
class FuzzDivergence:
    """One diverging case, shrunk (when enabled) and persisted."""

    case_index: int
    case_seed: str
    kind: str
    detail: List[str]
    original_events: int
    shrunk_events: Optional[int] = None
    shrink_checks: int = 0
    repro_path: Optional[Path] = None
    tape: Optional[Tape] = None
    """The minimal (or, with shrinking off, original) diverging tape."""


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    seed: int
    budget: int
    cases: int = 0
    divergences: List[FuzzDivergence] = field(default_factory=list)
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    """``(case seed, "ExcType: message")`` for cases that crashed the
    differ itself rather than diverging."""

    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.quarantined

    def summary(self) -> str:
        get = self.counters.get
        return (f"fuzz: {self.cases} case(s), seed {self.seed} -- "
                f"{int(get('clean', 0))} clean, "
                f"{int(get('diverged', 0))} diverged, "
                f"{int(get('quarantined', 0))} quarantined")


def run_fuzz(seed: int = 0, budget: int = 200, shrink: bool = True,
             out_dir: Optional[Path] = None,
             progress: Optional[Callable] = None,
             max_cycles: int = DEFAULT_MAX_CYCLES,
             max_shrink_checks: int = DEFAULT_MAX_CHECKS) -> FuzzReport:
    """Fuzz ``budget`` tapes derived from ``seed``; never raises for
    per-case failures.  ``progress(index, budget, status, case_seed)``
    is called once per case when given."""
    registry = MetricsRegistry()
    report = FuzzReport(seed=seed, budget=budget)

    def count(name: str) -> None:
        registry.count(f"fuzz.cases.{name}")

    for index in range(budget):
        case_seed = f"{seed}:{index}"
        count("total")
        report.cases += 1
        try:
            tape = generate_tape(case_seed)
            divergence = diff_tape(tape, max_cycles=max_cycles)
        except Exception as exc:  # quarantine, keep fuzzing
            count("quarantined")
            report.quarantined.append(
                (case_seed, f"{type(exc).__name__}: {exc}"))
            if progress is not None:
                progress(index, budget, "quarantined", case_seed)
            continue
        if divergence is None:
            count("clean")
            if progress is not None:
                progress(index, budget, "clean", case_seed)
            continue
        count("diverged")
        record = FuzzDivergence(
            case_index=index, case_seed=case_seed, kind=divergence.kind,
            detail=list(divergence.detail[:10]),
            original_events=tape.total_events())
        final_tape, final_divergence = tape, divergence
        if shrink:
            try:
                final_tape, record.shrink_checks = shrink_tape(
                    tape, max_checks=max_shrink_checks)
                final_divergence = (diff_tape(final_tape,
                                              max_cycles=max_cycles)
                                    or divergence)
            except Exception:  # fall back to the unshrunk repro
                final_tape, final_divergence = tape, divergence
        record.tape = final_tape
        record.shrunk_events = final_tape.total_events()
        record.kind = final_divergence.kind
        record.detail = list(final_divergence.detail[:10])
        record.repro_path = write_repro(final_tape, final_divergence,
                                        out_dir)
        report.divergences.append(record)
        if progress is not None:
            progress(index, budget, f"DIVERGED ({record.kind})",
                     case_seed)
    report.counters = registry.counter_group("fuzz.cases")
    return report
