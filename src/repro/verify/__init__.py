"""Differential verification of the three execution paths.

The simulator has three independently-evolved timing engines -- the
generic per-event interleaver loop, the allocation-free ``_run_fast``
packed loop, and the fused multi-configuration ladder replay -- kept
equivalent, until now, only by a fixed set of golden fingerprints.
This package closes the gap the way cache-simulator reproductions
normally do: differential testing against a slow, obviously-correct
reference model over seeded adversarial inputs.

* :mod:`repro.verify.tapes` -- seeded random generator of packed event
  tapes (all opcodes, lock/barrier/queue sync, pathological line
  aliasing, 1-8 processors across 1-4 clusters).
* :mod:`repro.verify.oracle` -- a dict-based MESI functional model run
  as an interleaver observer; checks residency, exclusivity, inclusion
  of in-flight fills, and write-buffer bounds after every transaction.
* :mod:`repro.verify.differ` -- runs one tape through every applicable
  engine and diffs cycle counts, per-cluster statistics, and final
  tag/state arrays.
* :mod:`repro.verify.shrink` -- delta-debugging reduction of a
  diverging tape to a minimal repro (written to ``.repro_cache/repros``).
* :mod:`repro.verify.fuzz` -- the supervised fuzz campaign behind
  ``python -m repro fuzz``.
"""

from .differ import PathResult, TapeDivergence, diff_tape, run_tape
from .fuzz import FuzzDivergence, FuzzReport, default_repro_dir, run_fuzz
from .oracle import FunctionalOracle, OracleViolation
from .shrink import shrink_tape, write_repro
from .tapes import (Tape, TapeApplication, generate_tape, tape_from_json,
                    tape_to_json)

__all__ = [
    "Tape", "TapeApplication", "generate_tape", "tape_from_json",
    "tape_to_json",
    "FunctionalOracle", "OracleViolation",
    "PathResult", "TapeDivergence", "diff_tape", "run_tape",
    "shrink_tape", "write_repro",
    "FuzzDivergence", "FuzzReport", "default_repro_dir", "run_fuzz",
]
