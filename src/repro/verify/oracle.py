"""A slow, obviously-correct functional model of the coherent SCCs.

:class:`FunctionalOracle` is an interleaver observer (so attaching it
automatically routes the run through the generic loop) that maintains
its own dict-based MESI line-state map per cluster and re-derives every
protocol transition from first principles -- independently of
:mod:`repro.core.coherence`, whose optimized bookkeeping it is checking.

Before each access is simulated the oracle verifies the machine against
the model state left by the *previous* access, then applies the current
access to the model; :meth:`FunctionalOracle.verify_final` closes the
loop after the run.  Four invariants are checked every transaction:

1. **Residency**: each SCC array holds exactly the (line, state) map
   the model predicts -- tags, states, and (for set-associative
   arrays) LRU-driven evictions all included.
2. **Exclusivity**: :meth:`CoherenceController.check_exclusivity`
   returns ``None``, and independently the model never holds a
   MODIFIED/EXCLUSIVE line in more than one place.
3. **Inclusion of in-flight fills**: every ``note_fill`` entry refers
   to a resident line (:meth:`SharedClusterCache.stale_inflight`), so
   no stale fill-ready time can leak across an invalidation.
4. **Write-buffer bound**: no bank's buffer ever exceeds
   ``write_buffer_depth`` entries
   (:meth:`BankInterconnect.buffered_writes`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.cache import EXCLUSIVE, MODIFIED, SHARED

__all__ = ["FunctionalOracle", "OracleViolation"]


class OracleViolation(AssertionError):
    """The machine state contradicts the functional model."""


class _RefCache:
    """Reference tag array: per-set MRU-first lists, mirroring both
    ``DirectMappedArray`` (associativity 1) and the LRU
    ``SetAssociativeArray`` through one obviously-correct structure."""

    def __init__(self, num_lines: int, associativity: int):
        self.associativity = associativity
        self.num_sets = num_lines // associativity
        self._sets: List[List[List[int]]] = [
            [] for _ in range(self.num_sets)]

    def _bucket(self, line: int) -> List[List[int]]:
        return self._sets[line % self.num_sets]

    def lookup(self, line: int) -> Optional[int]:
        for entry in self._bucket(line):
            if entry[0] == line:
                return entry[1]
        return None

    def touch(self, line: int) -> None:
        bucket = self._bucket(line)
        for position, entry in enumerate(bucket):
            if entry[0] == line:
                if position:
                    del bucket[position]
                    bucket.insert(0, entry)
                return

    def set_state(self, line: int, state: int) -> None:
        for entry in self._bucket(line):
            if entry[0] == line:
                entry[1] = state
                return
        raise KeyError(line)

    def install(self, line: int, state: int) -> None:
        bucket = self._bucket(line)
        for entry in bucket:
            if entry[0] == line:
                entry[1] = state
                self.touch(line)
                return
        if len(bucket) >= self.associativity:
            bucket.pop()
        bucket.insert(0, [line, state])

    def invalidate(self, line: int) -> bool:
        bucket = self._bucket(line)
        for position, entry in enumerate(bucket):
            if entry[0] == line:
                del bucket[position]
                return True
        return False

    def resident(self) -> Dict[int, int]:
        return {entry[0]: entry[1]
                for bucket in self._sets for entry in bucket}


class FunctionalOracle:
    """Interleaver observer that shadow-executes the coherence protocol."""

    def __init__(self, system):
        self.system = system
        config = system.config
        self._mesi = config.protocol == "mesi"
        self._shift = config.line_offset_bits
        self._cluster_of = config.cluster_of
        self._models = [_RefCache(config.scc_lines, config.associativity)
                        for _ in range(config.clusters)]
        self.accesses_checked = 0

    # ------------------------------------------------------------------
    # Model transitions (the "obviously correct" protocol)
    # ------------------------------------------------------------------

    def _apply(self, cluster: int, line: int, is_write: bool) -> None:
        model = self._models[cluster]
        state = model.lookup(line)
        if not is_write:
            if state is not None:
                model.touch(line)
                return
            # Read miss: remote dirty/clean-exclusive copies downgrade
            # to SHARED; install EXCLUSIVE only under MESI when nobody
            # else holds the line.
            held = False
            for other_id, other in enumerate(self._models):
                if other_id == cluster:
                    continue
                remote = other.lookup(line)
                if remote is None:
                    continue
                held = True
                if remote in (MODIFIED, EXCLUSIVE):
                    other.set_state(line, SHARED)
            model.install(line, EXCLUSIVE if self._mesi and not held
                          else SHARED)
            return
        if state in (MODIFIED, EXCLUSIVE):
            model.set_state(line, MODIFIED)
            model.touch(line)
            return
        for other_id, other in enumerate(self._models):
            if other_id != cluster:
                other.invalidate(line)
        if state == SHARED:
            model.touch(line)
            model.set_state(line, MODIFIED)
        else:
            model.install(line, MODIFIED)

    # ------------------------------------------------------------------
    # Machine-vs-model verification
    # ------------------------------------------------------------------

    def _verify(self) -> None:
        system = self.system
        for cluster_id, cluster in enumerate(system.clusters):
            scc = cluster.scc
            actual = dict(scc.array.resident_lines())
            expected = self._models[cluster_id].resident()
            if actual != expected:
                self._residency_error(cluster_id, expected, actual)
            stale = scc.stale_inflight()
            if stale:
                raise OracleViolation(
                    f"cluster {cluster_id} tracks in-flight fills for "
                    f"non-resident lines {sorted(stale)}")
            icn = scc.interconnect
            for bank in range(icn.num_banks):
                held = icn.buffered_writes(bank)
                if held > icn.write_buffer_depth:
                    raise OracleViolation(
                        f"cluster {cluster_id} bank {bank} buffers "
                        f"{held} writes (depth {icn.write_buffer_depth})")
        checker = getattr(system.coherence, "check_exclusivity", None)
        if checker is not None:
            bad_line = checker()
            if bad_line is not None:
                raise OracleViolation(
                    f"machine violates MODIFIED-exclusivity on line "
                    f"{bad_line:#x}")
        owners: Dict[int, int] = {}
        sharers: Dict[int, int] = {}
        for cluster_id, model in enumerate(self._models):
            for line, state in model.resident().items():
                sharers[line] = sharers.get(line, 0) + 1
                if state in (MODIFIED, EXCLUSIVE):
                    owners[line] = owners.get(line, 0) + 1
        for line, count in owners.items():
            if count > 1 or sharers[line] > 1:
                raise OracleViolation(
                    f"model violates MODIFIED-exclusivity on line "
                    f"{line:#x}")

    def _residency_error(self, cluster_id: int, expected: Dict[int, int],
                         actual: Dict[int, int]) -> None:
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        wrong = sorted(line for line in set(expected) & set(actual)
                       if expected[line] != actual[line])
        raise OracleViolation(
            f"cluster {cluster_id} array diverges from the functional "
            f"model after {self.accesses_checked} accesses: "
            f"missing={missing} unexpected={extra} wrong-state="
            f"{[(line, expected[line], actual[line]) for line in wrong]}")

    # ------------------------------------------------------------------
    # Observer interface
    # ------------------------------------------------------------------

    def on_access(self, proc: int, addr: int, is_write: bool) -> None:
        # Called just before the machine simulates the access: the
        # machine still reflects the previous transaction, which is the
        # one the model already applied.
        self._verify()
        self._apply(self._cluster_of(proc), addr >> self._shift, is_write)
        self.accesses_checked += 1

    def verify_final(self) -> None:
        """Check the state left by the last transaction."""
        self._verify()

    # Synchronization shapes timing, not cache contents.
    def on_acquire(self, proc: int, lock_id: int) -> None:
        pass

    def on_release(self, proc: int, lock_id: int) -> None:
        pass

    def on_barrier_arrive(self, proc: int, barrier_id: int) -> None:
        pass

    def on_barrier_release(self, barrier_id: int) -> None:
        pass

    def on_enqueue(self, proc: int, queue_id: int) -> None:
        pass

    def on_dequeue(self, proc: int, queue_id: int,
                   got_item: bool) -> None:
        pass
