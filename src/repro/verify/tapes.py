"""Seeded adversarial tape generation.

A *tape* is a machine configuration plus one packed event stream per
processor -- the exact input shape the packed fast path and the fused
ladder consume.  The generator is deliberately hostile: it aliases a
handful of cache indexes across several tags (so fills, evictions, and
invalidations constantly collide), mixes every packed opcode including
lock-, barrier- and task-queue synchronization, and samples machine
geometries across the whole supported envelope (1-8 processors over 1-4
clusters, MSI and MESI, direct-mapped and 2-way arrays, write buffering
on and off, optional instruction-cache modelling).

Generation is a pure function of the seed, so a tape never needs to be
stored to be reproduced -- but tapes also round-trip through JSON
(:func:`tape_to_json`) for the shrunk repros committed as regression
tests.
"""

from __future__ import annotations

import json
import random
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..core.config import SystemConfig
from ..trace.packed import (OP_BARRIER, OP_COMPUTE, OP_DEQUEUE,
                            OP_ENQUEUE, OP_IFETCH, OP_LOCK_ACQ,
                            OP_LOCK_REL, OP_READ, OP_READ_SPAN, OP_WRITE,
                            OP_WRITE_SPAN, PackedChunk, event_count)

__all__ = ["TAPE_FORMAT_VERSION", "Tape", "TapeApplication",
           "generate_tape", "tape_to_json", "tape_from_json"]

TAPE_FORMAT_VERSION = 1


@dataclass
class Tape:
    """One differential-test input: a machine and its event streams."""

    seed: str
    """Provenance only; replaying a tape never re-derives from it."""

    config_kwargs: Dict[str, object]
    streams: Dict[int, List[int]]
    """Packed ints per machine-global processor id."""

    def config(self) -> SystemConfig:
        return SystemConfig(**self.config_kwargs)

    def total_events(self) -> int:
        """Events across all streams (spans counted element-wise)."""
        return sum(event_count(s) for s in self.streams.values())

    def replaced(self, streams: Dict[int, List[int]]) -> "Tape":
        """The same machine driven by different streams (shrinking)."""
        return Tape(seed=self.seed, config_kwargs=dict(self.config_kwargs),
                    streams=streams)


class TapeApplication:
    """Adapter presenting a tape as a traced application: each stream is
    yielded as a single :class:`PackedChunk`, identically to every
    execution path."""

    def __init__(self, tape: Tape):
        self.tape = tape

    def processes(self, config: SystemConfig) -> Dict[int, Iterator]:
        return {pid: iter([PackedChunk(array("q", stream))])
                for pid, stream in sorted(self.tape.streams.items())}


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def _sample_config(rng: random.Random) -> Dict[str, object]:
    clusters = rng.choice((1, 1, 2, 3, 4))
    ppc = rng.choice((1, 1, 2))
    if clusters * ppc > 8:
        ppc = 1
    associativity = 1 if rng.random() < 0.8 else 2
    # Small arrays on purpose: 16-128 lines keeps every tag/index in
    # play, so a few dozen events already exercise eviction and
    # aliasing.  num_banks = 4*ppc <= 8 <= lines always holds.
    lines = rng.choice((16, 32, 64, 128))
    kwargs: Dict[str, object] = dict(
        clusters=clusters,
        processors_per_cluster=ppc,
        scc_size=lines * 16,
        associativity=associativity,
        protocol=rng.choice(("msi", "mesi")),
        line_size=16,
        memory_latency=rng.randrange(20, 121),
        bus_occupancy=rng.randrange(1, 9),
        upgrade_bus_occupancy=rng.randrange(1, 5),
        write_buffer_depth=rng.choice((1, 2, 4, 8)),
        stall_on_writes=rng.random() < 0.1,
        bank_cycle_time=1 if rng.random() < 0.8 else 2,
        lock_overhead=rng.randrange(1, 17),
        barrier_overhead=rng.randrange(1, 33),
    )
    if rng.random() < 0.2:
        kwargs.update(model_icache=True, icache_size=256,
                      icache_line_size=32,
                      icache_miss_latency=rng.randrange(20, 101))
    return kwargs


def _address_pools(rng: random.Random,
                   config: SystemConfig) -> Dict[int, List[int]]:
    """Shared (pool key -1) and per-processor private byte addresses.

    Addresses are built as ``line = tag * num_sets + index`` over a few
    indexes and tags, so distinct lines deliberately collide on the same
    array slot -- the aliasing that flushes out stale fill tracking and
    victim-handling bugs.
    """
    num_sets = config.scc_lines // config.associativity
    indexes = rng.sample(range(num_sets), k=min(4, num_sets))
    line_size = config.line_size
    shared = [(tag * num_sets + index) * line_size + offset
              for tag in range(4)
              for index in indexes
              for offset in (0, 8)]
    pools = {-1: shared}
    for proc in range(config.total_processors):
        pools[proc] = [((8 + proc) * num_sets + index) * line_size
                       for index in indexes]
    return pools


def _emit_body(rng: random.Random, buf: List[int], proc: int,
               pools: Dict[int, List[int]], config: SystemConfig) -> None:
    def pick_addr() -> int:
        pool = pools[-1] if rng.random() < 0.75 else pools[proc]
        return rng.choice(pool)

    for _ in range(rng.randrange(5, 31)):
        r = rng.random()
        if r < 0.30:
            buf.extend((OP_READ, pick_addr()))
        elif r < 0.55:
            buf.extend((OP_WRITE, pick_addr()))
        elif r < 0.63:
            buf.extend((OP_COMPUTE, rng.randrange(0, 40)))
        elif r < 0.71:
            op = OP_READ_SPAN if rng.random() < 0.5 else OP_WRITE_SPAN
            base = pick_addr() & ~(config.line_size - 1)
            buf.extend((op, base, rng.randrange(2, 7) * config.line_size,
                        config.line_size))
        elif r < 0.78 and config.model_icache:
            buf.extend((OP_IFETCH,
                        rng.randrange(16) * config.icache_line_size,
                        rng.randrange(1, 8)))
        elif r < 0.90:
            # A lock-scoped critical section; locks never span a body,
            # so generated tapes cannot deadlock.
            lock_id = rng.randrange(3)
            buf.extend((OP_LOCK_ACQ, lock_id))
            for _ in range(rng.randrange(1, 4)):
                op = OP_WRITE if rng.random() < 0.5 else OP_READ
                buf.extend((op, rng.choice(pools[-1])))
            buf.extend((OP_LOCK_REL, lock_id))
        else:
            queue_id = rng.randrange(2)
            if rng.random() < 0.5:
                buf.extend((OP_ENQUEUE, queue_id, rng.randrange(100)))
            else:
                buf.extend((OP_DEQUEUE, queue_id))


def generate_tape(seed) -> Tape:
    """The tape for ``seed`` (any value with a stable ``str``)."""
    rng = random.Random(str(seed))
    config_kwargs = _sample_config(rng)
    config = SystemConfig(**config_kwargs)
    pools = _address_pools(rng, config)
    procs = config.total_processors
    streams: Dict[int, List[int]] = {proc: [] for proc in range(procs)}
    for barrier_id in range(rng.randrange(1, 4)):
        for proc in range(procs):
            _emit_body(rng, streams[proc], proc, pools, config)
        # Every round ends at a global barrier: all processors arrive,
        # so multi-processor tapes stay deadlock-free by construction.
        for proc in range(procs):
            streams[proc].extend((OP_BARRIER, barrier_id, procs))
    return Tape(seed=str(seed), config_kwargs=config_kwargs,
                streams=streams)


# ----------------------------------------------------------------------
# Persistence (shrunk repros)
# ----------------------------------------------------------------------

def tape_to_json(tape: Tape) -> str:
    return json.dumps({
        "version": TAPE_FORMAT_VERSION,
        "seed": tape.seed,
        "config": tape.config_kwargs,
        "streams": {str(proc): list(stream)
                    for proc, stream in sorted(tape.streams.items())},
    }, sort_keys=True, indent=1)


def tape_from_json(text: str) -> Tape:
    payload = json.loads(text)
    if payload.get("version") != TAPE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported tape format {payload.get('version')!r}")
    return Tape(seed=str(payload["seed"]),
                config_kwargs=dict(payload["config"]),
                streams={int(proc): list(stream)
                         for proc, stream in payload["streams"].items()})
