"""Command-line interface: ``python -m repro``.

Three subcommands cover the library's everyday uses without writing any
Python:

* ``simulate`` -- run one benchmark on one machine configuration and
  print the headline statistics;
* ``profile`` -- run one benchmark with cycle-level instrumentation,
  print utilization timelines, and optionally export a Chrome-trace
  JSON that opens in ``ui.perfetto.dev``;
* ``sweep`` -- run a benchmark over the paper's processor-cache grid
  (optionally on several worker processes) and print its speedup table
  and figure series;
* ``report`` -- regenerate a specific table or figure of the paper
  (cost-model ones instantly, simulation ones via the cached sweeps);
* ``model`` -- the :mod:`repro.model` analytical surrogate: predict a
  row's miss-ratio curve without simulation, or cross-validate the
  model against the simulator and gate on the aggregate error;
* ``bench`` -- time the simulator itself (packed fast path vs the
  event-object path, trace-cached sweep vs instrumented resimulation)
  and optionally write the numbers to a JSON file;
* ``fuzz`` -- differentially verify the three timing engines against
  each other and a functional oracle over seeded adversarial tapes,
  shrinking any divergence to a minimal repro;
* ``serve`` -- run the sweep fabric: an HTTP broker with in-process
  workers sharing the node's result/trace cache as the artifact store;
* ``submit`` -- send a sweep to a running fabric, stream its per-point
  progress, and print the same tables ``sweep`` would.

Examples::

    python -m repro simulate barnes-hut --procs 2 --scc 8KB
    python -m repro simulate mp3d --procs 4 --scc 4KB --organization private
    python -m repro profile mp3d --procs 8 --scc 4KB --trace-out mp3d.json
    python -m repro sweep cholesky --profile quick --jobs 4
    python -m repro sweep mp3d --profile quick --fidelity analytical
    python -m repro model mp3d --profile quick --procs 1
    python -m repro model --validate --profile quick
    python -m repro report table6
    python -m repro bench --repeat 3 --out BENCH.json
    python -m repro fuzz --seed 0 --budget 200
    python -m repro serve --port 8765 --workers 4
    python -m repro submit mp3d --url http://127.0.0.1:8765 --profile quick
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.config import KB, SystemConfig
from .experiments.spec import KNOWN_BENCHMARKS
from .simulation import run_simulation
from .trace.engine import BACKEND_CHOICES

__all__ = ["main"]

BENCHMARKS = KNOWN_BENCHMARKS

SIMULATION_REPORTS = ("figure2", "table3", "table4", "figure3", "figure4",
                      "figure5", "figure6", "table6", "table7")
MODEL_REPORTS = ("table5", "costs")


def parse_size(text: str) -> int:
    """Parse ``8KB``/``4mb``/``512B``/``4096`` into bytes.

    Suffixes are case-insensitive (``8KB``, ``8kb``, ``8Kb`` all work);
    plain integers are bytes.
    """
    cleaned = text.strip().upper().replace(" ", "")
    try:
        if cleaned.endswith("MB"):
            return int(cleaned[:-2]) * KB * KB
        if cleaned.endswith("KB"):
            return int(cleaned[:-2]) * KB
        if cleaned.endswith("B"):
            return int(cleaned[:-1])
        return int(cleaned)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse size {text!r}; accepted forms: plain bytes "
            f"(4096), B (512B), KB (8KB), MB (1MB) -- any letter case"
        ) from None


def _parse_int_list(text: str):
    """Parse ``1,2,4`` into a tuple of ints."""
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cannot parse {text!r}; expected comma-separated integers "
            f"like 1,2,4") from None


def _parse_size_list(text: str):
    """Parse ``4KB,8KB,64KB`` into a tuple of byte counts."""
    return tuple(parse_size(part) for part in text.split(",")
                 if part.strip())


def _parse_str_list(text: str):
    """Parse ``mp3d,cholesky`` into a tuple of names."""
    return tuple(part.strip() for part in text.split(",")
                 if part.strip())


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    """The sweep-grid knobs shared by ``sweep`` and ``submit``; they
    feed :meth:`SweepSpec.from_cli_args`, the single CLI-to-spec path."""
    parser.add_argument("--profile", default=None,
                        choices=("quick", "paper"),
                        help="workload sizing (default: REPRO_PROFILE)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="simulate uncached grid points on N worker "
                             "processes (default: serial)")
    parser.add_argument("--procs", type=_parse_int_list, default=None,
                        metavar="LIST",
                        help="processors per cluster, comma-separated "
                             "(default: 1,2,4,8)")
    parser.add_argument("--ladder", type=_parse_size_list, default=None,
                        metavar="LIST",
                        help="paper SCC sizes, comma-separated, e.g. "
                             "4KB,8KB,16KB (default: the full ladder)")
    parser.add_argument("--no-instrument", action="store_true",
                        help="skip the per-point observability digest "
                             "(keeps simulations on the packed fast "
                             "path)")
    parser.add_argument("--no-fused", action="store_true",
                        help="disable the one-pass multi-configuration "
                             "ladder engine")
    parser.add_argument("--fidelity", default="fused",
                        choices=("analytical", "fused", "full"),
                        help="resolution tier: analytical prices every "
                             "point from one recorded tape per row "
                             "(repro.model, no simulation), fused allows "
                             "the exact replay engines (default), full "
                             "forces per-point simulation")
    parser.add_argument("--backend", default=None,
                        choices=BACKEND_CHOICES,
                        help="packed-replay engine for simulated points "
                             "(execution knob: results and caches are "
                             "backend-independent; default: "
                             "$REPRO_ENGINE, then auto)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries per failing point before it is "
                             "quarantined (default 2)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any point taking longer "
                             "than this (default: unlimited)")
    parser.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base sleep before a retry, scaled by the "
                             "attempt number (default 0.5)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shared-cache multiprocessor design-space "
                    "reproduction (Nayfeh & Olukotun, ISCA 1994)")
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run one benchmark on one configuration")
    simulate.add_argument("benchmark", choices=BENCHMARKS)
    simulate.add_argument("--procs", type=int, default=2,
                          help="processors per cluster (default 2)")
    simulate.add_argument("--scc", type=parse_size, default=8 * KB,
                          help="simulated SCC size, e.g. 8KB")
    simulate.add_argument("--clusters", type=int, default=None,
                          help="clusters (default: 4; multiprogramming: 1)")
    simulate.add_argument("--organization", default="shared-scc",
                          choices=("shared-scc", "private"))
    simulate.add_argument("--associativity", type=int, default=1)
    simulate.add_argument("--line-size", type=parse_size, default=16)

    profile = commands.add_parser(
        "profile",
        help="run one benchmark instrumented; print utilization "
             "timelines and export a Perfetto trace")
    profile.add_argument("benchmark", choices=BENCHMARKS)
    profile.add_argument("--procs", type=int, default=2,
                         help="processors per cluster (default 2)")
    profile.add_argument("--scc", type=parse_size, default=8 * KB,
                         help="simulated SCC size, e.g. 8KB")
    profile.add_argument("--clusters", type=int, default=None,
                         help="clusters (default: 4; multiprogramming: 1)")
    profile.add_argument("--organization", default="shared-scc",
                         choices=("shared-scc", "private"))
    profile.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write a Chrome-trace JSON viewable in "
                              "ui.perfetto.dev")
    profile.add_argument("--timeline-bins", type=int, default=64,
                         help="bins the printed timelines collapse to "
                              "(default 64)")
    profile.add_argument("--bin-width", type=int, default=512,
                         help="timeline resolution in cycles while "
                              "recording (default 512)")
    profile.add_argument("--max-events", type=int, default=100_000,
                         help="raw events retained for the trace export "
                              "(deterministically decimated beyond this)")

    sweep = commands.add_parser(
        "sweep", help="run the paper's grid for one benchmark "
                      "(checkpointed; resumable after a crash)")
    sweep.add_argument("benchmark", choices=BENCHMARKS)
    _add_grid_options(sweep)
    sweep.add_argument("--resume", action="store_true",
                       help="resume this sweep from its session journal, "
                            "recomputing only points not yet completed")

    model = commands.add_parser(
        "model",
        help="analytical surrogate: predict a row without simulation, "
             "or cross-validate the model against the simulator")
    model.add_argument("benchmark", nargs="?", choices=BENCHMARKS,
                       help="predict this benchmark's miss-ratio curve "
                            "(omit with --validate)")
    model.add_argument("--validate", action="store_true",
                       help="cross-validate predictions against the "
                            "simulator over the paper grid and fail if "
                            "the aggregate error exceeds --threshold")
    model.add_argument("--profile", default=None,
                       choices=("quick", "paper"),
                       help="workload sizing (default: REPRO_PROFILE)")
    model.add_argument("--procs", type=_parse_int_list, default=None,
                       metavar="LIST",
                       help="processors per cluster, comma-separated "
                            "(default: 1,2,4,8; prediction mode only)")
    model.add_argument("--ladder", type=_parse_size_list, default=None,
                       metavar="LIST",
                       help="paper SCC sizes, comma-separated "
                            "(default: the full ladder)")
    model.add_argument("--threshold", type=float, default=0.05,
                       metavar="MAE",
                       help="largest acceptable aggregate mean absolute "
                            "miss-ratio error (default 0.05)")
    model.add_argument("--out", default=None, metavar="PATH",
                       help="also write the full report as JSON")

    report = commands.add_parser(
        "report", help="regenerate one table/figure of the paper")
    report.add_argument("experiment",
                        choices=SIMULATION_REPORTS + MODEL_REPORTS)
    report.add_argument("--profile", default=None,
                        choices=("quick", "paper"))

    bench = commands.add_parser(
        "bench", help="time the simulator (packed vs event-object paths)")
    bench.add_argument("--repeat", type=int, default=3, metavar="N",
                       help="take the best of N timed runs (default 3)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="also write the measurements as JSON")
    bench.add_argument("--scenario", default="all",
                       choices=("all", "point", "packed", "sweep",
                                "fused", "analytical"),
                       help="point: one quick Barnes-Hut configuration; "
                            "packed: a cache-resident uniprocessor "
                            "replay timed on every available engine "
                            "backend; sweep: a Figure-5-style grid; "
                            "fused: the one-pass multi-configuration "
                            "ladder vs per-size replay; analytical: the "
                            "repro.model surrogate vs the fused ladder "
                            "(default: all)")
    bench.add_argument("--backend", default=None,
                       choices=BACKEND_CHOICES,
                       help="replay engine for the simulated scenarios "
                            "(default: $REPRO_ENGINE, then auto)")

    fuzz = commands.add_parser(
        "fuzz", help="differentially fuzz the three timing engines "
                     "(generic vs packed fast path vs fused ladder, "
                     "checked against a functional oracle)")
    fuzz.add_argument("--seed", type=int, default=0, metavar="N",
                      help="master seed naming the tape set (default 0)")
    fuzz.add_argument("--budget", type=int, default=200, metavar="N",
                      help="tapes to generate and diff (default 200)")
    fuzz.add_argument("--shrink", action="store_true", default=True,
                      dest="shrink",
                      help="delta-debug diverging tapes to minimal "
                           "repros (default)")
    fuzz.add_argument("--no-shrink", action="store_false", dest="shrink",
                      help="persist diverging tapes unshrunk")
    fuzz.add_argument("--out-dir", default=None, metavar="DIR",
                      help="repro destination "
                           "(default .repro_cache/repros)")

    serve = commands.add_parser(
        "serve", help="run the sweep fabric service: HTTP broker plus "
                      "in-process workers over a shared artifact store")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default 8765; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="in-process worker threads (default: one "
                            "per CPU)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="artifact store directory (default: the "
                            "local result cache, $REPRO_CACHE_DIR or "
                            ".repro_cache -- local sweeps and the "
                            "fabric then share warmth)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="SECONDS",
                       help="work-unit lease without a heartbeat before "
                            "it is re-leased (default 30)")
    serve.add_argument("--unit-attempts", type=int, default=3,
                       metavar="N",
                       help="lease attempts per unit before its points "
                            "are quarantined (default 3)")

    submit = commands.add_parser(
        "submit", help="submit a sweep to a running fabric service and "
                       "stream its progress")
    submit.add_argument("benchmark", choices=BENCHMARKS)
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="fabric service URL (default "
                             "http://127.0.0.1:8765)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job handle and return without "
                             "streaming progress or results")
    _add_grid_options(submit)

    optimize = commands.add_parser(
        "optimize",
        help="seeded Pareto-frontier search over the cluster design "
             "space (procs, SCC size, associativity, banks, protocol, "
             "write buffers) for the best cost/performance")
    optimize.add_argument("--benchmarks", type=_parse_str_list,
                          default=("mp3d",), metavar="LIST",
                          help="benchmarks the fitness averages over, "
                               "comma-separated (default: mp3d)")
    optimize.add_argument("--profile", default=None,
                          choices=("quick", "paper"),
                          help="workload sizing (default: REPRO_PROFILE)")
    optimize.add_argument("--seed", type=int, default=0, metavar="N",
                          help="search seed; the same seed always "
                               "returns the same frontier (default 0)")
    optimize.add_argument("--generations", type=int, default=3,
                          metavar="N",
                          help="genetic generations (default 3)")
    optimize.add_argument("--population", type=int, default=12,
                          metavar="N",
                          help="candidates per generation (default 12)")
    optimize.add_argument("--promote", type=int, default=4, metavar="N",
                          help="triage survivors promoted to the exact "
                               "fused tier per generation (default 4)")
    optimize.add_argument("--procs", type=_parse_int_list, default=None,
                          metavar="LIST",
                          help="processors-per-cluster domain "
                               "(default: 1,2,4,8)")
    optimize.add_argument("--ladder", type=_parse_size_list, default=None,
                          metavar="LIST",
                          help="paper SCC size domain, e.g. 4KB,8KB "
                               "(default: the full ladder)")
    optimize.add_argument("--no-knobs", action="store_true",
                          help="search only the paper's (procs, SCC) "
                               "plane; hold associativity, banks, "
                               "protocol and write buffers at presets")
    optimize.add_argument("--budget-analytical", type=int, default=None,
                          metavar="N",
                          help="analytical-tier point budget "
                               "(default 4096)")
    optimize.add_argument("--budget-fused", type=int, default=None,
                          metavar="N",
                          help="fused-tier point budget (default 512)")
    optimize.add_argument("--budget-full", type=int, default=None,
                          metavar="N",
                          help="full-confirm point budget (default 128)")
    optimize.add_argument("--no-confirm", action="store_true",
                          help="skip the full-fidelity frontier confirm "
                               "pass")
    optimize.add_argument("--url", default=None, metavar="URL",
                          help="evaluate candidate batches through a "
                               "running fabric service instead of "
                               "locally")
    optimize.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for uncached points "
                               "(local evaluation only)")
    optimize.add_argument("--backend", default=None,
                          choices=BACKEND_CHOICES,
                          help="packed-replay engine for simulated "
                               "points (default: $REPRO_ENGINE, then "
                               "auto)")

    commands.add_parser("list", help="list benchmarks and experiments")
    return parser


def _profile(name: Optional[str]):
    from .experiments import PROFILES, active_profile
    return PROFILES[name] if name else active_profile()


def _cli_config(args) -> SystemConfig:
    """Machine configuration shared by ``simulate`` and ``profile``."""
    clusters = args.clusters
    if clusters is None:
        clusters = 1 if args.benchmark == "multiprogramming" else 4
    return SystemConfig(
        clusters=clusters,
        processors_per_cluster=args.procs,
        scc_size=args.scc,
        associativity=getattr(args, "associativity", 1),
        line_size=getattr(args, "line_size", 16),
        cluster_organization=args.organization,
        model_icache=args.benchmark == "multiprogramming")


def _cmd_simulate(args) -> int:
    config = _cli_config(args)
    clusters = config.clusters
    from .experiments import PROFILES
    workload = PROFILES["quick"].workload(args.benchmark)
    result = run_simulation(config, workload)
    stats = result.stats
    total = stats.total_scc
    print(f"benchmark          : {args.benchmark}")
    print(f"configuration      : {clusters} clusters x {args.procs} procs, "
          f"{args.scc} B SCC, {args.organization}")
    print(f"execution time     : {stats.execution_time:,} cycles")
    print(f"data references    : {total.accesses:,}")
    print(f"read miss rate     : {100 * total.read_miss_rate:.2f} %")
    print(f"invalidations      : {stats.total_invalidations:,}")
    print(f"trace events       : {result.events_processed:,}")
    return 0


def _sweep_progress(point, status, done, total, counters) -> None:
    """Per-point progress line (journal-backed sessions make every
    point's completion durable, so print it as it lands)."""
    from .experiments import format_size
    procs, paper_bytes = point
    print(f"  [{done}/{total}] procs={procs} "
          f"scc={format_size(paper_bytes)} {status}", flush=True)


def _cmd_sweep(args) -> int:
    from .experiments import (SweepSession, SweepSpec,
                              default_session_dir, format_size)
    from .trace.engine import engine_degradation
    spec = SweepSpec.from_cli_args(args)
    session = SweepSession(spec, session_dir=default_session_dir(),
                           resume=args.resume,
                           progress=_sweep_progress)
    result = session.run()
    print(result.summary(), flush=True)
    degraded = engine_degradation(spec.backend)
    if degraded is not None:
        print(f"engine: {degraded}", flush=True)
    if result.quarantined:
        print()
        print(f"QUARANTINED {len(result.quarantined)} point(s):")
        for (procs, paper_bytes), reason in sorted(
                result.quarantined.items()):
            print(f"  procs={procs} scc={format_size(paper_bytes)}: "
                  f"{reason}")
        print("the rest of the grid is journaled; fix the cause and "
              "rerun with --resume")
        return 1
    print()
    print(_render_grid(args.benchmark, result.sweep))
    return 0


def _render_grid(benchmark: str, sweep) -> str:
    """The paper figures for a full grid, or the raw point table for a
    narrowed one (shared by ``sweep`` and ``submit``)."""
    from .experiments import (render_figure, render_figure5,
                              render_figure6, render_speedups)
    if (8, 512 * KB) not in sweep:
        # A narrowed --procs/--ladder grid lacks the paper figures'
        # normalization base; print the raw per-point table instead.
        return _render_sweep_points(benchmark, sweep)
    if benchmark == "multiprogramming":
        return f"{render_figure5(sweep)}\n\n{render_figure6(sweep)}"
    return (f"{render_figure(benchmark, sweep)}\n\n"
            f"{render_speedups(benchmark, sweep)}")


def _render_sweep_points(benchmark: str, sweep) -> str:
    from .experiments import format_size, render_table
    rows = [[procs, format_size(paper_bytes),
             f"{stats.execution_time:,}",
             f"{100 * stats.read_miss_rate:.2f} %"]
            for (procs, paper_bytes), stats in sorted(sweep.items())]
    return render_table(
        f"{benchmark}: sweep points",
        ["procs/cl", "SCC size", "exec cycles", "read miss"], rows)


_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def _sparkline(values, peak: float = None) -> str:
    """Render ``values`` as a unicode bar-per-bin strip."""
    top = peak if peak else (max(values) if values else 0.0)
    if top <= 0:
        return " " * len(values)
    scale = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(scale, int(round(scale * value / top)))]
        for value in values)


def _cmd_profile(args) -> int:
    from .instrument import InstrumentationProbe, write_chrome_trace
    from .experiments import PROFILES
    config = _cli_config(args)
    probe = InstrumentationProbe(bin_width=args.bin_width,
                                 max_events=args.max_events)
    workload = PROFILES["quick"].workload(args.benchmark)
    result = run_simulation(config, workload, instrumentation=probe)
    stats = result.stats
    bins = max(1, args.timeline_bins)
    probe.rebin(bins)

    bus = probe.registry.timeline("bus.occupancy")
    utilization = bus.utilization_series()
    summary = probe.summary()
    print(f"benchmark          : {args.benchmark}")
    print(f"configuration      : {config.clusters} clusters x "
          f"{config.processors_per_cluster} procs, {config.scc_size:,} B "
          f"SCC, {config.cluster_organization}")
    print(f"execution time     : {stats.execution_time:,} cycles")
    print(f"bus transactions   : {int(summary.get('bus_transactions', 0)):,}")
    print(f"bus utilization    : peak "
          f"{100 * summary.get('bus_peak_utilization', 0.0):.1f} %, "
          f"mean {100 * summary.get('bus_mean_utilization', 0.0):.1f} %")
    print(f"bank conflicts     : "
          f"{int(summary.get('bank_conflict_cycles', 0)):,} cycles over "
          f"{int(summary.get('bank_conflict_events', 0)):,} events")
    print(f"write buffer       : peak depth "
          f"{int(summary.get('write_buffer_peak_depth', 0))}, "
          f"{int(summary.get('write_buffer_stall_cycles', 0)):,} "
          f"stall cycles")
    print()
    print(f"bus occupancy ({len(utilization)} bins x "
          f"{bus.bin_width:,} cycles, full block = 100 %):")
    print(f"  [{_sparkline(utilization, peak=1.0)}]")
    conflict = probe.registry.merged("cluster", bins)
    conflict_series = [value for value in conflict.series()]
    if any(conflict_series):
        print("bank conflict + write-buffer pressure:")
        print(f"  [{_sparkline(conflict_series)}]")
    print()
    print("per-processor cycle breakdown (busy / memory / sync):")
    for proc_id, proc in enumerate(stats.processors):
        total = max(1, proc.total_cycles)
        print(f"  proc {proc_id:2d}: "
              f"{100 * proc.busy_cycles / total:5.1f} % / "
              f"{100 * proc.memory_stall_cycles / total:5.1f} % / "
              f"{100 * proc.sync_stall_cycles / total:5.1f} %")
    if args.trace_out:
        path = write_chrome_trace(probe, args.trace_out, config=config)
        recorded = int(summary.get("events_recorded", 0))
        dropped = int(summary.get("events_dropped", 0))
        print()
        print(f"trace written      : {path} ({recorded:,} events kept, "
              f"{dropped:,} decimated) -- open in ui.perfetto.dev")
    return 0


def _cmd_report(args) -> int:
    from . import experiments as exp
    profile = _profile(args.profile)
    if args.experiment == "table5":
        print(exp.render_table5())
        return 0
    if args.experiment == "costs":
        print(exp.render_section4_costs())
        return 0
    if args.experiment in ("figure5", "figure6"):
        sweep = exp.run_sweep(
            exp.SweepSpec.multiprogramming(profile=profile))
        renderer = (exp.render_figure5 if args.experiment == "figure5"
                    else exp.render_figure6)
        print(renderer(sweep))
        return 0
    if args.experiment in ("table6", "table7"):
        sweeps = {name: exp.run_sweep(
                      exp.SweepSpec.parallel(name, profile=profile))
                  for name in ("barnes-hut", "mp3d", "cholesky")}
        sweeps["multiprogramming"] = exp.run_sweep(
            exp.SweepSpec.multiprogramming(profile=profile))
        renderer = (exp.render_table6 if args.experiment == "table6"
                    else exp.render_table7)
        print(renderer(sweeps))
        return 0
    benchmark = {"figure2": "barnes-hut", "table3": "barnes-hut",
                 "table4": "barnes-hut", "figure3": "mp3d",
                 "figure4": "cholesky"}[args.experiment]
    sweep = exp.run_sweep(exp.SweepSpec.parallel(benchmark,
                                                 profile=profile))
    if args.experiment == "table3":
        print(exp.render_speedups(benchmark, sweep, exp.PAPER_TABLE3))
    elif args.experiment == "table4":
        print(exp.render_miss_rates(benchmark, sweep, exp.PAPER_TABLE4))
    else:
        print(exp.render_figure(benchmark, sweep))
    return 0


def _cmd_model(args) -> int:
    import json
    from .experiments import (PAPER_LADDER, SweepSpec,
                              default_session_dir, format_size,
                              render_table, run_sweep)
    from .model import cross_validate
    from .trace.record import default_trace_cache
    profile = _profile(args.profile)
    ladder = args.ladder or PAPER_LADDER
    trace_cache = default_trace_cache()
    if args.validate:
        def progress(benchmark, procs, stage):
            print(f"  {benchmark} procs={procs}: {stage}...", flush=True)

        print(f"cross-validating the analytical model "
              f"({profile.name} profile)...")
        report = cross_validate(profile=profile, ladder=ladder,
                                trace_cache=trace_cache,
                                session_dir=default_session_dir(),
                                progress=progress)
        print()
        rows = [[row["benchmark"], row["procs"],
                 f"{row['mae']:.4f}", f"{row['max_error']:.4f}"]
                for row in report["rows"]]
        print(render_table("analytical vs simulated miss ratios",
                           ["benchmark", "procs/cl", "MAE", "max error"],
                           rows))
        print()
        print(f"aggregate: MAE={report['mae']:.4f} "
              f"max={report['max_error']:.4f} over "
              f"{len(report['rows'])} rows x {len(report['ladder'])} "
              f"sizes")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.out}")
        if report["mae"] > args.threshold:
            print(f"FAIL: aggregate MAE {report['mae']:.4f} exceeds "
                  f"threshold {args.threshold}")
            return 1
        print(f"OK: aggregate MAE {report['mae']:.4f} within "
              f"threshold {args.threshold}")
        return 0
    if not args.benchmark:
        print("model: name a benchmark to predict, or pass --validate",
              file=sys.stderr)
        return 2
    spec = SweepSpec.from_cli_args(args, profile=profile, ladder=ladder,
                                   fidelity="analytical")
    sweep = run_sweep(spec, trace_cache=trace_cache,
                      session_dir=default_session_dir())
    rows = [[procs, format_size(paper_bytes),
             f"{100 * stats.miss_rate:.2f} %",
             f"{100 * stats.read_miss_rate:.2f} %",
             f"{stats.execution_time:,}"]
            for (procs, paper_bytes), stats in sorted(sweep.items())]
    print(render_table(
        f"{args.benchmark}: analytical predictions (no simulation)",
        ["procs/cl", "SCC size", "miss", "read miss", "est. cycles"],
        rows))
    if args.out:
        payload = {f"{procs}/{paper_bytes}": stats.as_dict()
                   for (procs, paper_bytes), stats in sorted(sweep.items())}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _bench_point(repeat: int, backend: Optional[str] = None) -> dict:
    """Quick Barnes-Hut on the paper's 8x8 machine: packed fast path vs
    the event-object generator path (identical statistics, same events)."""
    import time
    from .trace.engine import resolve_backend
    from .workloads.barnes_hut import BarnesHut
    config = SystemConfig.paper_parallel(8, 8 * KB)
    timings = {True: [], False: []}
    events = None
    for _ in range(max(1, repeat)):
        for packed in (True, False):
            workload = BarnesHut(n_bodies=192, steps=2)
            workload.packed = packed
            begin = time.perf_counter()
            result = run_simulation(config, workload, backend=backend)
            timings[packed].append(time.perf_counter() - begin)
            if events is None:
                events = result.events_processed
    packed_s = min(timings[True])
    generator_s = min(timings[False])
    return {
        "workload": "BarnesHut(n_bodies=192, steps=2)",
        "config": "paper_parallel(procs_per_cluster=8, scc=8KB)",
        "backend": resolve_backend(backend),
        "events": events,
        "packed_s": round(packed_s, 4),
        "generator_s": round(generator_s, 4),
        "speedup": round(generator_s / packed_s, 2),
        "packed_events_per_s": int(events / packed_s),
        "repeats": repeat,
    }


def _packed_replay_stream():
    """A cache-resident uniprocessor loop in the packed encoding.

    The working set (8KB data, 8KB of instruction addresses) fits the
    16KB SCC after one cold pass, so replay is dominated by the hit
    path every engine optimizes -- the same regime as the warm inner
    rungs of a sweep.  Built once and replayed as a single chunk per
    run, which is exactly how :class:`~repro.trace.record
    .ReplayApplication` delivers recorded sweeps.
    """
    from array import array
    from .trace.packed import (OP_COMPUTE, OP_IFETCH, OP_READ, OP_WRITE)
    stream = array("q")
    lines = 8 * KB // 32
    for _ in range(200):
        for line_no in range(lines):
            addr = line_no * 32
            stream.extend((OP_IFETCH, (addr * 4) % (8 * KB), 4))
            stream.extend((OP_READ, addr))
            if line_no % 8 == 0:
                stream.extend((OP_WRITE, addr))
            if line_no % 4 == 0:
                stream.extend((OP_COMPUTE, 2))
    return stream


def _bench_packed(repeat: int) -> dict:
    """The packed replay engine ladder on one tape.

    Times the same single-processor replay on every available backend
    (python reference loop, numpy vector tier, native C tier) and
    cross-checks that all of them produce bit-identical statistics.
    ``speedup`` entries are relative to the python loop.

    One untimed warmup replay precedes the timed repeats: sweeps
    replay each recorded tape once per ladder rung, so the number that
    matters is the steady-state rate with the numpy tier's per-stream
    decode cache warm, not the first-touch decode cost.
    """
    import time
    from .trace.engine import available_backends
    from .trace.record import ReplayApplication
    config = SystemConfig.paper_multiprogramming(1, scc_size=16 * KB)
    stream = _packed_replay_stream()
    app = ReplayApplication({0: stream}, name="bench-packed")
    backends = available_backends()
    if "python" not in backends:
        backends.append("python")
    rates = {}
    reference = None
    for name in backends:
        best = None
        run_simulation(config, app, backend=name)  # warmup (decode cache)
        for _ in range(max(1, repeat)):
            begin = time.perf_counter()
            result = run_simulation(config, app, backend=name)
            elapsed = time.perf_counter() - begin
            best = elapsed if best is None else min(best, elapsed)
        if reference is None:
            reference = result
        elif (result.stats.as_dict() != reference.stats.as_dict()
                or result.events_processed != reference.events_processed):
            raise AssertionError(
                f"backend {name} diverges from {backends[0]}")
        rates[name] = result.events_processed / best
    report = {
        "workload": "synthetic cache-resident replay "
                    "(1 processor, 16KB SCC, one packed chunk)",
        "events": reference.events_processed,
        "repeats": repeat,
    }
    python_rate = rates["python"]
    for name, rate in rates.items():
        report[f"{name}_events_per_s"] = int(rate)
        if name != "python":
            report[f"{name}_speedup"] = round(rate / python_rate, 2)
    return report


def _bench_sweep(repeat: int, backend: Optional[str] = None) -> dict:
    """A miss-rate-vs-cache-size curve (Figure 2/5 style) two ways.

    The curve is the multiprogramming workload on one processor across
    the full SCC ladder.  Baseline is how sweeps ran before the packed
    encoding existed: every rung resimulated on the event-object path
    with the observability digest attached.  The fast mode is the
    current sweep pipeline with ``instrument=False``: the stream is
    recorded once (single-processor streams are configuration-
    independent, so the determinism guard holds) and replayed from the
    trace cache at every other rung as packed chunks.  Statistics are
    identical either way; only wall-clock differs.
    """
    import shutil
    import tempfile
    import time
    from pathlib import Path
    from .experiments.runner import (PAPER_LADDER, PROFILES,
                                     InstrumentationProbe, ResultCache)
    from .experiments.session import run_sweep
    from .experiments.spec import SweepSpec
    from .trace.engine import backend_info
    from .trace.record import TraceCache
    profile = PROFILES["quick"]
    ladder = PAPER_LADDER
    procs = (1,)
    icache = max(16 * KB // profile.ladder_scale, 512)

    def grid_configs():
        for procs_per_cluster in procs:
            for paper_bytes in ladder:
                yield SystemConfig.paper_multiprogramming(
                    procs_per_cluster,
                    paper_bytes // profile.ladder_scale).with_updates(
                        icache_size=icache)

    baseline_times = []
    for _ in range(max(1, repeat)):
        begin = time.perf_counter()
        for config in grid_configs():
            workload = profile.multiprogramming()
            workload.packed = False
            probe = InstrumentationProbe(bin_width=4096,
                                         record_events=False)
            run_simulation(config, workload, instrumentation=probe)
        baseline_times.append(time.perf_counter() - begin)

    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    fast_times = []
    try:
        trace_cache = TraceCache(scratch / "traces")
        spec = SweepSpec.from_cli_args(
            argparse.Namespace(), benchmark="multiprogramming",
            profile=profile, ladder=ladder, procs=procs,
            instrument=False, backend=backend)
        for index in range(max(2, repeat + 1)):
            # Fresh result cache each round so every point simulates or
            # replays; the trace cache stays warm after round one.
            begin = time.perf_counter()
            run_sweep(spec, cache=ResultCache(scratch / f"results{index}"),
                      trace_cache=trace_cache)
            fast_times.append(time.perf_counter() - begin)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    baseline_s = min(baseline_times)
    cold_s = fast_times[0]
    warm_s = min(fast_times[1:])
    return {
        "grid": f"multiprogramming quick, ladder={sorted(ladder)}, "
                f"procs={list(procs)}",
        "engine": backend_info(backend),
        "baseline_instrumented_generator_s": round(baseline_s, 4),
        "fast_cold_s": round(cold_s, 4),
        "fast_warm_s": round(warm_s, 4),
        "speedup_cold": round(baseline_s / cold_s, 2),
        "speedup_warm": round(baseline_s / warm_s, 2),
        "repeats": repeat,
    }


def _bench_fused(repeat: int, backend: Optional[str] = None) -> dict:
    """The quick multiprogramming ladder with a warm trace cache, two
    ways: one replay per rung (``fused=False``) versus the one-pass
    multi-configuration engine (:mod:`repro.trace.multiconfig`).  Both
    start from the same recorded tape and produce bit-identical
    RunStats (asserted here); only wall-clock differs.  Both modes run
    on the same requested backend, so with the default ``auto`` on a
    machine with a compiler this is the compiled ladder versus native
    per-size replay.
    """
    import shutil
    import tempfile
    import time
    from pathlib import Path
    from .experiments.runner import PAPER_LADDER, PROFILES, ResultCache
    from .experiments.session import run_sweep
    from .experiments.spec import SweepSpec
    from .trace import multiconfig
    from .trace.engine import backend_info
    from .trace.record import TraceCache
    profile = PROFILES["quick"]
    ladder = PAPER_LADDER
    procs = (1,)
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    timings = {False: [], True: []}
    try:
        trace_cache = TraceCache(scratch / "traces")
        specs = {fused: SweepSpec.from_cli_args(
                     argparse.Namespace(), benchmark="multiprogramming",
                     profile=profile, ladder=ladder, procs=procs,
                     instrument=False, fused=fused, backend=backend)
                 for fused in (False, True)}
        # Record the row's tape once so both modes run trace-warm.
        reference = run_sweep(specs[False],
                              cache=ResultCache(scratch / "warmup"),
                              trace_cache=trace_cache)
        for index in range(max(1, repeat)):
            for fused in (False, True):
                begin = time.perf_counter()
                sweep = run_sweep(
                    specs[fused],
                    cache=ResultCache(scratch / f"results-{fused}-{index}"),
                    trace_cache=trace_cache)
                timings[fused].append(time.perf_counter() - begin)
                if sweep != reference:
                    raise AssertionError(
                        "fused and per-size ladder results diverge")
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    per_size_s = min(timings[False])
    fused_s = min(timings[True])
    return {
        "grid": f"multiprogramming quick, ladder={sorted(ladder)}, "
                f"procs={list(procs)}, warm trace cache",
        "engine": backend_info(backend),
        "ladder_engine": multiconfig.LAST_LADDER_ENGINE,
        "per_size_warm_s": round(per_size_s, 4),
        "fused_warm_s": round(fused_s, 4),
        "speedup": round(per_size_s / fused_s, 2),
        "repeats": repeat,
    }


def _bench_analytical(repeat: int) -> dict:
    """The quick multiprogramming ladder, warm caches, two ways: the
    fused one-pass replay versus the :mod:`repro.model` surrogate.

    The warm-up round records the row's tape (shared by both modes)
    and builds the row profile; timed rounds then get a fresh result
    cache each, so fused pays one pass over the tape while the
    surrogate only prices points from the cached profile.  Exactness
    differs by construction here -- the model is exact on this row --
    but the bench reports the observed error rather than asserting it.
    """
    import shutil
    import tempfile
    import time
    from pathlib import Path
    from .experiments.runner import PAPER_LADDER, PROFILES, ResultCache
    from .experiments.session import run_sweep
    from .experiments.spec import SweepSpec
    from .trace.record import TraceCache
    profile = PROFILES["quick"]
    ladder = PAPER_LADDER
    procs = (1,)
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    timings = {"fused": [], "analytical": []}
    try:
        trace_cache = TraceCache(scratch / "traces")
        specs = {fidelity: SweepSpec.from_cli_args(
                     argparse.Namespace(), benchmark="multiprogramming",
                     profile=profile, ladder=ladder, procs=procs,
                     instrument=False, fidelity=fidelity)
                 for fidelity in ("fused", "analytical")}
        reference = run_sweep(specs["fused"],
                              cache=ResultCache(scratch / "warm-f"),
                              trace_cache=trace_cache)
        surrogate = run_sweep(specs["analytical"],
                              cache=ResultCache(scratch / "warm-a"),
                              trace_cache=trace_cache)
        error = max(abs(surrogate[point].miss_rate
                        - reference[point].miss_rate)
                    for point in reference)
        for index in range(max(1, repeat)):
            for fidelity in ("fused", "analytical"):
                begin = time.perf_counter()
                run_sweep(specs[fidelity],
                          cache=ResultCache(
                              scratch / f"results-{fidelity}-{index}"),
                          trace_cache=trace_cache)
                timings[fidelity].append(time.perf_counter() - begin)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    fused_s = min(timings["fused"])
    analytical_s = min(timings["analytical"])
    return {
        "grid": f"multiprogramming quick, ladder={sorted(ladder)}, "
                f"procs={list(procs)}, warm trace+profile caches",
        "fused_warm_s": round(fused_s, 4),
        "analytical_warm_s": round(analytical_s, 4),
        "speedup": round(fused_s / analytical_s, 2),
        "max_abs_miss_ratio_error": round(error, 6),
        "repeats": repeat,
    }


def _cmd_bench(args) -> int:
    import json
    import platform
    import time
    from .trace.engine import backend_info, engine_degradation
    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": backend_info(args.backend),
    }
    degraded = engine_degradation(args.backend)
    if degraded is not None:
        report["engine_degradation"] = degraded
        print(f"warning: {degraded}")
    if args.scenario in ("all", "point"):
        print("timing quick Barnes-Hut point "
              "(packed vs event-object path)...")
        report["quick_barnes_hut"] = point = _bench_point(args.repeat,
                                                          args.backend)
        print(f"  events          : {point['events']:,}")
        print(f"  backend         : {point['backend']}")
        print(f"  packed          : {point['packed_s']:.3f} s "
              f"({point['packed_events_per_s']:,} events/s)")
        print(f"  event objects   : {point['generator_s']:.3f} s")
        print(f"  speedup         : {point['speedup']:.2f}x")
    if args.scenario in ("all", "packed"):
        print("timing packed replay engines "
              "(python vs numpy vs native on one tape)...")
        report["packed_engines"] = packed = _bench_packed(args.repeat)
        print(f"  events          : {packed['events']:,}")
        for name in ("python", "numpy", "native"):
            rate = packed.get(f"{name}_events_per_s")
            if rate is None:
                continue
            extra = (f" ({packed[f'{name}_speedup']:.1f}x)"
                     if name != "python" else "")
            print(f"  {name:<16}: {rate:,} events/s{extra}")
    if args.scenario in ("all", "sweep"):
        print("timing multiprogramming sweep "
              "(trace-cached vs instrumented resimulation)...")
        report["multiprog_sweep"] = sweep = _bench_sweep(args.repeat,
                                                         args.backend)
        print(f"  baseline        : "
              f"{sweep['baseline_instrumented_generator_s']:.3f} s")
        print(f"  fast (cold)     : {sweep['fast_cold_s']:.3f} s "
              f"({sweep['speedup_cold']:.2f}x)")
        print(f"  fast (warm)     : {sweep['fast_warm_s']:.3f} s "
              f"({sweep['speedup_warm']:.2f}x)")
    if args.scenario in ("all", "fused"):
        print("timing fused multi-configuration ladder "
              "(one pass vs per-size replay, warm trace cache)...")
        report["fused_ladder"] = fused = _bench_fused(args.repeat,
                                                      args.backend)
        print(f"  per-size (warm) : {fused['per_size_warm_s']:.3f} s "
              f"({fused['engine']['resolved']} replay)")
        print(f"  fused (warm)    : {fused['fused_warm_s']:.3f} s "
              f"({fused['ladder_engine']} ladder)")
        print(f"  speedup         : {fused['speedup']:.2f}x")
    if args.scenario in ("all", "analytical"):
        print("timing analytical surrogate "
              "(repro.model vs fused replay, warm caches)...")
        report["analytical_model"] = model = _bench_analytical(args.repeat)
        print(f"  fused (warm)    : {model['fused_warm_s']:.3f} s")
        print(f"  analytical      : {model['analytical_warm_s']:.3f} s")
        print(f"  speedup         : {model['speedup']:.2f}x")
        print(f"  max miss error  : {model['max_abs_miss_ratio_error']}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import os
    from pathlib import Path
    from .fabric import ArtifactStore, Broker, FabricService, Worker
    import threading
    store = (ArtifactStore(Path(args.store)) if args.store
             else ArtifactStore.default())
    broker = Broker(store, lease_ttl=args.lease_ttl,
                    max_unit_attempts=args.unit_attempts)
    workers = args.workers or os.cpu_count() or 1
    stop = threading.Event()
    for index in range(workers):
        worker = Worker(broker, worker_id=f"serve-{index + 1}")
        threading.Thread(target=worker.run, kwargs={"stop": stop},
                         name=worker.worker_id, daemon=True).start()

    async def _serve() -> int:
        service = FabricService(broker, args.host, args.port)
        await service.start()
        print(f"fabric service on {service.url} "
              f"({workers} worker(s), store: "
              f"{store.directory or 'memory'})", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("fabric service stopped")
        return 0
    finally:
        stop.set()


def _cmd_submit(args) -> int:
    from .experiments import SweepSpec, format_size
    from .fabric import FabricError, SweepClient
    from .experiments.session import QuarantinedPointError
    spec = SweepSpec.from_cli_args(args)
    client = SweepClient.connect(args.url)
    try:
        handle = client.submit(spec)
        print(f"job {handle.job}: {handle.total} point(s), "
              f"{handle.store_hits} already in the store, "
              f"{handle.pending_units} work unit(s) queued", flush=True)
        if args.no_wait:
            print(f"stream later with: curl {args.url}/jobs/"
                  f"{handle.job}/stream")
            return 0
        for event in client.iter_progress(handle):
            if event.get("event") == "point":
                status = event["status"]
                print(f"  [{event['done']}/{event['total']}] "
                      f"procs={event['procs']} "
                      f"scc={format_size(event['scc'])} {status}",
                      flush=True)
        sweep = client.result(handle, timeout=60.0)
    except QuarantinedPointError as exc:
        print()
        print(f"QUARANTINED {len(exc.quarantined)} point(s):")
        for (procs, paper_bytes), reason in sorted(
                exc.quarantined.items()):
            print(f"  procs={procs} scc={format_size(paper_bytes)}: "
                  f"{reason}")
        return 1
    except FabricError as exc:
        print(f"fabric error: {exc}", file=sys.stderr)
        return 1
    print()
    print(_render_grid(args.benchmark, sweep))
    return 0


def _cmd_fuzz(args) -> int:
    from .verify import run_fuzz

    def progress(index, budget, status, case_seed):
        # One line per noteworthy case; clean cases tick silently every
        # 50 so long budgets show life without drowning the terminal.
        if status != "clean":
            print(f"  [{index + 1}/{budget}] case {case_seed}: {status}")
        elif (index + 1) % 50 == 0 or index + 1 == budget:
            print(f"  [{index + 1}/{budget}] clean so far")

    print(f"fuzzing {args.budget} tape(s) from seed {args.seed} "
          f"(generic vs fast vs fused vs oracle)...")
    report = run_fuzz(seed=args.seed, budget=args.budget,
                      shrink=args.shrink, out_dir=args.out_dir,
                      progress=progress)
    print(report.summary())
    for record in report.divergences:
        shrunk = (f", shrunk {record.original_events} -> "
                  f"{record.shrunk_events} events"
                  if record.shrunk_events is not None else "")
        print(f"DIVERGED case {record.case_seed} [{record.kind}]{shrunk}")
        for line in record.detail[:5]:
            print(f"    {line}")
        if record.repro_path is not None:
            print(f"    repro: {record.repro_path}")
    for case_seed, reason in report.quarantined:
        print(f"QUARANTINED case {case_seed}: {reason}")
    return 0 if report.ok else 1


def _cmd_optimize(args) -> int:
    from .experiments.session import QuarantinedPointError
    from .optimize import (BudgetLedger, DesignSpace, FunnelEvaluator,
                           optimize, render_frontier)

    unknown = sorted(set(args.benchmarks) - set(BENCHMARKS))
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}; "
              f"choose from {', '.join(BENCHMARKS)}", file=sys.stderr)
        return 2

    profile = _profile(args.profile)
    space_kwargs = {"explore_knobs": not args.no_knobs}
    if args.procs:
        space_kwargs["procs"] = args.procs
    if args.ladder:
        space_kwargs["ladder"] = args.ladder
    space = DesignSpace(profile, **space_kwargs)

    budgets = {}
    if args.budget_analytical is not None:
        budgets["analytical"] = args.budget_analytical
    if args.budget_fused is not None:
        budgets["fused"] = args.budget_fused
    if args.budget_full is not None:
        budgets["full"] = args.budget_full

    client = None
    if args.url is not None:
        from .fabric import SweepClient
        client = SweepClient.connect(args.url)
    evaluator = FunnelEvaluator(
        profile, benchmarks=args.benchmarks,
        budget=BudgetLedger(budgets or None),
        client=client, jobs=args.jobs, backend=args.backend)

    print(f"searching {len(space.procs)} x {len(space.ladder)} grid "
          f"points x knobs (seed {args.seed}, "
          f"{args.generations} generation(s), "
          f"population {args.population})...", flush=True)
    try:
        result = optimize(space, evaluator, seed=args.seed,
                          generations=args.generations,
                          population_size=args.population,
                          promote=args.promote,
                          confirm=not args.no_confirm)
    except QuarantinedPointError as exc:
        print(f"optimize aborted: {exc}", file=sys.stderr)
        return 1
    print()
    print(render_frontier(result))
    return 0 if result.rediscovers_paper() else 1


def _cmd_list() -> int:
    print("benchmarks:")
    for name in BENCHMARKS:
        print(f"  {name}")
    print("experiments (report <name>):")
    for name in SIMULATION_REPORTS + MODEL_REPORTS:
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "optimize":
        return _cmd_optimize(args)
    return _cmd_list()


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
