"""Reproduction of Nayfeh & Olukotun, "Exploring the Design Space for a
Shared-Cache Multiprocessor" (ISCA 1994).

The package is organised exactly as the paper is:

* :mod:`repro.core` -- the cluster-based shared-cache multiprocessor
  simulator (Sections 2.1-2.2): banked multi-ported Shared Cluster Caches,
  snoopy write-invalidate coherence, bank/bus contention.
* :mod:`repro.trace` -- the Tango-Lite-equivalent event vocabulary and
  timing-feedback interleaver.
* :mod:`repro.workloads` -- instrumented reimplementations of the SPLASH
  applications (Barnes-Hut, MP3D, Cholesky) and the SPEC92-style
  multiprogramming workload (Sections 2.2-2.3).
* :mod:`repro.cost` -- the Section 4/5 implementation cost models
  (SRAM/ICN area, floorplans, FO4 timing, load-latency sensitivity).
* :mod:`repro.experiments` -- sweep harness reproducing every table and
  figure (Tables 3-7, Figures 2-6).

Quick start::

    from repro import KB, SystemConfig, run_simulation
    from repro.workloads import BarnesHut

    config = SystemConfig.paper_parallel(processors_per_cluster=2,
                                         scc_size=8 * KB)
    result = run_simulation(config, BarnesHut(n_bodies=128, steps=2))
    print(result.execution_time, result.stats.read_miss_rate)
"""

from .core.config import KB, SystemConfig
from .core.stats import ProcessorStats, SccStats, SystemStats
from .core.system import MultiprocessorSystem
from .instrument import InstrumentationProbe, write_chrome_trace
from .simulation import SimulationResult, build_system, run_simulation

__version__ = "1.2.0"

__all__ = [
    "KB",
    "SystemConfig",
    "ProcessorStats",
    "SccStats",
    "SystemStats",
    "MultiprocessorSystem",
    "InstrumentationProbe",
    "write_chrome_trace",
    "SimulationResult",
    "build_system",
    "run_simulation",
    "__version__",
]
