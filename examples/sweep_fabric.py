"""The sweep fabric in one file: local fabric, HTTP service, warm store.

Runs a quick multiprogramming grid three ways and shows they agree
point for point:

1. plainly in this process (``grid_sweep``);
2. through a :class:`repro.fabric.LocalFabric` -- broker, leases,
   heartbeats, workers, store, all in-process, no sockets;
3. through the real asyncio HTTP service with a ``SweepClient``,
   resubmitting once to show a warm grid served entirely from the
   content-addressed store (zero work units dispatched).

Usage::

    python examples/sweep_fabric.py
"""

import threading

from repro.api import KB, PROFILES, SweepClient, SweepSpec, grid_sweep
from repro.fabric import (ArtifactStore, Broker, LocalFabric, Worker,
                          start_in_thread)


def main() -> None:
    spec = SweepSpec.multiprogramming(
        profile=PROFILES["quick"], ladder=(4 * KB, 8 * KB, 16 * KB),
        procs=(1, 2), instrument=False)

    print("1. locally, no fabric...")
    local = grid_sweep(spec, cache=None)

    print("2. through an in-process fabric (leases, workers, store)...")
    with LocalFabric(workers=2) as fabric:
        via_fabric = fabric.client.result(fabric.client.submit(spec))
    assert {p: s.as_dict() for p, s in via_fabric.items()} == \
           {p: s.as_dict() for p, s in local.items()}
    print("   ...point-for-point identical to grid_sweep")

    print("3. through the HTTP service...")
    broker = Broker(ArtifactStore.in_memory())
    stop = threading.Event()
    worker = Worker(broker, worker_id="example-worker")
    threading.Thread(target=worker.run, kwargs={"stop": stop},
                     daemon=True).start()
    url, stop_service = start_in_thread(broker)
    try:
        client = SweepClient.connect(url)
        handle = client.submit(spec)
        print(f"   job {handle.job}: {handle.total} points, "
              f"{handle.pending_units} unit(s) queued at {url}")
        for event in client.iter_progress(handle):
            if event.get("event") == "point":
                print(f"   [{event['done']}/{event['total']}] "
                      f"{event['point']} {event['status']}")
        over_http = client.result(handle)
        assert {p: s.as_dict() for p, s in over_http.items()} == \
               {p: s.as_dict() for p, s in local.items()}

        warm = client.submit(spec)
        print(f"   warm resubmission: {warm.store_hits}/{warm.total} "
              f"from the store, {warm.pending_units} units dispatched")
        assert warm.store_hits == warm.total and warm.pending_units == 0
    finally:
        stop.set()
        stop_service()
    print("done: one grid, three transports, identical results")


if __name__ == "__main__":
    main()
