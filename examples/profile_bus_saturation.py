#!/usr/bin/env python3
"""Watch the inter-cluster bus saturate, cycle by cycle.

Section 3.1.2 of the paper explains MP3D's poor shared-cache scaling by
bus saturation: many processors over small SCCs generate enough miss and
invalidation traffic that the snoopy bus becomes the bottleneck.
End-of-run averages understate this -- the interesting fact is *when*
and *how hard* the bus is pinned.

This example instruments two MP3D runs with
:class:`repro.instrument.InstrumentationProbe`:

* a **saturated** design point: 8 processors per cluster, 4 KB SCCs;
* a **comfortable** one: 2 processors per cluster, 64 KB SCCs;

then prints their binned bus-utilization timelines side by side as
sparklines and writes a Chrome-trace JSON for each -- open them in
https://ui.perfetto.dev to see every bus grant, bank conflict, and
processor stall (1 trace us = 1 simulated cycle).

Usage:  python examples/profile_bus_saturation.py
"""

from repro.api import KB, SystemConfig, run_simulation
from repro.instrument import InstrumentationProbe, write_chrome_trace
from repro.workloads import MP3D

BINS = 48
LEVELS = " ..:-=+*#%@"


def sparkline(values):
    top = len(LEVELS) - 1
    return "".join(LEVELS[round(min(max(v, 0.0), 1.0) * top)]
                   for v in values)


def profile(label, procs_per_cluster, scc_size, trace_path):
    config = SystemConfig.paper_parallel(
        processors_per_cluster=procs_per_cluster, scc_size=scc_size)
    probe = InstrumentationProbe(bin_width=512)
    result = run_simulation(config, MP3D(n_particles=300, steps=2),
                            instrumentation=probe)
    probe.rebin(BINS)
    utilization = probe.bus_utilization()
    summary = probe.summary()
    print(f"{label}: {config.clusters} clusters x {procs_per_cluster} "
          f"procs, {scc_size // KB} KB SCC")
    print(f"  execution time : {result.execution_time:>9,} cycles")
    print(f"  bus peak/mean  : "
          f"{100 * summary['bus_peak_utilization']:5.1f} % / "
          f"{100 * summary['bus_mean_utilization']:5.1f} %")
    print(f"  utilization    [{sparkline(utilization)}]")
    path = write_chrome_trace(probe, trace_path, config=config)
    print(f"  trace          : {path} (open in ui.perfetto.dev)")
    print()
    return summary["bus_peak_utilization"]


def main():
    print("MP3D, 300 particles, 2 steps -- inter-cluster bus pressure\n")
    hot = profile("saturated  ", 8, 4 * KB, "mp3d_saturated.json")
    cool = profile("comfortable", 2, 64 * KB, "mp3d_comfortable.json")
    print(f"The saturated design pins the bus at "
          f"{100 * hot:.0f} % while the comfortable one peaks at "
          f"{100 * cool:.0f} % -- the Section 3.1.2 bottleneck, "
          f"resolved in time.")


if __name__ == "__main__":
    main()
