#!/usr/bin/env python3
"""Capture a reference trace, inspect it, and replay it bit-for-bit.

Shows the trace tooling end to end: materialize a static reference
stream, save it in the binary trace format, characterize it (event mix,
working set, miss-ratio curve), and replay the file through the
simulator, verifying the replay reproduces the original run exactly.

Usage:  python examples/trace_capture.py
"""

import tempfile
from pathlib import Path

from repro.api import KB, SystemConfig
from repro.core import MultiprocessorSystem
from repro.trace import (TimingInterleaver, event_histogram, load_trace,
                         miss_ratio_curve, reference_count, save_trace,
                         working_set_lines)
from repro.workloads import spec92_workload


def simulate(streams, config):
    system = MultiprocessorSystem(config)
    interleaver = TimingInterleaver(system)
    for proc, events in enumerate(streams):
        interleaver.add_process(proc, iter(events))
    time = interleaver.run()
    return time, system.stats(time)


def main():
    config = SystemConfig(clusters=1, processors_per_cluster=2,
                          scc_size=4 * KB)
    # Two SPEC-like processes, one quantum each, as the capture source.
    apps = spec92_workload(scale=8)
    streams = [list(apps[0].burst(20_000)), list(apps[1].burst(20_000))]

    with tempfile.TemporaryDirectory() as directory:
        paths = []
        for index, events in enumerate(streams):
            path = Path(directory) / f"proc{index}.trace"
            count = save_trace(path, events)
            size = path.stat().st_size
            print(f"captured proc {index}: {count:,} events -> "
                  f"{size:,} bytes ({size / count:.1f} B/event)")
            paths.append(path)

        print("\ntrace characterization (proc 0):")
        histogram = event_histogram(streams[0])
        for kind, count in sorted(histogram.items(),
                                  key=lambda item: -item[1]):
            print(f"  {kind.__name__:<10} {count:>7,}")
        print(f"  data refs : {reference_count(streams[0]):,}")
        print(f"  90% WS    : "
              f"{working_set_lines(streams[0]) * 16 / 1024:.1f} KB")
        curve = miss_ratio_curve(streams[0], (1024, 4096, 16384))
        for size, ratio in curve.items():
            print(f"  LRU {size // 1024:>2} KB : {100 * ratio:.1f}% miss")

        print("\nreplaying from disk...")
        direct_time, direct_stats = simulate(streams, config)
        reloaded = [load_trace(path) for path in paths]
        replay_time, replay_stats = simulate(reloaded, config)

        print(f"  direct run : {direct_time:,} cycles, "
              f"{direct_stats.total_scc.read_misses:,} read misses")
        print(f"  replay run : {replay_time:,} cycles, "
              f"{replay_stats.total_scc.read_misses:,} read misses")
        identical = (direct_time == replay_time
                     and direct_stats.total_scc.as_dict()
                     == replay_stats.total_scc.as_dict())
        print(f"  bit-for-bit identical: {identical}")


if __name__ == "__main__":
    main()
