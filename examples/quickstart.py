#!/usr/bin/env python3
"""Quickstart: simulate one parallel application on two cluster designs.

Runs the instrumented Barnes-Hut N-body application on (a) four clusters
of one processor with a private 8 KB data cache each, and (b) four
clusters of two processors sharing an 8 KB Shared Cluster Cache -- the
paper's core comparison at small scale -- and prints execution time,
miss rates and invalidation counts.

Usage:  python examples/quickstart.py
"""

from repro.api import KB, SystemConfig, run_simulation
from repro.workloads import BarnesHut


def describe(label, result):
    stats = result.stats
    total = stats.total_scc
    print(f"{label}")
    print(f"  execution time     : {stats.execution_time:>10,} cycles")
    print(f"  read miss rate     : {100 * total.read_miss_rate:10.2f} %")
    print(f"  invalidations      : {stats.total_invalidations:>10,}")
    print(f"  bus transactions   : {total.read_misses + total.write_misses:>10,}")
    print(f"  trace events       : {result.events_processed:>10,}")
    print()


def main():
    app = BarnesHut(n_bodies=128, steps=2)

    single = SystemConfig.paper_parallel(processors_per_cluster=1,
                                         scc_size=8 * KB)
    shared = SystemConfig.paper_parallel(processors_per_cluster=2,
                                         scc_size=8 * KB)

    print("Barnes-Hut, 128 bodies, 2 steps, four clusters\n")
    result_single = run_simulation(single, app)
    describe("1 processor per cluster, 8 KB cache:", result_single)
    result_shared = run_simulation(shared, app)
    describe("2 processors per cluster, shared 8 KB SCC:", result_shared)

    speedup = (result_single.execution_time
               / result_shared.execution_time)
    print(f"Speedup from sharing the cache: {speedup:.2f}x "
          f"(with 2x the processors -- >2 means the cluster-mates "
          f"prefetch for each other)")


if __name__ == "__main__":
    main()
