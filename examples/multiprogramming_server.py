#!/usr/bin/env python3
"""Compute-server scenario: the SPEC92 mix on a shared-cache cluster.

The paper's second usage model (Section 3.2): a single cluster running
eight independent processes under a round-robin scheduler.  This example
shows how throughput scales with processors per cluster, and how the
shared SCC's miss rate climbs as co-scheduled processes interfere.

Usage:  python examples/multiprogramming_server.py
"""

from repro.api import KB, SystemConfig, run_simulation
from repro.workloads import MultiprogrammingWorkload


def main():
    workload = MultiprogrammingWorkload(instructions_per_app=40_000,
                                        quantum_instructions=10_000)
    scc_size = 8 * KB   # stands in for the paper's 64 KB at ladder /8
    print(f"Eight SPEC92-like processes, one cluster, "
          f"{scc_size // KB} KB SCC\n")
    print(f"{'procs':>5} {'exec time':>12} {'throughput':>11} "
          f"{'SCC miss rate':>14} {'icache misses':>14}")

    base_time = None
    for procs in (1, 2, 4, 8):
        config = SystemConfig.paper_multiprogramming(
            procs, scc_size).with_updates(icache_size=2 * KB)
        result = run_simulation(config, workload)
        stats = result.stats
        if base_time is None:
            base_time = stats.execution_time
        print(f"{procs:>5} {stats.execution_time:>12,} "
              f"{base_time / stats.execution_time:>10.2f}x "
              f"{100 * stats.total_scc.miss_rate:>13.1f}% "
              f"{stats.icache_misses:>14,}")

    print("\nThroughput grows sub-linearly: co-scheduled processes"
          " interfere in the shared cluster cache (the paper's"
          " Figure 6 effect). Re-run with a larger scc_size to watch"
          " the degradation shrink.")


if __name__ == "__main__":
    main()
