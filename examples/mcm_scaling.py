#!/usr/bin/env python3
"""MCM scaling: is the two-processor chip a good building block?

Section 5.2's question, run interactively: take the paper's cluster
implementations (2, 4 and 8 processors per cluster, with their SCC sizes
and load latencies from the Section 4 floorplans) and measure how an
application scales from the 8-processor single-chip machine to the 16-
and 32-processor MCM machines -- including the load-latency penalty the
MCM chip crossings add.

Usage:  python examples/mcm_scaling.py [barnes|mp3d]
"""

import sys

from repro.api import KB, SystemConfig, run_simulation
from repro.cost import implementation_for, latency_factor
from repro.workloads import BarnesHut, MP3D

# The ladder scale of the reproduction (DESIGN.md).
SCALE = 8


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    if name == "mp3d":
        app = MP3D(n_particles=900, steps=3)
        bench = "mp3d"
    else:
        app = BarnesHut(n_bodies=256, steps=2)
        bench = "barnes-hut"

    print(f"MCM scaling study: {bench} on the Section 4 cluster designs\n")
    print(f"{'machine':<34}{'SCC':>8}{'load lat':>10}"
          f"{'raw cycles':>13}{'corrected':>12}{'speedup':>9}")

    base = None
    for procs in (2, 4, 8):
        implementation = implementation_for(procs)
        config = SystemConfig.paper_parallel(
            procs, implementation.scc_bytes // SCALE)
        result = run_simulation(config, app)
        factor = latency_factor(bench, implementation.load_latency)
        corrected = result.execution_time * factor
        if base is None:
            base = corrected
        print(f"{4 * procs:>2} procs (4 x {implementation.name[:18]:<18})"
              f"{implementation.scc_bytes // 1024:>6} KB"
              f"{implementation.load_latency:>9}c"
              f"{result.execution_time:>13,}"
              f"{corrected:>12,.0f}"
              f"{base / corrected:>8.2f}x")

    print("\nThe paper's Section 5.2 conclusion: performance roughly "
          "doubles from 16 to 32\nprocessors despite the four-cycle "
          "loads, so the two-processor chip scales as\na building block "
          "(Cholesky being the known exception).")


if __name__ == "__main__":
    main()
