#!/usr/bin/env python3
"""Tour of the Section 4/5 implementation cost models.

Walks through the VLSI-side half of the paper without running any
simulation: process scaling, cache access times, crossbar area, pad
counting, the four cluster floorplans, and the load-latency sensitivity
table.

Usage:  python examples/cost_model_tour.py
"""

from repro.cost import (CLUSTER_IMPLEMENTATIONS, PAPER_PROCESS,
                        ScaledProcessor, access_time_fo4,
                        crossbar_area_mm2, latency_factor,
                        max_direct_mapped_bytes)
from repro.experiments import render_section4_costs, render_table5

KB = 1024


def main():
    print("Process:", PAPER_PROCESS.gate_length_um, "um,",
          f"{PAPER_PROCESS.max_die_area_mm2:.0f} mm^2 economical die\n")

    processor = ScaledProcessor.in_process()
    print(f"Alpha 21064 scaled to 0.4 um: core "
          f"{processor.core_area_mm2:.1f} mm^2 + 16 KB icache "
          f"{processor.icache_area_mm2:.1f} mm^2\n")

    print("Direct-mapped access time (FO4) by capacity:")
    for kb in (16, 32, 64, 128, 256):
        flag = "  <- cycle limit" if kb == 64 else ""
        print(f"  {kb:>4} KB : {access_time_fo4(kb * KB):5.1f} FO4{flag}")
    print(f"  largest cache inside the 30-FO4 cycle: "
          f"{max_direct_mapped_bytes(30) // KB} KB\n")

    print(f"Crossbar ICN, 3 ports x 8 banks: "
          f"{crossbar_area_mm2(3, 8):.1f} mm^2 (paper: 12.1)\n")

    print(render_section4_costs())
    print()
    print(render_table5())
    print()
    two_proc = CLUSTER_IMPLEMENTATIONS[2]
    penalty = latency_factor("barnes-hut", two_proc.load_latency)
    print(f"The 2-processor chip's extra arbitration stage costs "
          f"Barnes-Hut {100 * (penalty - 1):.0f}% on a perfect memory "
          f"system -- the price Section 5 weighs against the shared "
          f"cache's gains.")


if __name__ == "__main__":
    main()
