#!/usr/bin/env python3
"""Design-space exploration: processors-per-cluster vs SCC size.

Reproduces a small version of the paper's Section 3.1 methodology for
one application: sweep the processor-cache grid, print the normalized
execution times and the speedup table, and point out where sharing the
cache beats growing it -- the question the paper asks.

Usage:  python examples/design_space_sweep.py [mp3d|barnes|cholesky]
"""

import sys

from repro.api import KB, SystemConfig, run_simulation
from repro.workloads import BarnesHut, Cholesky, MP3D

LADDER = (1 * KB, 4 * KB, 16 * KB, 32 * KB, 64 * KB)
PROCS = (1, 2, 4)


def make_app(name):
    if name == "mp3d":
        return MP3D(n_particles=400, steps=3)
    if name == "cholesky":
        return Cholesky(n=224)
    return BarnesHut(n_bodies=128, steps=2)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "barnes"
    app = make_app(name)
    print(f"Design-space sweep: {app.name}, four clusters\n")

    times = {}
    for procs in PROCS:
        for size in LADDER:
            config = SystemConfig.paper_parallel(procs, size)
            times[(procs, size)] = run_simulation(
                config, app).execution_time

    header = "SCC size" + "".join(f"{str(p) + ' proc':>22}" for p in PROCS)
    print(header)
    for size in LADDER:
        row = f"{size // KB:>5} KB"
        for procs in PROCS:
            speedup = times[(1, size)] / times[(procs, size)]
            row += f"{times[(procs, size)]:>13,} ({speedup:4.2f}x)"
        print(row)

    # The paper's single-chip question: same silicon budget, different
    # split.  Compare "1 proc + big cache" against "2 procs + half".
    big_cache = times[(1, 64 * KB)]
    shared = times[(2, 32 * KB)]
    print(f"\n1 proc + 64 KB: {big_cache:,} cycles")
    print(f"2 procs + 32 KB SCC: {shared:,} cycles")
    winner = ("two processors with the smaller shared cache"
              if shared < big_cache else "the single processor")
    print(f"-> {winner} wins for {app.name}")


if __name__ == "__main__":
    main()
