#!/usr/bin/env python3
"""Writing your own workload: a producer-consumer ping-pong study.

The simulator runs anything that implements
:class:`repro.workloads.TracedApplication`: return one trace-event
generator per processor and the machinery (interleaver, coherence, bank
contention, statistics) comes for free.

This example builds a workload where pairs of processors bounce a block
of shared lines back and forth, and uses it to measure the paper's core
architectural claim directly: placing communicating processors in the
*same* cluster (sharing an SCC) eliminates the invalidation traffic that
the same pairs generate when split across clusters.

Usage:  python examples/custom_workload.py
"""

from repro.api import KB, SystemConfig, run_simulation
from repro.trace import Barrier, Compute, Read, Write
from repro.workloads import SharedHeap, TracedApplication


class PingPong(TracedApplication):
    """Pairs of processes exchanging a buffer of shared cache lines.

    Processor ``2k`` writes the buffer and processor ``2k+1`` reads and
    rewrites it, ``rounds`` times, with a barrier per round.  ``paired``
    controls whether partners are adjacent processor ids (same cluster
    when clusters hold >= 2 processors) or maximally separated ids
    (always different clusters).
    """

    name = "ping-pong"

    def __init__(self, buffer_bytes=2 * KB, rounds=40, paired=True):
        self.buffer_bytes = buffer_bytes
        self.rounds = rounds
        self.paired = paired

    def processes(self, config):
        n = config.total_processors
        if n % 2:
            raise ValueError("need an even number of processors")
        heap = SharedHeap()
        buffers = [heap.alloc(f"buffer{k}", self.buffer_bytes)
                   for k in range(n // 2)]
        if self.paired:
            partners = [(2 * k, 2 * k + 1) for k in range(n // 2)]
        else:
            partners = [(k, k + n // 2) for k in range(n // 2)]
        processes = {}
        for pair_id, (writer, reader) in enumerate(partners):
            region = buffers[pair_id]
            processes[writer] = self._writer(region, n)
            processes[reader] = self._reader(region, n)
        return processes

    def _writer(self, region, n_procs):
        for _ in range(self.rounds):
            for offset in range(0, region.size, 16):
                yield Write(region.addr(offset))
            yield Compute(50)
            yield Barrier(0, n_procs)
            yield Barrier(1, n_procs)

    def _reader(self, region, n_procs):
        for _ in range(self.rounds):
            yield Barrier(0, n_procs)
            for offset in range(0, region.size, 16):
                yield Read(region.addr(offset))
                yield Write(region.addr(offset))
            yield Compute(50)
            yield Barrier(1, n_procs)


def run(paired):
    config = SystemConfig(clusters=4, processors_per_cluster=2,
                          scc_size=8 * KB)
    result = run_simulation(config, PingPong(paired=paired))
    return result


def main():
    print("Producer-consumer pairs on 4 clusters x 2 processors\n")
    for paired, label in ((True, "partners share a cluster (and SCC)"),
                          (False, "partners split across clusters")):
        result = run(paired)
        stats = result.stats
        print(f"{label}:")
        print(f"  execution time : {stats.execution_time:>9,} cycles")
        print(f"  invalidations  : {stats.total_invalidations:>9,}")
        print(f"  read miss rate : {100 * stats.read_miss_rate:8.1f} %")
        print()
    print("Clustering communicating processes removes the coherence"
          " traffic entirely -- the paper's argument for shared cluster"
          " caches in one experiment.")


if __name__ == "__main__":
    main()
