#!/usr/bin/env python3
"""Characterize a workload's memory behaviour before simulating it.

Uses the trace-analysis tools (LRU stack distances, miss-ratio curves,
working sets) on the reference streams of the instrumented benchmarks --
the same methodology Rothberg et al. (the paper's reference [17]) used
to relate working sets to cache sizes.  The miss-ratio-curve knees
printed here are exactly where the Section 3 figures bend.

Usage:  python examples/workload_characterization.py
"""

from repro.api import KB, SystemConfig
from repro.trace.analysis import miss_ratio_curve, working_set_lines
from repro.trace.events import Read, Write
from repro.workloads import BarnesHut, MP3D, spec92_workload

SIZES = tuple(k * KB for k in (1, 2, 4, 8, 16, 32, 64))


def single_process_trace(app, events_cap=120_000):
    """Materialize one processor's data references (static part only)."""
    config = SystemConfig(clusters=1, processors_per_cluster=1,
                          scc_size=64 * KB)
    stream = app.processes(config)[0]
    events = []
    for event in stream:
        if isinstance(event, (Read, Write)):
            events.append(event)
            if len(events) >= events_cap:
                break
    return events


def characterize(name, events):
    curve = miss_ratio_curve(events, SIZES)
    hot = working_set_lines(events, fraction=0.9)
    knee = min((size for size in SIZES if curve[size] < 0.10),
               default=None)
    print(f"{name}: {len(events):,} refs, 90% working set = "
          f"{hot * 16 / KB:.1f} KB")
    print("  size:", "  ".join(f"{size // KB:>4}K" for size in SIZES))
    print("  miss:", "  ".join(f"{100 * curve[size]:4.1f}%"
                               for size in SIZES))
    if knee:
        print(f"  (fully-associative LRU falls under 10% at "
              f"{knee // KB} KB)")
    print()


def main():
    print("Fully-associative LRU miss-ratio curves (one processor's "
          "reference stream)\n")
    characterize("barnes-hut", single_process_trace(
        BarnesHut(n_bodies=192, steps=1)))
    characterize("mp3d", single_process_trace(
        MP3D(n_particles=500, steps=3)))
    sc = spec92_workload(scale=8)[0]
    characterize("spec sc (synthetic)",
                 [e for e in sc.burst(60_000)
                  if isinstance(e, (Read, Write))])
    print("Compare these knees with where the Figure 2/3/5 curves bend:"
          " the simulated SCC adds conflict and coherence misses on top"
          " of these capacity floors.")


if __name__ == "__main__":
    main()
